//! The buffer pool: a fixed-capacity page cache with LRU eviction,
//! pin counting, and dirty write-back.
//!
//! Access pattern:
//!
//! ```ignore
//! let handle = pool.fetch(page_id)?;       // pins the page
//! let bytes  = handle.read();              // RwLock read guard
//! let bytes  = handle.write();             // RwLock write guard, marks dirty
//! drop(handle);                            // unpins
//! ```
//!
//! A pinned page is never evicted; an unpinned dirty page is written back
//! when its frame is reclaimed or on [`BufferPool::flush_all`].
//!
//! ## WAL integration
//!
//! When a write-ahead log is attached ([`BufferPool::set_wal_hook`]) the
//! pool enforces two recovery invariants:
//!
//! - **No-steal.** Every mutation through [`PageHandle::write`] records the
//!   page in an *unlogged* set; unlogged dirty pages are never evicted or
//!   flushed, so uncommitted data cannot reach a data file. The commit path
//!   snapshots the set ([`BufferPool::snapshot_unlogged`]), logs the images
//!   (stamping LSNs through [`PageHandle::write_nolog`]), and retires the
//!   snapshot only once the commit is durable
//!   ([`BufferPool::commit_unlogged`]) — pages keep their no-steal
//!   protection for the whole commit window.
//! - **WAL-before-data.** Before a (logged) dirty page is written back, the
//!   hook is invoked with the page's on-page LSN so the log can be made
//!   durable at least that far first.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::PageId;
use jaguar_common::obs;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::disk::DiskManager;
use crate::page::page_lsn;

/// Write-ahead-log callback invoked before a dirty page is written back to
/// its data file. Implemented by `jaguar-wal`; the trait lives here so the
/// storage crate stays free of a WAL dependency.
pub trait WalHook: Send + Sync {
    /// Make the log durable at least up to `page_lsn` (the LSN stamped on
    /// the page about to be written). Erroring aborts the write-back.
    fn before_page_write(&self, page_lsn: u64) -> Result<()>;
}

struct Frame {
    page: PageId,
    data: Arc<RwLock<Vec<u8>>>,
    dirty: Arc<AtomicBool>,
    pins: usize,
    last_used: u64,
}

struct PoolInner {
    frames: Vec<Frame>,
    /// page id -> index into `frames`
    map: HashMap<PageId, usize>,
    tick: u64,
}

/// Cache statistics, exposed for the calibration experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

/// A fixed-size page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    /// WAL-before-data callback; also switches on unlogged tracking.
    wal_hook: Mutex<Option<Arc<dyn WalHook>>>,
    /// Fast gate checked on every `PageHandle::write`.
    track_unlogged: AtomicBool,
    /// Dirty pages whose latest mutation has not been logged yet, each with
    /// a generation counter bumped on every tracked write. These are
    /// pinned-in-spirit: never evicted, never flushed (no-steal).
    unlogged: Mutex<HashMap<PageId, u64>>,
    /// Ticks when a fetch/unpin finds the central pool latch held by
    /// another thread — the first place parallel scans bottleneck.
    latch_waits: Arc<obs::Counter>,
}

impl BufferPool {
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
            wal_hook: Mutex::new(None),
            track_unlogged: AtomicBool::new(false),
            unlogged: Mutex::new(HashMap::new()),
            latch_waits: obs::global().counter("storage.bufferpool.latch_waits"),
        }
    }

    /// Take the central pool latch, counting the acquisition as a contended
    /// wait when another thread holds it right now.
    fn latch(&self) -> MutexGuard<'_, PoolInner> {
        match self.inner.try_lock() {
            Some(g) => g,
            None => {
                self.latch_waits.inc();
                self.inner.lock()
            }
        }
    }

    /// Attach a write-ahead log: enables unlogged-page tracking (no-steal)
    /// and WAL-before-data enforcement on every write-back.
    pub fn set_wal_hook(&self, hook: Arc<dyn WalHook>) {
        *self.wal_hook.lock() = Some(hook);
        self.track_unlogged.store(true, Ordering::Release);
    }

    /// Snapshot the current unlogged-page set (sorted, for deterministic
    /// log contents) together with each page's mutation generation. The
    /// pages *stay* in the set — and therefore keep their no-steal
    /// protection against eviction and flushing — until the commit path,
    /// after making the transaction durable, retires exactly this snapshot
    /// with [`BufferPool::commit_unlogged`].
    pub fn snapshot_unlogged(&self) -> Vec<(PageId, u64)> {
        let set = self.unlogged.lock();
        let mut pages: Vec<(PageId, u64)> = set.iter().map(|(p, g)| (*p, *g)).collect();
        pages.sort_by_key(|(p, _)| p.0);
        pages
    }

    /// Retire a durably committed snapshot: each page leaves the unlogged
    /// set only if its generation is unchanged, i.e. no new mutation raced
    /// with the commit. A page mutated after its image was logged keeps its
    /// protection and is logged again by the next commit.
    pub fn commit_unlogged(&self, pages: &[(PageId, u64)]) {
        let mut set = self.unlogged.lock();
        for (page, gen) in pages {
            if set.get(page) == Some(gen) {
                set.remove(page);
            }
        }
    }

    fn note_write(&self, page: PageId) {
        if self.track_unlogged.load(Ordering::Acquire) {
            *self.unlogged.lock().entry(page).or_insert(0) += 1;
        }
    }

    /// Run the WAL-before-data hook for a page buffer about to be written.
    fn wal_barrier(&self, buf: &[u8]) -> Result<()> {
        let hook = self.wal_hook.lock().clone();
        if let Some(hook) = hook {
            hook.before_page_write(page_lsn(buf))?;
        }
        Ok(())
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Fetch a page, reading it from disk on a miss. The returned handle
    /// pins the page until dropped.
    pub fn fetch(self: &Arc<Self>, page: PageId) -> Result<PageHandle> {
        let mut inner = self.latch();
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&idx) = inner.map.get(&page) {
            let f = &mut inner.frames[idx];
            f.pins += 1;
            f.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PageHandle {
                pool: Arc::clone(self),
                page,
                data: Arc::clone(&f.data),
                dirty: Arc::clone(&f.dirty),
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Load outside any frame lock (we only hold the pool mutex).
        let mut buf = vec![0u8; self.disk.page_size()];
        self.disk.read_page(page, &mut buf)?;

        let idx = self.acquire_frame(&mut inner)?;
        let frame = Frame {
            page,
            data: Arc::new(RwLock::new(buf)),
            dirty: Arc::new(AtomicBool::new(false)),
            pins: 1,
            last_used: tick,
        };
        let (data, dirty) = (Arc::clone(&frame.data), Arc::clone(&frame.dirty));
        if idx == inner.frames.len() {
            inner.frames.push(frame);
        } else {
            inner.frames[idx] = frame;
        }
        inner.map.insert(page, idx);
        Ok(PageHandle {
            pool: Arc::clone(self),
            page,
            data,
            dirty,
        })
    }

    /// Allocate a fresh page on disk and return it pinned (already cached,
    /// marked dirty so the caller's initialisation reaches disk).
    pub fn allocate(self: &Arc<Self>) -> Result<PageHandle> {
        let page = self.disk.allocate_page()?;
        let handle = self.fetch(page)?;
        handle.dirty.store(true, Ordering::Relaxed);
        Ok(handle)
    }

    /// Find a free frame index, evicting the least-recently-used unpinned
    /// frame if the pool is full. Dirty pages holding unlogged (and hence
    /// uncommitted) changes are unevictable — the no-steal half of the WAL
    /// contract.
    fn acquire_frame(&self, inner: &mut PoolInner) -> Result<usize> {
        if inner.frames.len() < self.capacity {
            return Ok(inner.frames.len());
        }
        let unlogged = if self.track_unlogged.load(Ordering::Acquire) {
            Some(self.unlogged.lock())
        } else {
            None
        };
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.pins == 0 && unlogged.as_ref().is_none_or(|u| !u.contains_key(&f.page))
            })
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .ok_or_else(|| {
                JaguarError::Storage(format!(
                    "buffer pool exhausted: all {} frames pinned or holding \
                     unlogged changes",
                    self.capacity
                ))
            })?;
        drop(unlogged);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let (vpage, vdata, vdirty) = {
            let f = &inner.frames[victim];
            (f.page, Arc::clone(&f.data), Arc::clone(&f.dirty))
        };
        if vdirty.load(Ordering::Relaxed) {
            // WAL-before-data: the victim is unpinned so nobody can mutate
            // it concurrently; its on-page LSN is final for this image.
            self.wal_barrier(&vdata.read())?;
            if vdirty.swap(false, Ordering::Relaxed) {
                self.writebacks.fetch_add(1, Ordering::Relaxed);
                let mut buf = vdata.write();
                self.disk.write_page(vpage, &mut buf)?;
            }
        }
        inner.map.remove(&vpage);
        Ok(victim)
    }

    fn unpin(&self, page: PageId) {
        let mut inner = self.latch();
        if let Some(&idx) = inner.map.get(&page) {
            let f = &mut inner.frames[idx];
            debug_assert!(f.pins > 0, "unpin of unpinned page");
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Write every dirty page back to disk (pages stay cached). Pages with
    /// unlogged changes are skipped: they hold uncommitted data that must
    /// not reach the data file (they are flushed by the commit following
    /// their statement, or discarded with the process).
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.latch();
        let tracking = self.track_unlogged.load(Ordering::Acquire);
        for f in &inner.frames {
            if tracking && self.unlogged.lock().contains_key(&f.page) {
                continue;
            }
            if f.dirty.load(Ordering::Relaxed) {
                self.wal_barrier(&f.data.read())?;
                if f.dirty.swap(false, Ordering::Relaxed) {
                    self.writebacks.fetch_add(1, Ordering::Relaxed);
                    let mut buf = f.data.write();
                    self.disk.write_page(f.page, &mut buf)?;
                }
            }
        }
        Ok(())
    }
}

/// A pinned page. Dropping the handle unpins it.
pub struct PageHandle {
    pool: Arc<BufferPool>,
    page: PageId,
    data: Arc<RwLock<Vec<u8>>>,
    dirty: Arc<AtomicBool>,
}

impl PageHandle {
    pub fn id(&self) -> PageId {
        self.page
    }

    /// Shared read access to the page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Vec<u8>> {
        self.data.read()
    }

    /// Exclusive write access; marks the page dirty and — when a WAL is
    /// attached — records it as unlogged so the mutation cannot reach the
    /// data file before it is logged and committed.
    pub fn write(&self) -> RwLockWriteGuard<'_, Vec<u8>> {
        self.pool.note_write(self.page);
        self.dirty.store(true, Ordering::Relaxed);
        self.data.write()
    }

    /// Exclusive write access that marks the page dirty but does *not*
    /// track it as unlogged. Reserved for the WAL commit path, which uses
    /// it to stamp the page LSN on pages whose images it is logging (a
    /// tracked write here would bump the page's generation and keep it in
    /// the unlogged set forever).
    pub fn write_nolog(&self) -> RwLockWriteGuard<'_, Vec<u8>> {
        self.dirty.store(true, Ordering::Relaxed);
        self.data.write()
    }
}

impl Drop for PageHandle {
    fn drop(&mut self) {
        self.pool.unpin(self.page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        let disk = Arc::new(DiskManager::in_memory(128));
        Arc::new(BufferPool::new(disk, frames))
    }

    #[test]
    fn fetch_caches_pages() {
        let p = pool(4);
        let h = p.allocate().unwrap();
        let id = h.id();
        drop(h);
        let _a = p.fetch(id).unwrap();
        let _b = p.fetch(id).unwrap();
        let s = p.stats();
        assert_eq!(s.misses, 1); // only the allocate() fetch missed
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(2);
        let id = {
            let h = p.allocate().unwrap();
            h.write()[100] = 77;
            h.id()
        };
        // Evict by touching more pages than capacity.
        for _ in 0..3 {
            let h = p.allocate().unwrap();
            drop(h);
        }
        let h = p.fetch(id).unwrap();
        assert_eq!(h.read()[100], 77);
        assert!(p.stats().writebacks >= 1);
        assert!(p.stats().evictions >= 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let a = p.allocate().unwrap(); // pinned
        let b = p.allocate().unwrap(); // pinned
        assert!(
            p.allocate().is_err(),
            "all frames pinned: allocation must fail, not evict"
        );
        drop(a);
        let c = p.allocate().unwrap();
        drop(b);
        drop(c);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool(2);
        let a = p.allocate().unwrap().id();
        let b = p.allocate().unwrap().id();
        // Touch a so b is the LRU.
        drop(p.fetch(a).unwrap());
        drop(p.allocate().unwrap()); // evicts b
        let before = p.stats().misses;
        drop(p.fetch(a).unwrap()); // still cached → no new miss
        assert_eq!(p.stats().misses, before);
        drop(p.fetch(b).unwrap()); // evicted → miss
        assert_eq!(p.stats().misses, before + 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = Arc::new(DiskManager::in_memory(128));
        let p = Arc::new(BufferPool::new(Arc::clone(&disk), 8));
        let h = p.allocate().unwrap();
        let id = h.id();
        h.write()[64] = 5;
        drop(h);
        p.flush_all().unwrap();
        let mut raw = vec![0u8; 128];
        disk.read_page(id, &mut raw).unwrap();
        assert_eq!(raw[64], 5);
    }

    struct RecordingHook {
        calls: Mutex<Vec<u64>>,
    }

    impl WalHook for RecordingHook {
        fn before_page_write(&self, page_lsn: u64) -> Result<()> {
            self.calls.lock().push(page_lsn);
            Ok(())
        }
    }

    #[test]
    fn unlogged_pages_are_not_evicted_or_flushed() {
        let disk = Arc::new(DiskManager::in_memory(128));
        let p = Arc::new(BufferPool::new(Arc::clone(&disk), 2));
        let hook = Arc::new(RecordingHook {
            calls: Mutex::new(Vec::new()),
        });
        p.set_wal_hook(Arc::clone(&hook) as Arc<dyn WalHook>);

        let id = {
            let h = p.allocate().unwrap();
            h.write()[100] = 9; // tracked as unlogged
            h.id()
        };
        // flush_all must skip the unlogged page.
        p.flush_all().unwrap();
        let mut raw = vec![0u8; 128];
        disk.read_page(id, &mut raw).unwrap();
        assert_eq!(raw[100], 0, "uncommitted byte must not reach disk");

        // Both frames unlogged-dirty → allocation cannot evict either.
        let h2 = p.allocate().unwrap();
        h2.write()[1] = 1;
        drop(h2);
        let err = match p.allocate() {
            Err(e) => e,
            Ok(_) => panic!("allocation must fail with all frames unlogged"),
        };
        assert!(err.to_string().contains("unlogged"), "{err}");

        // "Commit": snapshot, stamp, retire — now eviction/flush work again.
        let pages = p.snapshot_unlogged();
        assert_eq!(pages.len(), 2);
        {
            let h = p.fetch(id).unwrap();
            crate::page::set_page_lsn(&mut h.write_nolog(), 41);
        }
        p.commit_unlogged(&pages);
        p.flush_all().unwrap();
        disk.read_page(id, &mut raw).unwrap();
        assert_eq!(raw[100], 9);
        let calls = hook.calls.lock().clone();
        assert!(calls.contains(&41), "hook sees the stamped LSN: {calls:?}");
    }

    #[test]
    fn snapshot_is_sorted_and_commit_retires() {
        let p = pool(8);
        p.set_wal_hook(Arc::new(RecordingHook {
            calls: Mutex::new(Vec::new()),
        }));
        let mut ids = Vec::new();
        for _ in 0..4 {
            let h = p.allocate().unwrap();
            h.write()[9] = 9;
            ids.push(h.id());
        }
        let snap = p.snapshot_unlogged();
        let snap_ids: Vec<PageId> = snap.iter().map(|(p, _)| *p).collect();
        assert_eq!(snap_ids, ids, "sorted by page id");
        // Snapshotting does not remove: pages stay protected.
        assert_eq!(p.snapshot_unlogged().len(), 4);
        p.commit_unlogged(&snap);
        assert!(p.snapshot_unlogged().is_empty());
    }

    #[test]
    fn commit_skips_pages_mutated_during_the_commit_window() {
        let p = pool(8);
        p.set_wal_hook(Arc::new(RecordingHook {
            calls: Mutex::new(Vec::new()),
        }));
        let h = p.allocate().unwrap();
        h.write()[9] = 1;
        let snap = p.snapshot_unlogged();
        assert_eq!(snap.len(), 1);
        // A write racing with the commit (after the image was snapshotted,
        // before the commit became durable) bumps the generation…
        h.write()[9] = 2;
        p.commit_unlogged(&snap);
        // …so the page must keep its no-steal protection for the next
        // commit instead of being retired with the stale snapshot.
        let again = p.snapshot_unlogged();
        assert_eq!(again.len(), 1, "re-mutated page must stay unlogged");
        p.commit_unlogged(&again);
        assert!(p.snapshot_unlogged().is_empty());
    }

    #[test]
    fn concurrent_fetches() {
        let p = pool(16);
        let id = p.allocate().unwrap().id();
        let mut handles = Vec::new();
        for t in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let h = p.fetch(id).unwrap();
                    if t == 0 {
                        let v = h.read()[10];
                        h.write()[10] = v; // exercise write path
                    } else {
                        let _ = h.read()[10];
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
