//! The buffer pool: a fixed-capacity page cache with LRU eviction,
//! pin counting, and dirty write-back.
//!
//! Access pattern:
//!
//! ```ignore
//! let handle = pool.fetch(page_id)?;       // pins the page
//! let bytes  = handle.read();              // RwLock read guard
//! let bytes  = handle.write();             // RwLock write guard, marks dirty
//! drop(handle);                            // unpins
//! ```
//!
//! A pinned page is never evicted; an unpinned dirty page is written back
//! when its frame is reclaimed or on [`BufferPool::flush_all`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::PageId;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::disk::DiskManager;

struct Frame {
    page: PageId,
    data: Arc<RwLock<Vec<u8>>>,
    dirty: Arc<AtomicBool>,
    pins: usize,
    last_used: u64,
}

struct PoolInner {
    frames: Vec<Frame>,
    /// page id -> index into `frames`
    map: HashMap<PageId, usize>,
    tick: u64,
}

/// Cache statistics, exposed for the calibration experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

/// A fixed-size page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Fetch a page, reading it from disk on a miss. The returned handle
    /// pins the page until dropped.
    pub fn fetch(self: &Arc<Self>, page: PageId) -> Result<PageHandle> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;

        if let Some(&idx) = inner.map.get(&page) {
            let f = &mut inner.frames[idx];
            f.pins += 1;
            f.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PageHandle {
                pool: Arc::clone(self),
                page,
                data: Arc::clone(&f.data),
                dirty: Arc::clone(&f.dirty),
            });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Load outside any frame lock (we only hold the pool mutex).
        let mut buf = vec![0u8; self.disk.page_size()];
        self.disk.read_page(page, &mut buf)?;

        let idx = self.acquire_frame(&mut inner)?;
        let frame = Frame {
            page,
            data: Arc::new(RwLock::new(buf)),
            dirty: Arc::new(AtomicBool::new(false)),
            pins: 1,
            last_used: tick,
        };
        let (data, dirty) = (Arc::clone(&frame.data), Arc::clone(&frame.dirty));
        if idx == inner.frames.len() {
            inner.frames.push(frame);
        } else {
            inner.frames[idx] = frame;
        }
        inner.map.insert(page, idx);
        Ok(PageHandle {
            pool: Arc::clone(self),
            page,
            data,
            dirty,
        })
    }

    /// Allocate a fresh page on disk and return it pinned (already cached,
    /// marked dirty so the caller's initialisation reaches disk).
    pub fn allocate(self: &Arc<Self>) -> Result<PageHandle> {
        let page = self.disk.allocate_page()?;
        let handle = self.fetch(page)?;
        handle.dirty.store(true, Ordering::Relaxed);
        Ok(handle)
    }

    /// Find a free frame index, evicting the least-recently-used unpinned
    /// frame if the pool is full.
    fn acquire_frame(&self, inner: &mut PoolInner) -> Result<usize> {
        if inner.frames.len() < self.capacity {
            return Ok(inner.frames.len());
        }
        let victim = inner
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pins == 0)
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .ok_or_else(|| {
                JaguarError::Storage(format!(
                    "buffer pool exhausted: all {} frames pinned",
                    self.capacity
                ))
            })?;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        let (vpage, vdata, vdirty) = {
            let f = &inner.frames[victim];
            (f.page, Arc::clone(&f.data), Arc::clone(&f.dirty))
        };
        if vdirty.swap(false, Ordering::Relaxed) {
            self.writebacks.fetch_add(1, Ordering::Relaxed);
            let mut buf = vdata.write();
            self.disk.write_page(vpage, &mut buf)?;
        }
        inner.map.remove(&vpage);
        Ok(victim)
    }

    fn unpin(&self, page: PageId) {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.map.get(&page) {
            let f = &mut inner.frames[idx];
            debug_assert!(f.pins > 0, "unpin of unpinned page");
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Write every dirty page back to disk (pages stay cached).
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.inner.lock();
        for f in &inner.frames {
            if f.dirty.swap(false, Ordering::Relaxed) {
                self.writebacks.fetch_add(1, Ordering::Relaxed);
                let mut buf = f.data.write();
                self.disk.write_page(f.page, &mut buf)?;
            }
        }
        Ok(())
    }
}

/// A pinned page. Dropping the handle unpins it.
pub struct PageHandle {
    pool: Arc<BufferPool>,
    page: PageId,
    data: Arc<RwLock<Vec<u8>>>,
    dirty: Arc<AtomicBool>,
}

impl PageHandle {
    pub fn id(&self) -> PageId {
        self.page
    }

    /// Shared read access to the page bytes.
    pub fn read(&self) -> RwLockReadGuard<'_, Vec<u8>> {
        self.data.read()
    }

    /// Exclusive write access; marks the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Vec<u8>> {
        self.dirty.store(true, Ordering::Relaxed);
        self.data.write()
    }
}

impl Drop for PageHandle {
    fn drop(&mut self) {
        self.pool.unpin(self.page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        let disk = Arc::new(DiskManager::in_memory(128));
        Arc::new(BufferPool::new(disk, frames))
    }

    #[test]
    fn fetch_caches_pages() {
        let p = pool(4);
        let h = p.allocate().unwrap();
        let id = h.id();
        drop(h);
        let _a = p.fetch(id).unwrap();
        let _b = p.fetch(id).unwrap();
        let s = p.stats();
        assert_eq!(s.misses, 1); // only the allocate() fetch missed
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn writes_survive_eviction() {
        let p = pool(2);
        let id = {
            let h = p.allocate().unwrap();
            h.write()[100] = 77;
            h.id()
        };
        // Evict by touching more pages than capacity.
        for _ in 0..3 {
            let h = p.allocate().unwrap();
            drop(h);
        }
        let h = p.fetch(id).unwrap();
        assert_eq!(h.read()[100], 77);
        assert!(p.stats().writebacks >= 1);
        assert!(p.stats().evictions >= 1);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let p = pool(2);
        let a = p.allocate().unwrap(); // pinned
        let b = p.allocate().unwrap(); // pinned
        assert!(
            p.allocate().is_err(),
            "all frames pinned: allocation must fail, not evict"
        );
        drop(a);
        let c = p.allocate().unwrap();
        drop(b);
        drop(c);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool(2);
        let a = p.allocate().unwrap().id();
        let b = p.allocate().unwrap().id();
        // Touch a so b is the LRU.
        drop(p.fetch(a).unwrap());
        drop(p.allocate().unwrap()); // evicts b
        let before = p.stats().misses;
        drop(p.fetch(a).unwrap()); // still cached → no new miss
        assert_eq!(p.stats().misses, before);
        drop(p.fetch(b).unwrap()); // evicted → miss
        assert_eq!(p.stats().misses, before + 1);
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let disk = Arc::new(DiskManager::in_memory(128));
        let p = Arc::new(BufferPool::new(Arc::clone(&disk), 8));
        let h = p.allocate().unwrap();
        let id = h.id();
        h.write()[64] = 5;
        drop(h);
        p.flush_all().unwrap();
        let mut raw = vec![0u8; 128];
        disk.read_page(id, &mut raw).unwrap();
        assert_eq!(raw[64], 5);
    }

    #[test]
    fn concurrent_fetches() {
        let p = pool(16);
        let id = p.allocate().unwrap().id();
        let mut handles = Vec::new();
        for t in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let h = p.fetch(id).unwrap();
                    if t == 0 {
                        let v = h.read()[10];
                        h.write()[10] = v; // exercise write path
                    } else {
                        let _ = h.read()[10];
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
