//! Page-addressed file I/O.
//!
//! A [`DiskManager`] owns one file divided into fixed-size pages. Every
//! write seals the page checksum; every read verifies it, so silent on-disk
//! corruption surfaces as [`JaguarError::Corruption`] instead of garbage
//! query results.
//!
//! An in-memory variant backs temporary databases (examples, tests, and the
//! benchmark harness use it so experiment timings measure the execution
//! designs, not the host filesystem — the paper likewise subtracts "basic
//! system costs", Figure 4).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::PageId;
use jaguar_common::retry::{self, RetryPolicy};
use jaguar_common::{fault, obs};
use parking_lot::Mutex;

use crate::page::{seal_checksum, verify_checksum};

/// Run one fault-injectable I/O step under the storage retry policy.
///
/// Every attempt consults the named fault site first, so the chaos harness
/// can model both *transient* faults (`site=1`: the first attempt fails,
/// the retry recovers, the statement succeeds) and *permanent* ones (a
/// bare always-on `site`: retries exhaust and the statement fails cleanly,
/// never poisoning the engine). Only injected faults and `Interrupted`
/// syscalls are transient; real media errors surface on the first attempt,
/// and `read_exact`/`write_all` absorb `Interrupted` internally, so a real
/// partial transfer is never re-driven.
fn with_storage_retry<T>(site: &str, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    RetryPolicy::storage().run(site, retry::is_transient_storage, || {
        if fault::should_fail(site) {
            obs::global().counter("storage.faults_injected").inc();
            return Err(JaguarError::Io(std::io::Error::other(format!(
                "injected fault at {site}"
            ))));
        }
        op()
    })
}

enum Backing {
    File(File),
    Memory(Vec<u8>),
}

struct Inner {
    backing: Backing,
    page_count: u32,
}

/// Thread-safe page-granular storage.
pub struct DiskManager {
    page_size: usize,
    inner: Mutex<Inner>,
}

impl DiskManager {
    /// Open (or create) a file-backed manager. An existing file must contain
    /// a whole number of pages of the given size.
    pub fn open(path: &Path, page_size: usize) -> Result<DiskManager> {
        assert!(page_size >= 64, "page size too small to hold headers");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(JaguarError::Corruption(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(DiskManager {
            page_size,
            inner: Mutex::new(Inner {
                backing: Backing::File(file),
                page_count: (len / page_size as u64) as u32,
            }),
        })
    }

    /// A purely in-memory manager (temporary databases).
    pub fn in_memory(page_size: usize) -> DiskManager {
        assert!(page_size >= 64, "page size too small to hold headers");
        DiskManager {
            page_size,
            inner: Mutex::new(Inner {
                backing: Backing::Memory(Vec::new()),
                page_count: 0,
            }),
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn page_count(&self) -> u32 {
        self.inner.lock().page_count
    }

    /// Append a fresh zeroed page and return its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.page_count;
        if id == u32::MAX {
            return Err(JaguarError::Storage("file full: page ids exhausted".into()));
        }
        let zero = vec![0u8; self.page_size];
        // A zeroed page has checksum-of-zeros; seal so a read-back verifies.
        let mut sealed = zero;
        seal_checksum(&mut sealed);
        // The extension rides the write fault site: an INSERT that grows the
        // file sees the same injected faults as one updating in place.
        with_storage_retry("storage.disk.write", || {
            match &mut inner.backing {
                Backing::File(f) => {
                    f.seek(SeekFrom::Start(id as u64 * self.page_size as u64))?;
                    f.write_all(&sealed)?;
                }
                Backing::Memory(m) => m.extend_from_slice(&sealed),
            }
            Ok(())
        })?;
        inner.page_count = id + 1;
        Ok(PageId(id))
    }

    /// Read a page into `buf` (must be exactly one page long), verifying
    /// its checksum.
    pub fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size);
        let mut inner = self.inner.lock();
        if id.0 >= inner.page_count {
            return Err(JaguarError::Storage(format!("{id} does not exist")));
        }
        let off = id.0 as usize * self.page_size;
        with_storage_retry("storage.disk.read", || {
            match &mut inner.backing {
                Backing::File(f) => {
                    f.seek(SeekFrom::Start(off as u64))?;
                    f.read_exact(buf)?;
                }
                Backing::Memory(m) => buf.copy_from_slice(&m[off..off + self.page_size]),
            }
            Ok(())
        })?;
        drop(inner);
        verify_checksum(buf)
    }

    /// Seal the checksum and write a page.
    pub fn write_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size);
        seal_checksum(buf);
        let mut inner = self.inner.lock();
        if id.0 >= inner.page_count {
            return Err(JaguarError::Storage(format!("{id} does not exist")));
        }
        let off = id.0 as usize * self.page_size;
        with_storage_retry("storage.disk.write", || {
            match &mut inner.backing {
                Backing::File(f) => {
                    f.seek(SeekFrom::Start(off as u64))?;
                    f.write_all(buf)?;
                }
                Backing::Memory(m) => m[off..off + self.page_size].copy_from_slice(buf),
            }
            Ok(())
        })
    }

    /// Flush file-backed data all the way to stable storage (`sync_all`,
    /// i.e. `fsync`: data *and* metadata, so a freshly extended file keeps
    /// its length across power loss). In-memory backings are a no-op.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Backing::File(f) = &mut inner.backing {
            with_storage_retry("storage.disk.fsync", || {
                f.flush()?;
                f.sync_all()?;
                Ok(())
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault sites are process-global, so tests that arm them (or do I/O
    /// that consults them) run serialized.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn injected_transient_read_fault_recovers() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        fault::arm("storage.disk.read", 1);
        let mut buf = vec![0u8; 128];
        // One injected failure; the storage retry policy absorbs it.
        dm.read_page(id, &mut buf).unwrap();
        fault::disarm("storage.disk.read");
    }

    #[test]
    fn injected_permanent_write_fault_fails_cleanly() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 128];
        fault::arm("storage.disk.write", fault::ALWAYS);
        let err = dm.write_page(id, &mut buf).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        fault::disarm("storage.disk.write");
        // Not poisoned: the identical write now succeeds and reads back.
        dm.write_page(id, &mut buf).unwrap();
        let mut back = vec![0u8; 128];
        dm.read_page(id, &mut back).unwrap();
    }

    #[test]
    fn injected_fsync_fault_surfaces_then_clears() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-fs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sync.db");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path, 256).unwrap();
        dm.allocate_page().unwrap();
        fault::arm("storage.disk.fsync", fault::ALWAYS);
        assert!(dm.sync().is_err());
        fault::disarm("storage.disk.fsync");
        dm.sync().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_alloc_write_read() {
        let _g = serial();
        let dm = DiskManager::in_memory(256);
        let a = dm.allocate_page().unwrap();
        let b = dm.allocate_page().unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(dm.page_count(), 2);

        let mut buf = vec![0u8; 256];
        buf[100] = 42;
        dm.write_page(b, &mut buf).unwrap();

        let mut back = vec![0u8; 256];
        dm.read_page(b, &mut back).unwrap();
        assert_eq!(back[100], 42);
    }

    #[test]
    fn fresh_page_reads_back_clean() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 128];
        dm.read_page(id, &mut buf).unwrap(); // checksum of zeroed page verifies
        assert!(buf[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn missing_page_is_error() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let mut buf = vec![0u8; 128];
        assert!(dm.read_page(PageId(0), &mut buf).is_err());
        assert!(dm.write_page(PageId(5), &mut buf).is_err());
    }

    #[test]
    fn file_backed_roundtrip_and_reopen() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let _ = std::fs::remove_file(&path);
        {
            let dm = DiskManager::open(&path, 256).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut buf = vec![0u8; 256];
            buf[8] = 9;
            dm.write_page(id, &mut buf).unwrap();
            dm.sync().unwrap();
        }
        {
            let dm = DiskManager::open(&path, 256).unwrap();
            assert_eq!(dm.page_count(), 1);
            let mut buf = vec![0u8; 256];
            dm.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf[8], 9);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_with_bad_length_is_corruption() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.db");
        std::fs::write(&path, vec![0u8; 100]).unwrap(); // not a multiple of 256
        assert!(DiskManager::open(&path, 256).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn on_disk_corruption_detected() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 128];
        buf[50] = 1;
        dm.write_page(id, &mut buf).unwrap();
        // Corrupt the backing store directly.
        {
            let mut inner = dm.inner.lock();
            if let Backing::Memory(m) = &mut inner.backing {
                m[60] ^= 0xFF;
            }
        }
        let mut back = vec![0u8; 128];
        let err = dm.read_page(id, &mut back).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }
}
