//! Page-addressed file I/O.
//!
//! A [`DiskManager`] owns one file divided into fixed-size pages. Every
//! write seals the page checksum; every read verifies it, so silent on-disk
//! corruption surfaces as [`JaguarError::Corruption`] instead of garbage
//! query results.
//!
//! An in-memory variant backs temporary databases (examples, tests, and the
//! benchmark harness use it so experiment timings measure the execution
//! designs, not the host filesystem — the paper likewise subtracts "basic
//! system costs", Figure 4).
//!
//! When constructed with a [`PageCipher`] (encryption at rest), the page
//! *body* (bytes `COMMON_HEADER..`) is sealed on every write and opened on
//! every read. In-memory frames handed to callers are always plaintext with
//! zeroed sec fields — encryption is strictly an I/O-boundary transform, so
//! the buffer pool, WAL replay idempotence, and every layer above are
//! unaware of it. The first 40 header bytes (checksum, type, slot counts,
//! LSN, sec fields) stay plaintext: checksums verify and recovery can
//! extend files without the key.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::PageId;
use jaguar_common::retry::{self, RetryPolicy};
use jaguar_common::{fault, obs};
use jaguar_sec::{metrics as sec_metrics, PageCipher};
use parking_lot::Mutex;

use crate::page::{
    seal_checksum, sec_marker, sec_nonce, sec_tag, set_sec_fields, verify_checksum, COMMON_HEADER,
    SEC_MARKER_ENCRYPTED,
};

/// Run one fault-injectable I/O step under the storage retry policy.
///
/// Every attempt consults the named fault site first, so the chaos harness
/// can model both *transient* faults (`site=1`: the first attempt fails,
/// the retry recovers, the statement succeeds) and *permanent* ones (a
/// bare always-on `site`: retries exhaust and the statement fails cleanly,
/// never poisoning the engine). Only injected faults and `Interrupted`
/// syscalls are transient; real media errors surface on the first attempt,
/// and `read_exact`/`write_all` absorb `Interrupted` internally, so a real
/// partial transfer is never re-driven.
fn with_storage_retry<T>(site: &str, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    RetryPolicy::storage().run(site, retry::is_transient_storage, || {
        if fault::should_fail(site) {
            obs::global().counter("storage.faults_injected").inc();
            return Err(JaguarError::Io(std::io::Error::other(format!(
                "injected fault at {site}"
            ))));
        }
        op()
    })
}

enum Backing {
    File(File),
    Memory(Vec<u8>),
}

struct Inner {
    backing: Backing,
    page_count: u32,
}

/// Thread-safe page-granular storage.
pub struct DiskManager {
    page_size: usize,
    cipher: Option<Arc<dyn PageCipher>>,
    inner: Mutex<Inner>,
}

impl DiskManager {
    /// Open (or create) a file-backed manager. An existing file must contain
    /// a whole number of pages of the given size.
    pub fn open(path: &Path, page_size: usize) -> Result<DiskManager> {
        DiskManager::open_with_cipher(path, page_size, None)
    }

    /// Open (or create) a file-backed manager that seals page bodies with
    /// `cipher` on write and opens them on read (`None` = plaintext).
    pub fn open_with_cipher(
        path: &Path,
        page_size: usize,
        cipher: Option<Arc<dyn PageCipher>>,
    ) -> Result<DiskManager> {
        assert!(page_size >= 64, "page size too small to hold headers");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(JaguarError::Corruption(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(DiskManager {
            page_size,
            cipher,
            inner: Mutex::new(Inner {
                backing: Backing::File(file),
                page_count: (len / page_size as u64) as u32,
            }),
        })
    }

    /// A purely in-memory manager (temporary databases).
    pub fn in_memory(page_size: usize) -> DiskManager {
        assert!(page_size >= 64, "page size too small to hold headers");
        DiskManager {
            page_size,
            cipher: None,
            inner: Mutex::new(Inner {
                backing: Backing::Memory(Vec::new()),
                page_count: 0,
            }),
        }
    }

    /// Transform a plaintext in-memory page into its on-disk sealed form:
    /// stamp the sec fields, encrypt the body, seal the checksum over the
    /// ciphertext. The WAL commit path uses this so logged page images are
    /// byte-identical to what [`DiskManager::write_page`] would persist —
    /// recovery replay then writes log bytes verbatim without the key.
    pub fn seal_for_disk(cipher: &dyn PageCipher, id: PageId, buf: &mut [u8]) {
        let nonce = cipher.next_nonce();
        let tag = cipher.seal(id.0 as u64, nonce, &mut buf[COMMON_HEADER..]);
        set_sec_fields(buf, SEC_MARKER_ENCRYPTED, nonce, tag);
        seal_checksum(buf);
        obs::global().counter(sec_metrics::PAGES_ENCRYPTED).inc();
    }

    /// Inverse of [`DiskManager::seal_for_disk`]: verify the tag, decrypt
    /// the body in place, zero the sec fields. Checksum is assumed already
    /// verified. Plaintext pages (marker 0) pass through only while they
    /// are still all-zero — the shape recovery replay leaves behind when it
    /// extends a file past a hole — otherwise opening a plaintext body with
    /// a cipher configured is corruption (someone bypassed encryption).
    fn open_from_disk(cipher: &dyn PageCipher, id: PageId, buf: &mut [u8]) -> Result<()> {
        match sec_marker(buf) {
            SEC_MARKER_ENCRYPTED => {
                let (nonce, tag) = (sec_nonce(buf), sec_tag(buf));
                cipher.open(id.0 as u64, nonce, tag, &mut buf[COMMON_HEADER..])?;
                crate::page::clear_sec_fields(buf);
                obs::global().counter(sec_metrics::PAGES_DECRYPTED).inc();
                Ok(())
            }
            0 if buf[4..].iter().all(|&b| b == 0) => Ok(()),
            0 => Err(JaguarError::Corruption(format!(
                "{id}: plaintext page body in an encrypted database"
            ))),
            other => Err(JaguarError::Corruption(format!(
                "{id}: unknown page encryption marker {other:#x}"
            ))),
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    pub fn page_count(&self) -> u32 {
        self.inner.lock().page_count
    }

    /// Append a fresh zeroed page and return its id.
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = inner.page_count;
        if id == u32::MAX {
            return Err(JaguarError::Storage("file full: page ids exhausted".into()));
        }
        let mut sealed = vec![0u8; self.page_size];
        // A zeroed page has checksum-of-zeros; seal so a read-back verifies.
        // Under encryption even the fresh zero body is sealed, so the only
        // plaintext pages an encrypted file can hold are recovery-extended
        // holes.
        match &self.cipher {
            Some(c) => DiskManager::seal_for_disk(c.as_ref(), PageId(id), &mut sealed),
            None => seal_checksum(&mut sealed),
        }
        // The extension rides the write fault site: an INSERT that grows the
        // file sees the same injected faults as one updating in place.
        with_storage_retry("storage.disk.write", || {
            match &mut inner.backing {
                Backing::File(f) => {
                    f.seek(SeekFrom::Start(id as u64 * self.page_size as u64))?;
                    f.write_all(&sealed)?;
                }
                Backing::Memory(m) => m.extend_from_slice(&sealed),
            }
            Ok(())
        })?;
        inner.page_count = id + 1;
        Ok(PageId(id))
    }

    /// Read a page into `buf` (must be exactly one page long), verifying
    /// its checksum.
    pub fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size);
        let mut inner = self.inner.lock();
        if id.0 >= inner.page_count {
            return Err(JaguarError::Storage(format!("{id} does not exist")));
        }
        let off = id.0 as usize * self.page_size;
        with_storage_retry("storage.disk.read", || {
            match &mut inner.backing {
                Backing::File(f) => {
                    f.seek(SeekFrom::Start(off as u64))?;
                    f.read_exact(buf)?;
                }
                Backing::Memory(m) => buf.copy_from_slice(&m[off..off + self.page_size]),
            }
            Ok(())
        })?;
        drop(inner);
        verify_checksum(buf)?;
        match &self.cipher {
            Some(c) => DiskManager::open_from_disk(c.as_ref(), id, buf),
            None if sec_marker(buf) == SEC_MARKER_ENCRYPTED => Err(JaguarError::SecurityViolation(
                format!("{id} is encrypted; opening this database requires its encryption_key"),
            )),
            None => Ok(()),
        }
    }

    /// Seal the checksum and write a page. Under encryption the caller's
    /// buffer is left untouched (plaintext, zero sec fields) and a sealed
    /// scratch copy is written instead; otherwise the checksum is sealed in
    /// place, as before.
    pub fn write_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        assert_eq!(buf.len(), self.page_size);
        let mut scratch;
        let out: &mut [u8] = match &self.cipher {
            Some(c) => {
                scratch = buf.to_vec();
                // Already-sealed bytes (WAL replay writing logged on-disk
                // images verbatim) pass through: sealing twice would
                // double-encrypt.
                if sec_marker(&scratch) != SEC_MARKER_ENCRYPTED {
                    DiskManager::seal_for_disk(c.as_ref(), id, &mut scratch);
                } else {
                    seal_checksum(&mut scratch);
                }
                &mut scratch
            }
            None => {
                seal_checksum(buf);
                buf
            }
        };
        let mut inner = self.inner.lock();
        if id.0 >= inner.page_count {
            return Err(JaguarError::Storage(format!("{id} does not exist")));
        }
        let off = id.0 as usize * self.page_size;
        with_storage_retry("storage.disk.write", || {
            match &mut inner.backing {
                Backing::File(f) => {
                    f.seek(SeekFrom::Start(off as u64))?;
                    f.write_all(out)?;
                }
                Backing::Memory(m) => m[off..off + self.page_size].copy_from_slice(out),
            }
            Ok(())
        })
    }

    /// Flush file-backed data all the way to stable storage (`sync_all`,
    /// i.e. `fsync`: data *and* metadata, so a freshly extended file keeps
    /// its length across power loss). In-memory backings are a no-op.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Backing::File(f) = &mut inner.backing {
            with_storage_retry("storage.disk.fsync", || {
                f.flush()?;
                f.sync_all()?;
                Ok(())
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault sites are process-global, so tests that arm them (or do I/O
    /// that consults them) run serialized.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn injected_transient_read_fault_recovers() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        fault::arm("storage.disk.read", 1);
        let mut buf = vec![0u8; 128];
        // One injected failure; the storage retry policy absorbs it.
        dm.read_page(id, &mut buf).unwrap();
        fault::disarm("storage.disk.read");
    }

    #[test]
    fn injected_permanent_write_fault_fails_cleanly() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 128];
        fault::arm("storage.disk.write", fault::ALWAYS);
        let err = dm.write_page(id, &mut buf).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        fault::disarm("storage.disk.write");
        // Not poisoned: the identical write now succeeds and reads back.
        dm.write_page(id, &mut buf).unwrap();
        let mut back = vec![0u8; 128];
        dm.read_page(id, &mut back).unwrap();
    }

    #[test]
    fn injected_fsync_fault_surfaces_then_clears() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-fs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sync.db");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open(&path, 256).unwrap();
        dm.allocate_page().unwrap();
        fault::arm("storage.disk.fsync", fault::ALWAYS);
        assert!(dm.sync().is_err());
        fault::disarm("storage.disk.fsync");
        dm.sync().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_alloc_write_read() {
        let _g = serial();
        let dm = DiskManager::in_memory(256);
        let a = dm.allocate_page().unwrap();
        let b = dm.allocate_page().unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert_eq!(dm.page_count(), 2);

        let mut buf = vec![0u8; 256];
        buf[100] = 42;
        dm.write_page(b, &mut buf).unwrap();

        let mut back = vec![0u8; 256];
        dm.read_page(b, &mut back).unwrap();
        assert_eq!(back[100], 42);
    }

    #[test]
    fn fresh_page_reads_back_clean() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 128];
        dm.read_page(id, &mut buf).unwrap(); // checksum of zeroed page verifies
        assert!(buf[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn missing_page_is_error() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let mut buf = vec![0u8; 128];
        assert!(dm.read_page(PageId(0), &mut buf).is_err());
        assert!(dm.write_page(PageId(5), &mut buf).is_err());
    }

    #[test]
    fn file_backed_roundtrip_and_reopen() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        let _ = std::fs::remove_file(&path);
        {
            let dm = DiskManager::open(&path, 256).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut buf = vec![0u8; 256];
            buf[8] = 9;
            dm.write_page(id, &mut buf).unwrap();
            dm.sync().unwrap();
        }
        {
            let dm = DiskManager::open(&path, 256).unwrap();
            assert_eq!(dm.page_count(), 1);
            let mut buf = vec![0u8; 256];
            dm.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf[8], 9);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_with_bad_length_is_corruption() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.db");
        std::fs::write(&path, vec![0u8; 100]).unwrap(); // not a multiple of 256
        assert!(DiskManager::open(&path, 256).is_err());
        let _ = std::fs::remove_file(&path);
    }

    fn test_cipher() -> Arc<dyn PageCipher> {
        Arc::new(jaguar_sec::JaguarAead::new([3u8; jaguar_sec::KEY_LEN]))
    }

    #[test]
    fn encrypted_roundtrip_keeps_frames_plaintext() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-enc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("enc.db");
        let _ = std::fs::remove_file(&path);
        let dm = DiskManager::open_with_cipher(&path, 256, Some(test_cipher())).unwrap();
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 256];
        let secret = b"TOP-SECRET-ROW";
        buf[COMMON_HEADER + 10..COMMON_HEADER + 10 + secret.len()].copy_from_slice(secret);
        dm.write_page(id, &mut buf).unwrap();
        // Caller's frame untouched: still plaintext, sec fields still zero.
        assert_eq!(
            &buf[COMMON_HEADER + 10..COMMON_HEADER + 10 + secret.len()],
            secret
        );
        assert_eq!(sec_marker(&buf), 0);
        // The raw file never contains the plaintext.
        dm.sync().unwrap();
        let raw = std::fs::read(&path).unwrap();
        assert!(
            !raw.windows(secret.len()).any(|w| w == secret),
            "plaintext leaked to disk"
        );
        // Read back decrypts and zeroes the sec fields.
        let mut back = vec![0u8; 256];
        dm.read_page(id, &mut back).unwrap();
        assert_eq!(
            &back[COMMON_HEADER + 10..COMMON_HEADER + 10 + secret.len()],
            secret
        );
        assert_eq!(sec_marker(&back), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_key_and_keyless_reads_fail_cleanly() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-enc2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("enc2.db");
        let _ = std::fs::remove_file(&path);
        {
            let dm = DiskManager::open_with_cipher(&path, 256, Some(test_cipher())).unwrap();
            let id = dm.allocate_page().unwrap();
            let mut buf = vec![0u8; 256];
            buf[COMMON_HEADER] = 7;
            dm.write_page(id, &mut buf).unwrap();
            dm.sync().unwrap();
        }
        // Wrong key: checksum passes (plaintext header), tag fails.
        let wrong: Arc<dyn PageCipher> =
            Arc::new(jaguar_sec::JaguarAead::new([4u8; jaguar_sec::KEY_LEN]));
        let dm = DiskManager::open_with_cipher(&path, 256, Some(wrong)).unwrap();
        let mut buf = vec![0u8; 256];
        let err = dm.read_page(PageId(0), &mut buf).unwrap_err();
        assert!(err.to_string().contains("tag mismatch"), "{err}");
        // No key at all: explicit "encrypted" error, not garbage.
        let dm = DiskManager::open(&path, 256).unwrap();
        let err = dm.read_page(PageId(0), &mut buf).unwrap_err();
        assert!(err.to_string().contains("encryption_key"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_extended_zero_page_tolerated_under_cipher() {
        let _g = serial();
        let dir = std::env::temp_dir().join(format!("jaguar-disk-enc3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("enc3.db");
        let _ = std::fs::remove_file(&path);
        // Recovery extends files with a *plain* DiskManager (no key needed).
        {
            let dm = DiskManager::open(&path, 256).unwrap();
            dm.allocate_page().unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open_with_cipher(&path, 256, Some(test_cipher())).unwrap();
        let mut buf = vec![0u8; 256];
        dm.read_page(PageId(0), &mut buf).unwrap();
        assert!(buf[4..].iter().all(|&b| b == 0));
        // But a *non-zero* plaintext body in an encrypted database is
        // corruption, not silent acceptance.
        {
            let plain = DiskManager::open(&path, 256).unwrap();
            let mut b = vec![0u8; 256];
            b[COMMON_HEADER] = 1;
            plain.write_page(PageId(0), &mut b).unwrap();
        }
        let err = dm.read_page(PageId(0), &mut buf).unwrap_err();
        assert!(err.to_string().contains("plaintext page body"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn on_disk_corruption_detected() {
        let _g = serial();
        let dm = DiskManager::in_memory(128);
        let id = dm.allocate_page().unwrap();
        let mut buf = vec![0u8; 128];
        buf[50] = 1;
        dm.write_page(id, &mut buf).unwrap();
        // Corrupt the backing store directly.
        {
            let mut inner = dm.inner.lock();
            if let Backing::Memory(m) = &mut inner.backing {
                m[60] ^= 0xFF;
            }
        }
        let mut back = vec![0u8; 128];
        let err = dm.read_page(id, &mut back).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }
}
