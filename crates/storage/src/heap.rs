//! Heap files: unordered collections of variable-length records.
//!
//! A heap file occupies one [`DiskManager`](crate::disk::DiskManager) file through a shared
//! [`BufferPool`]:
//!
//! * **page 0** is the file header (magic + free-list head),
//! * records small enough to inline live on slotted pages,
//! * larger records (e.g. the paper's 10,000-byte `ByteArray` tuples, which
//!   exceed one 8 KiB page) spill into a chain of overflow pages, with a
//!   9-byte stub left in the slot,
//! * deleted overflow pages go onto an intra-file free list and are reused
//!   by later allocations.
//!
//! The scan iterator visits record pages in file order and resolves stubs
//! transparently, so the executor above sees a stream of full records.

use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::{PageId, RecordId};
use jaguar_common::obs;
use parking_lot::{Mutex, MutexGuard};

use crate::buffer::BufferPool;
use crate::page::{
    init_overflow, overflow_capacity, page_type, read_overflow, set_page_type, PageType,
    SlottedPage, COMMON_HEADER, SLOT_SIZE,
};

const MAGIC: u32 = 0x4A47_4846; // "JGHF"
const KIND_INLINE: u8 = 0;
const KIND_SPILLED: u8 = 1;
/// Size of a spilled-record stub: kind + total_len (u32) + first page (u32).
const STUB_LEN: usize = 9;

/// An unordered record file with overflow support and a page free list.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// Page the last successful insert landed on; tried first next time.
    insert_hint: Mutex<PageId>,
    /// Serialises free-list manipulation (the list head lives on page 0).
    alloc_lock: Mutex<()>,
    /// Ticks when a writer finds `insert_hint` held by another thread.
    hint_waits: Arc<obs::Counter>,
    /// Ticks when page alloc/free finds `alloc_lock` held by another thread.
    alloc_waits: Arc<obs::Counter>,
}

/// Take `m`, counting the acquisition as a contended wait when another
/// thread holds it right now — parallel workloads surface write-side
/// hotspots in `metrics()` instead of only in profiles.
fn lock_counted<'a, T: ?Sized>(m: &'a Mutex<T>, waits: &obs::Counter) -> MutexGuard<'a, T> {
    match m.try_lock() {
        Some(g) => g,
        None => {
            waits.inc();
            m.lock()
        }
    }
}

impl HeapFile {
    /// Create a new heap file on an empty disk manager.
    pub fn create(pool: Arc<BufferPool>) -> Result<HeapFile> {
        if pool.disk().page_count() != 0 {
            return Err(JaguarError::Storage(
                "HeapFile::create requires an empty file".into(),
            ));
        }
        let header = pool.allocate()?;
        {
            let mut buf = header.write();
            set_page_type(&mut buf, PageType::FileHeader);
            buf[COMMON_HEADER..COMMON_HEADER + 4].copy_from_slice(&MAGIC.to_le_bytes());
            buf[COMMON_HEADER + 4..COMMON_HEADER + 8]
                .copy_from_slice(&PageId::INVALID.0.to_le_bytes());
        }
        drop(header);
        Ok(HeapFile {
            pool,
            insert_hint: Mutex::new(PageId::INVALID),
            alloc_lock: Mutex::new(()),
            hint_waits: obs::global().counter("storage.heap.insert_hint_waits"),
            alloc_waits: obs::global().counter("storage.heap.alloc_lock_waits"),
        })
    }

    /// Open an existing heap file, validating the header page.
    pub fn open(pool: Arc<BufferPool>) -> Result<HeapFile> {
        if pool.disk().page_count() == 0 {
            return Err(JaguarError::Storage("file is empty; use create()".into()));
        }
        let header = pool.fetch(PageId(0))?;
        {
            let buf = header.read();
            if page_type(&buf)? != PageType::FileHeader {
                return Err(JaguarError::Corruption(
                    "page 0 is not a file header".into(),
                ));
            }
            let magic =
                u32::from_le_bytes(buf[COMMON_HEADER..COMMON_HEADER + 4].try_into().expect("4"));
            if magic != MAGIC {
                return Err(JaguarError::Corruption(format!(
                    "bad heap file magic {magic:#x}"
                )));
            }
        }
        Ok(HeapFile {
            pool,
            insert_hint: Mutex::new(PageId::INVALID),
            alloc_lock: Mutex::new(()),
            hint_waits: obs::global().counter("storage.heap.insert_hint_waits"),
            alloc_waits: obs::global().counter("storage.heap.alloc_lock_waits"),
        })
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn page_size(&self) -> usize {
        self.pool.page_size()
    }

    /// Largest record payload that can be stored inline on a slotted page.
    pub fn max_inline(&self) -> usize {
        self.page_size() - COMMON_HEADER - SLOT_SIZE - 1
    }

    // -- free-list-aware page allocation ---------------------------------

    fn free_list_head(&self) -> Result<PageId> {
        let header = self.pool.fetch(PageId(0))?;
        let buf = header.read();
        Ok(PageId(u32::from_le_bytes(
            buf[COMMON_HEADER + 4..COMMON_HEADER + 8]
                .try_into()
                .expect("4"),
        )))
    }

    fn set_free_list_head(&self, head: PageId) -> Result<()> {
        let header = self.pool.fetch(PageId(0))?;
        let mut buf = header.write();
        buf[COMMON_HEADER + 4..COMMON_HEADER + 8].copy_from_slice(&head.0.to_le_bytes());
        Ok(())
    }

    /// Pop a page from the free list or allocate a fresh one.
    fn acquire_page(&self) -> Result<PageId> {
        let _g = lock_counted(&self.alloc_lock, &self.alloc_waits);
        let head = self.free_list_head()?;
        if head.is_valid() {
            let next = {
                let h = self.pool.fetch(head)?;
                let buf = h.read();
                PageId(u32::from_le_bytes(
                    buf[COMMON_HEADER..COMMON_HEADER + 4].try_into().expect("4"),
                ))
            };
            self.set_free_list_head(next)?;
            Ok(head)
        } else {
            self.pool.disk().allocate_page()
        }
    }

    /// Push a page onto the free list.
    fn release_page(&self, page: PageId) -> Result<()> {
        let _g = lock_counted(&self.alloc_lock, &self.alloc_waits);
        let head = self.free_list_head()?;
        {
            let h = self.pool.fetch(page)?;
            let mut buf = h.write();
            buf[4..].fill(0);
            set_page_type(&mut buf, PageType::Free);
            buf[COMMON_HEADER..COMMON_HEADER + 4].copy_from_slice(&head.0.to_le_bytes());
        }
        self.set_free_list_head(page)
    }

    // -- record operations ------------------------------------------------

    /// Insert a record, spilling to overflow pages when necessary.
    pub fn insert(&self, record: &[u8]) -> Result<RecordId> {
        if record.len() <= self.max_inline() {
            let mut framed = Vec::with_capacity(record.len() + 1);
            framed.push(KIND_INLINE);
            framed.extend_from_slice(record);
            self.insert_framed(&framed)
        } else {
            let first = self.write_overflow_chain(record)?;
            let mut stub = Vec::with_capacity(STUB_LEN);
            stub.push(KIND_SPILLED);
            stub.extend_from_slice(&(record.len() as u32).to_le_bytes());
            stub.extend_from_slice(&first.0.to_le_bytes());
            self.insert_framed(&stub)
        }
    }

    /// Place an already-framed record onto some slotted page.
    fn insert_framed(&self, framed: &[u8]) -> Result<RecordId> {
        // Fast path: the hinted page.
        let hint = *lock_counted(&self.insert_hint, &self.hint_waits);
        if hint.is_valid() {
            if let Some(rid) = self.try_insert_on(hint, framed)? {
                return Ok(rid);
            }
        }
        // Slow path: fresh slotted page.
        let page = self.acquire_page()?;
        let handle = self.pool.fetch(page)?;
        let slot = {
            let mut buf = handle.write();
            let mut sp = SlottedPage::init(&mut buf);
            sp.insert(framed).ok_or_else(|| {
                JaguarError::Storage(format!(
                    "record of {} bytes does not fit an empty page",
                    framed.len()
                ))
            })?
        };
        *lock_counted(&self.insert_hint, &self.hint_waits) = page;
        Ok(RecordId::new(page, slot))
    }

    fn try_insert_on(&self, page: PageId, framed: &[u8]) -> Result<Option<RecordId>> {
        let handle = self.pool.fetch(page)?;
        let mut buf = handle.write();
        if buf[4] != PageType::Slotted as u8 {
            return Ok(None);
        }
        let mut sp = SlottedPage::open(&mut buf)?;
        Ok(sp.insert(framed).map(|slot| RecordId::new(page, slot)))
    }

    fn write_overflow_chain(&self, record: &[u8]) -> Result<PageId> {
        let cap = overflow_capacity(self.page_size());
        // Build back-to-front so each page can point at the next.
        let mut next = PageId::INVALID;
        let chunks: Vec<&[u8]> = record.chunks(cap).collect();
        for chunk in chunks.iter().rev() {
            let page = self.acquire_page()?;
            let handle = self.pool.fetch(page)?;
            {
                let mut buf = handle.write();
                init_overflow(&mut buf, chunk, next);
            }
            next = page;
        }
        Ok(next)
    }

    fn read_overflow_chain(&self, first: PageId, total_len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(total_len);
        let mut page = first;
        while page.is_valid() {
            let handle = self.pool.fetch(page)?;
            let buf = handle.read();
            let (chunk, next) = read_overflow(&buf)?;
            out.extend_from_slice(chunk);
            if out.len() > total_len {
                return Err(JaguarError::Corruption(
                    "overflow chain longer than declared record".into(),
                ));
            }
            page = next;
        }
        if out.len() != total_len {
            return Err(JaguarError::Corruption(format!(
                "overflow chain yielded {} bytes, stub declared {total_len}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn decode_framed(&self, framed: &[u8]) -> Result<Vec<u8>> {
        match framed.first() {
            Some(&KIND_INLINE) => Ok(framed[1..].to_vec()),
            Some(&KIND_SPILLED) => {
                if framed.len() != STUB_LEN {
                    return Err(JaguarError::Corruption("malformed spill stub".into()));
                }
                let total = u32::from_le_bytes(framed[1..5].try_into().expect("4")) as usize;
                let first = PageId(u32::from_le_bytes(framed[5..9].try_into().expect("4")));
                self.read_overflow_chain(first, total)
            }
            _ => Err(JaguarError::Corruption("empty record frame".into())),
        }
    }

    /// Fetch a record by id (resolving overflow chains).
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        let handle = self.pool.fetch(rid.page)?;
        let mut buf = handle.write(); // SlottedPage wants &mut; content unchanged
        let sp = SlottedPage::open(&mut buf)?;
        let framed = sp.get(rid.slot)?.to_vec();
        drop(buf);
        drop(handle);
        self.decode_framed(&framed)
    }

    /// Delete a record, releasing any overflow pages to the free list.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let framed = {
            let handle = self.pool.fetch(rid.page)?;
            let mut buf = handle.write();
            let mut sp = SlottedPage::open(&mut buf)?;
            let framed = sp.get(rid.slot)?.to_vec();
            sp.delete(rid.slot)?;
            framed
        };
        if framed.first() == Some(&KIND_SPILLED) && framed.len() == STUB_LEN {
            let mut page = PageId(u32::from_le_bytes(framed[5..9].try_into().expect("4")));
            while page.is_valid() {
                let next = {
                    let handle = self.pool.fetch(page)?;
                    let buf = handle.read();
                    let (_, next) = read_overflow(&buf)?;
                    next
                };
                self.release_page(page)?;
                page = next;
            }
        }
        Ok(())
    }

    /// Number of pages currently in the underlying file.
    pub fn file_pages(&self) -> u32 {
        self.pool.disk().page_count()
    }

    /// Iterate over every live record in file order.
    pub fn scan(self: &Arc<Self>) -> HeapScan {
        self.scan_range(1, u32::MAX)
    }

    /// Iterate over live records whose slotted page lies in `[start, end)` —
    /// the morsel form of [`HeapFile::scan`]. `start` is floored at page 1
    /// (page 0 is the file header); `end` is additionally bounded by the
    /// file's live page count at each step, so `u32::MAX` means "to the end
    /// of the file". Disjoint ranges partition the scan: every record is
    /// seen by exactly one range.
    pub fn scan_range(self: &Arc<Self>, start: u32, end: u32) -> HeapScan {
        HeapScan {
            heap: Arc::clone(self),
            page: PageId(start.max(1)), // page 0 is the file header
            end,
            slot: 0,
            done: false,
        }
    }
}

/// Forward iterator over all records of a [`HeapFile`].
pub struct HeapScan {
    heap: Arc<HeapFile>,
    page: PageId,
    /// First page (exclusive bound) the scan will not visit.
    end: u32,
    slot: u16,
    done: bool,
}

impl HeapScan {
    fn next_record(&mut self) -> Result<Option<(RecordId, Vec<u8>)>> {
        loop {
            if self.done
                || self.page.0 >= self.end
                || self.page.0 >= self.heap.pool.disk().page_count()
            {
                self.done = true;
                return Ok(None);
            }
            let handle = self.heap.pool.fetch(self.page)?;
            let mut buf = handle.write();
            // Skip anything that is not a record page — including page
            // types this module does not know about (index pages share
            // the file).
            if buf[4] != PageType::Slotted as u8 {
                drop(buf);
                self.page = PageId(self.page.0 + 1);
                self.slot = 0;
                continue;
            }
            let sp = SlottedPage::open(&mut buf)?;
            while self.slot < sp.slot_count() {
                let slot = self.slot;
                self.slot += 1;
                if sp.is_live(slot) {
                    let framed = sp.get(slot)?.to_vec();
                    let rid = RecordId::new(self.page, slot);
                    drop(buf);
                    let record = self.heap.decode_framed(&framed)?;
                    return Ok(Some((rid, record)));
                }
            }
            drop(buf);
            self.page = PageId(self.page.0 + 1);
            self.slot = 0;
        }
    }
}

impl Iterator for HeapScan {
    type Item = Result<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(item)) => Some(Ok(item)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn heap(page_size: usize, frames: usize) -> Arc<HeapFile> {
        let disk = Arc::new(DiskManager::in_memory(page_size));
        let pool = Arc::new(BufferPool::new(disk, frames));
        Arc::new(HeapFile::create(pool).unwrap())
    }

    #[test]
    fn insert_get_small_records() {
        let h = heap(512, 16);
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap(), b"beta");
    }

    #[test]
    fn spill_roundtrip() {
        let h = heap(512, 64);
        // 10 KB record on 512-byte pages → ~21 overflow pages.
        let big: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let rid = h.insert(&big).unwrap();
        assert_eq!(h.get(rid).unwrap(), big);
        assert!(h.file_pages() > 20);
    }

    #[test]
    fn spill_exact_page_multiple() {
        let h = heap(512, 64);
        let cap = overflow_capacity(512);
        let big = vec![9u8; cap * 3]; // exactly three chunks
        let rid = h.insert(&big).unwrap();
        assert_eq!(h.get(rid).unwrap(), big);
    }

    #[test]
    fn boundary_between_inline_and_spill() {
        let h = heap(512, 64);
        let max = h.max_inline();
        let inline = vec![1u8; max];
        let spill = vec![2u8; max + 1];
        let r1 = h.insert(&inline).unwrap();
        let r2 = h.insert(&spill).unwrap();
        assert_eq!(h.get(r1).unwrap(), inline);
        assert_eq!(h.get(r2).unwrap(), spill);
    }

    #[test]
    fn scan_sees_all_records_in_order_of_insert_pages() {
        let h = heap(512, 64);
        let mut rids = Vec::new();
        for i in 0..100u32 {
            rids.push(h.insert(format!("record-{i}").as_bytes()).unwrap());
        }
        let scanned: Vec<_> = h.scan().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(scanned.len(), 100);
        // Every inserted rid appears exactly once.
        let mut seen: Vec<_> = scanned.iter().map(|(rid, _)| *rid).collect();
        seen.sort();
        let mut expect = rids.clone();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scan_range_partitions_cover_every_record_once() {
        let h = heap(512, 64);
        for i in 0..200u32 {
            h.insert(format!("rec-{i}").as_bytes()).unwrap();
        }
        let full: Vec<_> = h.scan().collect::<Result<Vec<_>>>().unwrap();
        let pages = h.file_pages();
        // Split [1, pages) into 3-page morsels and re-assemble in order.
        let mut pieced = Vec::new();
        let mut start = 1;
        while start < pages {
            let end = (start + 3).min(pages);
            pieced.extend(
                h.scan_range(start, end)
                    .collect::<Result<Vec<_>>>()
                    .unwrap(),
            );
            start = end;
        }
        assert_eq!(pieced, full, "disjoint ranges partition the scan");
        assert!(h.scan_range(pages, u32::MAX).next().is_none());
    }

    #[test]
    fn scan_resolves_spilled_records() {
        let h = heap(512, 64);
        h.insert(b"small").unwrap();
        let big = vec![3u8; 2000];
        h.insert(&big).unwrap();
        h.insert(b"small2").unwrap();
        let recs: Vec<_> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().any(|r| r == &big));
        assert!(recs.iter().any(|r| r == b"small"));
    }

    #[test]
    fn delete_hides_from_scan_and_get() {
        let h = heap(512, 16);
        let a = h.insert(b"keep").unwrap();
        let b = h.insert(b"drop").unwrap();
        h.delete(b).unwrap();
        assert!(h.get(b).is_err());
        assert_eq!(h.get(a).unwrap(), b"keep");
        let recs: Vec<_> = h.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(recs, vec![b"keep".to_vec()]);
    }

    #[test]
    fn deleting_spilled_record_recycles_pages() {
        let h = heap(512, 64);
        let big = vec![4u8; 3000];
        let rid = h.insert(&big).unwrap();
        let pages_after_insert = h.file_pages();
        h.delete(rid).unwrap();
        // Re-inserting the same record should reuse freed pages rather than
        // growing the file.
        let rid2 = h.insert(&big).unwrap();
        assert_eq!(h.file_pages(), pages_after_insert);
        assert_eq!(h.get(rid2).unwrap(), big);
    }

    #[test]
    fn reopen_preserves_records() {
        let disk = Arc::new(DiskManager::in_memory(512));
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 16));
        let rid = {
            let h = Arc::new(HeapFile::create(Arc::clone(&pool)).unwrap());
            let rid = h.insert(b"persistent").unwrap();
            h.pool().flush_all().unwrap();
            rid
        };
        let h2 = Arc::new(HeapFile::open(pool).unwrap());
        assert_eq!(h2.get(rid).unwrap(), b"persistent");
    }

    #[test]
    fn open_rejects_garbage() {
        let disk = Arc::new(DiskManager::in_memory(512));
        let pool = Arc::new(BufferPool::new(disk, 4));
        assert!(HeapFile::open(Arc::clone(&pool)).is_err()); // empty
                                                             // Allocate a non-header page 0.
        let h = pool.allocate().unwrap();
        {
            let mut b = h.write();
            SlottedPage::init(&mut b);
        }
        drop(h);
        assert!(HeapFile::open(pool).is_err());
    }

    #[test]
    fn many_records_with_tiny_pool_exercise_eviction() {
        let h = heap(256, 4);
        let mut rids = Vec::new();
        for i in 0..500u32 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), (i as u32).to_le_bytes());
        }
        assert!(h.pool().stats().evictions > 0);
    }
}
