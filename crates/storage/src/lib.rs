//! # jaguar-storage
//!
//! The storage engine underneath Jaguar-RS — the stand-in for the Shore
//! storage manager that PREDATOR was built on (`[CDF+94]` in the paper).
//!
//! The paper's experiments need exactly one storage capability: sequential
//! scans over relations of 10,000 tuples whose `ByteArray` attributes range
//! from 1 byte to 10,000 bytes. This crate provides that properly rather
//! than as a toy:
//!
//! * [`disk::DiskManager`] — a page-addressed file with FNV-1a page
//!   checksums verified on every read,
//! * [`page`] — slotted record pages with slot reuse and in-place
//!   compaction,
//! * [`buffer::BufferPool`] — a fixed-size LRU page cache with pin counts
//!   and dirty write-back,
//! * [`heap::HeapFile`] — unordered record files with overflow chains for
//!   records larger than a page (a 10,000-byte tuple does not fit an 8 KiB
//!   page) and a full-file scan iterator.
//!
//! Durability hooks: every page header carries an LSN
//! ([`page::page_lsn`]), and the buffer pool accepts a [`WalHook`]
//! through which `jaguar-wal` enforces the WAL-before-data and no-steal
//! invariants (see `buffer` module docs).

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;

pub use btree::BTree;
pub use buffer::{BufferPool, PageHandle, WalHook};
pub use disk::DiskManager;
pub use heap::HeapFile;
pub use page::ON_DISK_FORMAT_VERSION;
