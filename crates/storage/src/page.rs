//! Page layouts.
//!
//! Every page starts with a 40-byte common header:
//!
//! ```text
//! offset 0  u32  checksum   (FNV-1a over bytes[4..]; maintained by DiskManager)
//! offset 4  u8   page_type  (Free / Slotted / Overflow / FileHeader)
//! offset 5  u8   reserved
//! offset 6  u16  h0         } type-specific: Slotted: slot_count / free_end
//! offset 8  u16  h1         } Overflow:     (unused)
//! offset 10 u16  h2         }
//! offset 12 u64  page_lsn   (LSN of the WAL record carrying this page's
//!                            latest logged image; 0 = never logged)
//! offset 20 u32  sec_marker (0 = plaintext body; "JGSE" = bytes 40.. are
//!                            ciphertext; maintained by DiskManager at I/O
//!                            time — always 0 on in-memory frames)
//! offset 24 u64  sec_nonce  (per-write AEAD nonce when encrypted)
//! offset 32 u64  sec_tag    (authentication tag over the ciphertext)
//! ```
//!
//! Bytes `0..40` stay plaintext on disk (checksum verification, recovery,
//! and WAL-replay page extension all work without the key); everything an
//! application stores lives at `40..` and is what the encrypting
//! DiskManager seals.
//!
//! **Slotted pages** hold variable-length records addressed by slot number.
//! The slot directory grows forward from the header; record bytes grow
//! backward from the end of the page. Deleting a record tombstones its slot
//! (slot numbers are stable — they are half of a `RecordId`); the space is
//! reclaimed by [`SlottedPage::compact`], which the insert path runs
//! automatically when fragmentation blocks an otherwise-fitting record.
//!
//! **Overflow pages** hold one chunk of a record too large to inline,
//! plus the page id of the next chunk.

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::PageId;

/// Version of the on-disk layout (common page header, heap-file layout,
/// catalog manifest). Bumped on every incompatible change — v2 grew the
/// common page header from 12 to 20 bytes to carry the page LSN; v3 grew
/// it to 40 to carry the encryption marker/nonce/tag and added the wrapped
/// data-key blob to the manifest. The catalog stamps this into
/// `catalog.manifest` and refuses to open a database directory written
/// under any other version, so an old file is a clean "incompatible
/// format" error instead of silently shifted reads.
pub const ON_DISK_FORMAT_VERSION: u32 = 3;

/// Size of the common header present on every page.
pub const COMMON_HEADER: usize = 40;
/// Offset of the page LSN within the common header.
const LSN_OFFSET: usize = 12;
/// Offset of the encryption marker within the common header.
const SEC_MARKER_OFFSET: usize = 20;
/// Offset of the per-write encryption nonce.
const SEC_NONCE_OFFSET: usize = 24;
/// Offset of the authentication tag.
const SEC_TAG_OFFSET: usize = 32;
/// `sec_marker` value declaring the page body encrypted ("JGSE").
pub const SEC_MARKER_ENCRYPTED: u32 = 0x4A47_5345;
/// Size of one slot directory entry (u16 offset + u16 length).
pub const SLOT_SIZE: usize = 4;
/// Slot offset sentinel marking a deleted (tombstoned) slot.
const TOMBSTONE: u16 = u16::MAX;

/// Discriminates the page layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    Free = 0,
    Slotted = 1,
    Overflow = 2,
    FileHeader = 3,
}

impl PageType {
    pub fn from_byte(b: u8) -> Result<PageType> {
        Ok(match b {
            0 => PageType::Free,
            1 => PageType::Slotted,
            2 => PageType::Overflow,
            3 => PageType::FileHeader,
            other => return Err(JaguarError::Corruption(format!("bad page type {other}"))),
        })
    }
}

/// Read the page type from a raw page buffer.
pub fn page_type(buf: &[u8]) -> Result<PageType> {
    PageType::from_byte(buf[4])
}

/// Set the page type byte on a raw page buffer.
pub fn set_page_type(buf: &mut [u8], ty: PageType) {
    buf[4] = ty as u8;
}

/// Read the LSN of the WAL record carrying this page's latest logged image
/// (0 for a page that was never logged).
pub fn page_lsn(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[LSN_OFFSET..LSN_OFFSET + 8].try_into().expect("8 bytes"))
}

/// Stamp the page LSN. Called by the WAL commit path just before the page
/// image is copied into the log.
pub fn set_page_lsn(buf: &mut [u8], lsn: u64) {
    buf[LSN_OFFSET..LSN_OFFSET + 8].copy_from_slice(&lsn.to_le_bytes());
}

/// Read the encryption marker (0 = plaintext body,
/// [`SEC_MARKER_ENCRYPTED`] = encrypted).
pub fn sec_marker(buf: &[u8]) -> u32 {
    u32::from_le_bytes(
        buf[SEC_MARKER_OFFSET..SEC_MARKER_OFFSET + 4]
            .try_into()
            .expect("4 bytes"),
    )
}

/// Read the per-write encryption nonce.
pub fn sec_nonce(buf: &[u8]) -> u64 {
    u64::from_le_bytes(
        buf[SEC_NONCE_OFFSET..SEC_NONCE_OFFSET + 8]
            .try_into()
            .expect("8 bytes"),
    )
}

/// Read the authentication tag.
pub fn sec_tag(buf: &[u8]) -> u64 {
    u64::from_le_bytes(
        buf[SEC_TAG_OFFSET..SEC_TAG_OFFSET + 8]
            .try_into()
            .expect("8 bytes"),
    )
}

/// Stamp the encryption fields. Called by the disk manager while sealing a
/// page for write; never set on in-memory frames.
pub fn set_sec_fields(buf: &mut [u8], marker: u32, nonce: u64, tag: u64) {
    buf[SEC_MARKER_OFFSET..SEC_MARKER_OFFSET + 4].copy_from_slice(&marker.to_le_bytes());
    buf[SEC_NONCE_OFFSET..SEC_NONCE_OFFSET + 8].copy_from_slice(&nonce.to_le_bytes());
    buf[SEC_TAG_OFFSET..SEC_TAG_OFFSET + 8].copy_from_slice(&tag.to_le_bytes());
}

/// Zero the encryption fields (after decrypting on read, so in-memory
/// frames are indistinguishable from the plaintext configuration).
pub fn clear_sec_fields(buf: &mut [u8]) {
    buf[SEC_MARKER_OFFSET..SEC_TAG_OFFSET + 8].fill(0);
}

/// FNV-1a over the page body (everything after the checksum word).
pub fn compute_checksum(buf: &[u8]) -> u32 {
    let mut h: u32 = 0x811C9DC5;
    for &b in &buf[4..] {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Stamp the checksum word. Called by the disk manager before writing.
pub fn seal_checksum(buf: &mut [u8]) {
    let c = compute_checksum(buf);
    buf[0..4].copy_from_slice(&c.to_le_bytes());
}

/// Verify the checksum word. Called by the disk manager after reading.
pub fn verify_checksum(buf: &[u8]) -> Result<()> {
    let stored = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let actual = compute_checksum(buf);
    if stored != actual {
        return Err(JaguarError::Corruption(format!(
            "page checksum mismatch: stored {stored:#x}, computed {actual:#x}"
        )));
    }
    Ok(())
}

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(buf[off..off + 2].try_into().expect("2 bytes"))
}

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------
// Slotted pages
// ---------------------------------------------------------------------

/// A view over a raw page buffer interpreting it as a slotted record page.
///
/// The view borrows the buffer mutably; it performs no I/O. Offsets `h0` =
/// slot count, `h1` = free end (start of the record data region).
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Initialise a fresh buffer as an empty slotted page.
    pub fn init(buf: &'a mut [u8]) -> SlottedPage<'a> {
        buf[4..].fill(0);
        set_page_type(buf, PageType::Slotted);
        let len = buf.len() as u16;
        let mut p = SlottedPage { buf };
        p.set_slot_count(0);
        p.set_free_end(len);
        p
    }

    /// Interpret an existing buffer as a slotted page, validating the type
    /// byte and header sanity.
    pub fn open(buf: &'a mut [u8]) -> Result<SlottedPage<'a>> {
        if page_type(buf)? != PageType::Slotted {
            return Err(JaguarError::Corruption("not a slotted page".into()));
        }
        let len = buf.len();
        let p = SlottedPage { buf };
        let slots = p.slot_count() as usize;
        let free_end = p.free_end() as usize;
        if COMMON_HEADER + slots * SLOT_SIZE > free_end || free_end > len {
            return Err(JaguarError::Corruption(format!(
                "slotted header out of range: {slots} slots, free_end {free_end}"
            )));
        }
        Ok(p)
    }

    pub fn slot_count(&self) -> u16 {
        get_u16(self.buf, 6)
    }

    fn set_slot_count(&mut self, n: u16) {
        put_u16(self.buf, 6, n);
    }

    fn free_end(&self) -> u16 {
        get_u16(self.buf, 8)
    }

    fn set_free_end(&mut self, v: u16) {
        put_u16(self.buf, 8, v);
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = COMMON_HEADER + slot as usize * SLOT_SIZE;
        (get_u16(self.buf, off), get_u16(self.buf, off + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let off = COMMON_HEADER + slot as usize * SLOT_SIZE;
        put_u16(self.buf, off, offset);
        put_u16(self.buf, off + 2, len);
    }

    /// Contiguous free bytes between the slot directory and the data region.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() as usize - (COMMON_HEADER + self.slot_count() as usize * SLOT_SIZE)
    }

    /// Total reclaimable free bytes (contiguous + tombstoned record space).
    pub fn total_free(&self) -> usize {
        let mut free = self.contiguous_free();
        for s in 0..self.slot_count() {
            let (off, len) = self.slot_entry(s);
            if off == TOMBSTONE {
                free += len as usize; // len preserved at tombstone time
            }
        }
        free
    }

    /// Largest record this page could accept right now *without* compaction,
    /// assuming a new slot is needed.
    pub fn insertable_now(&self) -> usize {
        self.contiguous_free().saturating_sub(SLOT_SIZE)
    }

    /// Insert a record, reusing a tombstoned slot if available; compacts the
    /// page if fragmentation (not capacity) is the obstacle. Returns the
    /// slot number, or `None` if the record genuinely does not fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if record.len() > u16::MAX as usize {
            return None;
        }
        let reuse = (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == TOMBSTONE);
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < record.len() + slot_cost {
            // Would compaction make room?
            if self.total_free() >= record.len() + slot_cost {
                self.compact();
            }
            if self.contiguous_free() < record.len() + slot_cost {
                return None;
            }
        }
        let new_end = self.free_end() as usize - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        self.set_free_end(new_end as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.set_slot_entry(slot, new_end as u16, record.len() as u16);
        Some(slot)
    }

    /// Read a record by slot number.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(JaguarError::Storage(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE {
            return Err(JaguarError::Storage(format!("slot {slot} is deleted")));
        }
        let (off, len) = (off as usize, len as usize);
        if off < COMMON_HEADER || off + len > self.buf.len() {
            return Err(JaguarError::Corruption(format!(
                "slot {slot} points outside page"
            )));
        }
        Ok(&self.buf[off..off + len])
    }

    /// Tombstone a slot. The slot number remains allocated (RecordIds stay
    /// stable); its space is reclaimed by the next compaction.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(JaguarError::Storage(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == TOMBSTONE {
            return Err(JaguarError::Storage(format!("slot {slot} already deleted")));
        }
        // Keep len so total_free() can count reclaimable space.
        self.set_slot_entry(slot, TOMBSTONE, len);
        let _ = off;
        Ok(())
    }

    /// True if the slot exists and is live.
    pub fn is_live(&self, slot: u16) -> bool {
        slot < self.slot_count() && self.slot_entry(slot).0 != TOMBSTONE
    }

    /// Slide all live records to the end of the page, squeezing out holes.
    /// Slot numbers (and hence RecordIds) are preserved.
    pub fn compact(&mut self) {
        let page_len = self.buf.len();
        // Collect live records ordered by current offset descending so we
        // can slide them towards the end without overlap issues via a
        // scratch copy (pages are small; simplicity over cleverness).
        let mut live: Vec<(u16, Vec<u8>)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                if off == TOMBSTONE {
                    None
                } else {
                    Some((s, self.buf[off as usize..(off + len) as usize].to_vec()))
                }
            })
            .collect();
        let mut end = page_len;
        for (slot, data) in live.drain(..) {
            end -= data.len();
            self.buf[end..end + data.len()].copy_from_slice(&data);
            self.set_slot_entry(slot, end as u16, data.len() as u16);
        }
        self.set_free_end(end as u16);
    }
}

// ---------------------------------------------------------------------
// Overflow pages
// ---------------------------------------------------------------------

/// Header bytes used by an overflow page after the common header:
/// `u32 next_page` + `u32 chunk_len`.
pub const OVERFLOW_HEADER: usize = COMMON_HEADER + 8;

/// Usable payload capacity of one overflow page.
pub fn overflow_capacity(page_size: usize) -> usize {
    page_size - OVERFLOW_HEADER
}

/// Initialise a buffer as an overflow page holding `chunk`, linking to
/// `next` (or [`PageId::INVALID`] for the tail).
pub fn init_overflow(buf: &mut [u8], chunk: &[u8], next: PageId) {
    assert!(chunk.len() <= overflow_capacity(buf.len()));
    buf[4..].fill(0);
    set_page_type(buf, PageType::Overflow);
    buf[COMMON_HEADER..COMMON_HEADER + 4].copy_from_slice(&next.0.to_le_bytes());
    buf[COMMON_HEADER + 4..COMMON_HEADER + 8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
    buf[OVERFLOW_HEADER..OVERFLOW_HEADER + chunk.len()].copy_from_slice(chunk);
}

/// Read the chunk and next-page link from an overflow page.
pub fn read_overflow(buf: &[u8]) -> Result<(&[u8], PageId)> {
    if page_type(buf)? != PageType::Overflow {
        return Err(JaguarError::Corruption("not an overflow page".into()));
    }
    let next = PageId(u32::from_le_bytes(
        buf[COMMON_HEADER..COMMON_HEADER + 4].try_into().expect("4"),
    ));
    let len = u32::from_le_bytes(
        buf[COMMON_HEADER + 4..COMMON_HEADER + 8]
            .try_into()
            .expect("4"),
    ) as usize;
    if OVERFLOW_HEADER + len > buf.len() {
        return Err(JaguarError::Corruption(
            "overflow chunk length invalid".into(),
        ));
    }
    Ok((&buf[OVERFLOW_HEADER..OVERFLOW_HEADER + len], next))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: usize = 512;

    fn fresh() -> Vec<u8> {
        vec![0u8; P]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let a = page.insert(b"hello").unwrap();
        let b = page.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(page.get(a).unwrap(), b"hello");
        assert_eq!(page.get(b).unwrap(), b"world!");
    }

    #[test]
    fn empty_record_allowed() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let s = page.insert(b"").unwrap();
        assert_eq!(page.get(s).unwrap(), b"");
    }

    #[test]
    fn delete_tombstones_and_slot_reused() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let a = page.insert(b"aaaa").unwrap();
        let b = page.insert(b"bbbb").unwrap();
        page.delete(a).unwrap();
        assert!(page.get(a).is_err());
        assert!(page.is_live(b));
        assert!(!page.is_live(a));
        // Next insert reuses the tombstoned slot number.
        let c = page.insert(b"cccc").unwrap();
        assert_eq!(c, a);
        assert_eq!(page.get(c).unwrap(), b"cccc");
    }

    #[test]
    fn double_delete_is_error() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let a = page.insert(b"x").unwrap();
        page.delete(a).unwrap();
        assert!(page.delete(a).is_err());
        assert!(page.delete(99).is_err());
    }

    #[test]
    fn fills_until_capacity_then_rejects() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let rec = [7u8; 32];
        let mut n = 0;
        while page.insert(&rec).is_some() {
            n += 1;
        }
        // 512-byte page, 20-byte header, 36 bytes/record (32 + 4 slot).
        assert!(n >= 12, "expected at least 12 records, got {n}");
        assert!(page.insertable_now() < rec.len());
    }

    #[test]
    fn compaction_reclaims_deleted_space() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let mut slots = Vec::new();
        let rec = [1u8; 40];
        while let Some(s) = page.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record; a 2x-sized record now only fits after
        // compaction, which insert() performs automatically.
        for s in slots.iter().step_by(2) {
            page.delete(*s).unwrap();
        }
        let big = [2u8; 80];
        let got = page.insert(&big).expect("compaction should make room");
        assert_eq!(page.get(got).unwrap(), &big[..]);
        // Survivors intact after compaction.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(page.get(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn compaction_preserves_slot_numbers() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let a = page.insert(b"first").unwrap();
        let b = page.insert(b"second").unwrap();
        let c = page.insert(b"third").unwrap();
        page.delete(b).unwrap();
        page.compact();
        assert_eq!(page.get(a).unwrap(), b"first");
        assert_eq!(page.get(c).unwrap(), b"third");
        assert!(page.get(b).is_err());
    }

    #[test]
    fn checksum_roundtrip_and_detects_corruption() {
        let mut buf = fresh();
        SlottedPage::init(&mut buf).insert(b"payload").unwrap();
        seal_checksum(&mut buf);
        verify_checksum(&buf).unwrap();
        buf[100] ^= 0xFF;
        assert!(verify_checksum(&buf).is_err());
    }

    #[test]
    fn open_validates_header() {
        let mut buf = fresh();
        SlottedPage::init(&mut buf);
        // Corrupt free_end beyond the page.
        put_u16(&mut buf, 8, (P + 100) as u16);
        assert!(SlottedPage::open(&mut buf).is_err());

        let mut buf2 = fresh();
        set_page_type(&mut buf2, PageType::Overflow);
        assert!(SlottedPage::open(&mut buf2).is_err());
    }

    #[test]
    fn overflow_roundtrip() {
        let mut buf = fresh();
        let chunk: Vec<u8> = (0..overflow_capacity(P)).map(|i| i as u8).collect();
        init_overflow(&mut buf, &chunk, PageId(77));
        let (got, next) = read_overflow(&buf).unwrap();
        assert_eq!(got, &chunk[..]);
        assert_eq!(next, PageId(77));
    }

    #[test]
    fn overflow_tail_link() {
        let mut buf = fresh();
        init_overflow(&mut buf, b"tail", PageId::INVALID);
        let (_, next) = read_overflow(&buf).unwrap();
        assert!(!next.is_valid());
    }

    #[test]
    fn page_lsn_roundtrip() {
        let mut buf = fresh();
        let s = SlottedPage::init(&mut buf).insert(b"record").unwrap();
        assert_eq!(page_lsn(&buf), 0, "fresh page was never logged");
        set_page_lsn(&mut buf, 0xDEAD_BEEF_0042);
        assert_eq!(page_lsn(&buf), 0xDEAD_BEEF_0042);
        // The LSN lives inside the common header, clear of the slot
        // directory: records survive stamping.
        let page = SlottedPage::open(&mut buf).unwrap();
        assert_eq!(page.get(s).unwrap(), b"record");
    }

    #[test]
    fn page_type_detection() {
        let mut buf = fresh();
        SlottedPage::init(&mut buf);
        assert_eq!(page_type(&buf).unwrap(), PageType::Slotted);
        assert!(PageType::from_byte(9).is_err());
    }
}
