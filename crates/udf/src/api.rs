//! The UDF invocation interface.

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::{DataType, Value};
use jaguar_ipc::proto::CallbackHandler;
use jaguar_vec::{BatchError, BatchResult, ValueBatch};

/// The SQL-level signature of a scalar UDF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdfSignature {
    pub params: Vec<DataType>,
    pub ret: DataType,
}

impl UdfSignature {
    pub fn new(params: Vec<DataType>, ret: DataType) -> UdfSignature {
        UdfSignature { params, ret }
    }

    /// Validate an argument tuple against this signature (NULLs conform).
    pub fn check_args(&self, name: &str, args: &[Value]) -> Result<()> {
        if args.len() != self.params.len() {
            return Err(JaguarError::Udf(format!(
                "udf '{name}' expects {} arguments, got {}",
                self.params.len(),
                args.len()
            )));
        }
        for (i, (a, p)) in args.iter().zip(&self.params).enumerate() {
            if !a.conforms_to(*p) {
                return Err(JaguarError::Udf(format!(
                    "udf '{name}' argument {}: expected {}, got {}",
                    i + 1,
                    p.sql_name(),
                    a.data_type().map(|t| t.sql_name()).unwrap_or("NULL")
                )));
            }
        }
        Ok(())
    }
}

/// Cumulative sandbox resource consumption of one UDF instance — the
/// per-UDF accounting §6.2 of the paper calls essential ("the JVM does not
/// maintain any information on the memory usage of individual UDFs").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdfResourceUsage {
    /// VM instructions executed across all invocations.
    pub instructions: u64,
    /// Bytes allocated in VM arenas across all invocations.
    pub bytes_allocated: u64,
    /// Host callbacks performed.
    pub host_calls: u64,
}

/// An instantiated scalar UDF, ready to be applied tuple-by-tuple.
///
/// Instances are per-query (see [`crate::def::UdfDef::instantiate`]):
/// `invoke` takes `&mut self` because isolated backends own a worker
/// process whose pipes are inherently exclusive.
pub trait ScalarUdf: Send {
    fn name(&self) -> &str;

    fn signature(&self) -> &UdfSignature;

    /// Apply the UDF to one argument tuple. `callbacks` answers any
    /// requests the UDF makes back to the server (§4.2).
    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value>;

    /// Apply the UDF to every row of a batch, paying the trust-boundary
    /// crossing once instead of once per tuple.
    ///
    /// The contract (see `jaguar-vec`): row `i` of the reply must equal a
    /// per-tuple `invoke` on row `i`; on failure at row `k`, rows `0..k`
    /// have fully taken effect and the reported error is byte-identical to
    /// the per-tuple one. The default implementation is the per-tuple loop
    /// itself, so backends without a vectorized entry point keep working
    /// unchanged.
    fn invoke_batch(
        &mut self,
        batch: &ValueBatch,
        callbacks: &mut dyn CallbackHandler,
    ) -> BatchResult {
        let mut out = Vec::with_capacity(batch.len());
        let mut args = Vec::with_capacity(batch.arity());
        for i in 0..batch.len() {
            batch.read_row(i, &mut args);
            match self.invoke(&args, callbacks) {
                Ok(v) => out.push(v),
                Err(e) => return Err(BatchError::new(i, e)),
            }
        }
        Ok(out)
    }

    /// Cumulative sandbox resource consumption, for designs that meter it
    /// (the VM designs do; trusted native code cannot be metered — that is
    /// Design 1's security trade-off). Default: not metered.
    fn consumed(&self) -> Option<UdfResourceUsage> {
        None
    }

    /// Attach the statement's lifecycle token. Backends that can poll it
    /// do (the in-process VM checks every K instructions; pooled workers
    /// bound their invocation deadline by the remaining statement
    /// budget). Default: ignored — trusted native code cannot be
    /// interrupted, the same trade-off that makes it unmeterable.
    fn attach_cancel(&mut self, _token: jaguar_common::cancel::CancelToken) {}

    /// Per-query teardown (e.g. shutting down a worker process). Default:
    /// nothing.
    fn finish(self: Box<Self>) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_common::ByteArray;

    #[test]
    fn signature_checks_arity_and_types() {
        let sig = UdfSignature::new(vec![DataType::Bytes, DataType::Int], DataType::Int);
        sig.check_args("f", &[Value::Bytes(ByteArray::zeroed(1)), Value::Int(0)])
            .unwrap();
        sig.check_args("f", &[Value::Null, Value::Null]).unwrap();
        assert!(sig.check_args("f", &[Value::Int(0)]).is_err());
        assert!(sig
            .check_args("f", &[Value::Int(0), Value::Int(0)])
            .is_err());
    }
}
