//! The isolated UDF executor process (paper §4.1).
//!
//! The server spawns one of these per UDF per query (Design 2/4), loads a
//! UDF into it over stdin/stdout, and invokes it per tuple. The native UDF
//! registry baked in here mirrors the C++ UDFs compiled into PREDATOR's
//! remote executor.

fn main() {
    // Private scratch dir, removed again on orderly exit. Creation reclaims
    // any leftover from a killed predecessor rather than failing; if the
    // temp dir is unusable the worker still serves (UDFs just have no disk
    // scratch).
    let scratch = jaguar_ipc::WorkerScratch::create();
    let registry = jaguar_udf::worker_registry();
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    let result = jaguar_ipc::worker::serve(stdin, stdout, &registry);
    drop(scratch);
    if let Err(e) = result {
        eprintln!("jaguar-worker: {e}");
        std::process::exit(1);
    }
}
