//! The isolated UDF executor process (paper §4.1).
//!
//! The server spawns one of these per UDF per query (Design 2/4), loads a
//! UDF into it over stdin/stdout, and invokes it per tuple. The native UDF
//! registry baked in here mirrors the C++ UDFs compiled into PREDATOR's
//! remote executor.

fn main() {
    let registry = jaguar_udf::worker_registry();
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    if let Err(e) = jaguar_ipc::worker::serve(stdin, stdout, &registry) {
        eprintln!("jaguar-worker: {e}");
        std::process::exit(1);
    }
}
