//! Per-UDF circuit breakers: fail-fast quarantine for repeat offenders.
//!
//! A UDF that crashes its worker (or blows its invocation deadline) on
//! *every* call turns a 10,000-tuple query into 10,000 worker respawns —
//! a respawn storm that starves the pool and the paper's security story
//! never priced in. The breaker is the classic three-state machine:
//!
//! ```text
//!          N consecutive failures                cooldown elapsed
//! Closed ───────────────────────────▶ Open ───────────────────────▶ HalfOpen
//!   ▲                                  ▲                               │
//!   │            probe succeeds        │        probe fails            │
//!   └──────────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! While **open**, [`CircuitBreaker::try_acquire`] fails immediately with
//! [`JaguarError::UdfQuarantined`] — no worker checkout, no respawn.
//! After the cooldown, exactly one query is let through as the
//! **half-open probe**; its success closes the breaker, its failure
//! re-opens it for another cooldown. Only *infrastructure* failures
//! (worker crashes, resource-limit kills) count — application-level UDF
//! errors and statement cancellations do not, which is the caller's
//! responsibility to enforce (see `ExecCtx::record_udf_outcome`).
//!
//! One breaker guards one registered UDF name across all queries and
//! connections; re-registering a UDF installs a fresh (closed) breaker,
//! so uploading a fixed module clears the quarantine.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::obs;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed {
        consecutive_failures: u32,
    },
    Open {
        since: Instant,
    },
    /// One probe admitted at `since`. If the probe never reports back
    /// (e.g. its query aborted before any invocation), another probe is
    /// admitted after a further cooldown — the breaker cannot wedge.
    HalfOpen {
        since: Instant,
    },
}

/// Breaker state as reported by [`CircuitBreaker::state_name`] and the
/// `udf.breaker.state.*` gauges (0 = closed, 1 = half-open, 2 = open).
const GAUGE_CLOSED: i64 = 0;
const GAUGE_HALF_OPEN: i64 = 1;
const GAUGE_OPEN: i64 = 2;

/// Consecutive-failure circuit breaker for one registered UDF.
pub struct CircuitBreaker {
    name: String,
    /// Consecutive failures that trip the breaker; `0` disables it.
    threshold: u32,
    cooldown: Duration,
    state: Mutex<State>,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("name", &self.name)
            .field("threshold", &self.threshold)
            .field("cooldown", &self.cooldown)
            .field("state", &self.state_name())
            .finish()
    }
}

impl CircuitBreaker {
    pub fn new(name: impl Into<String>, threshold: u32, cooldown: Duration) -> CircuitBreaker {
        let name = name.into();
        let b = CircuitBreaker {
            name,
            threshold,
            cooldown,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
        };
        b.publish_gauge(GAUGE_CLOSED);
        b
    }

    /// Is breaking disabled (`threshold == 0`)?
    pub fn disabled(&self) -> bool {
        self.threshold == 0
    }

    /// The UDF name this breaker guards.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `"closed"`, `"open"` or `"half-open"` — for metrics text and tests.
    pub fn state_name(&self) -> &'static str {
        match *self.state.lock().unwrap() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half-open",
        }
    }

    /// Gate a query's use of this UDF. Closed: pass. Open within the
    /// cooldown: fail fast with [`JaguarError::UdfQuarantined`] (no worker
    /// is checked out or spawned). Open past the cooldown: admit this
    /// query as the single half-open probe. Half-open (a probe already in
    /// flight): fail fast.
    pub fn try_acquire(&self) -> Result<()> {
        if self.disabled() {
            return Ok(());
        }
        let mut state = self.state.lock().unwrap();
        match *state {
            State::Closed { .. } => Ok(()),
            // Open past cooldown, or a half-open probe that went silent
            // for another full cooldown: admit (re-admit) one probe.
            State::Open { since } | State::HalfOpen { since } => {
                if since.elapsed() >= self.cooldown {
                    *state = State::HalfOpen {
                        since: Instant::now(),
                    };
                    drop(state);
                    obs::global().counter("udf.breaker.probes").inc();
                    self.publish_gauge(GAUGE_HALF_OPEN);
                    Ok(())
                } else {
                    drop(state);
                    self.fail_fast()
                }
            }
        }
    }

    fn fail_fast(&self) -> Result<()> {
        obs::global().counter("udf.breaker.fail_fast").inc();
        Err(JaguarError::UdfQuarantined(format!(
            "udf '{}' is quarantined after {} consecutive failures; retrying after cooldown",
            self.name, self.threshold
        )))
    }

    /// Record a successful invocation: resets the failure streak; a
    /// half-open probe's success closes the breaker.
    pub fn record_success(&self) {
        if self.disabled() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let was_half_open = matches!(*state, State::HalfOpen { .. });
        *state = State::Closed {
            consecutive_failures: 0,
        };
        drop(state);
        if was_half_open {
            obs::global().counter("udf.breaker.closes").inc();
            obs::info!(
                target: "jaguar-udf",
                "breaker for '{}' closed: half-open probe succeeded",
                self.name
            );
            self.publish_gauge(GAUGE_CLOSED);
        }
    }

    /// Record an infrastructure failure (worker crash, invocation
    /// deadline kill). Trips the breaker at the threshold; a half-open
    /// probe's failure re-opens immediately.
    pub fn record_failure(&self) {
        if self.disabled() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let tripped = match *state {
            State::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.threshold {
                    *state = State::Open {
                        since: Instant::now(),
                    };
                    true
                } else {
                    *state = State::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            State::HalfOpen { .. } => {
                *state = State::Open {
                    since: Instant::now(),
                };
                true
            }
            State::Open { .. } => false,
        };
        drop(state);
        if tripped {
            obs::global().counter("udf.breaker.trips").inc();
            obs::warn!(
                target: "jaguar-udf",
                "breaker for '{}' opened after {} consecutive failures; cooldown {:?}",
                self.name,
                self.threshold,
                self.cooldown
            );
            self.publish_gauge(GAUGE_OPEN);
        }
    }

    fn publish_gauge(&self, v: i64) {
        obs::global()
            .gauge(&format!("udf.breaker.state.{}", self.name))
            .set(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new("t", threshold, Duration::from_millis(cooldown_ms))
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker(3, 60_000);
        b.try_acquire().unwrap();
        b.record_failure();
        b.try_acquire().unwrap();
        b.record_failure();
        b.try_acquire().unwrap();
        assert_eq!(b.state_name(), "closed");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        let e = b.try_acquire().unwrap_err();
        assert!(matches!(e, JaguarError::UdfQuarantined(_)), "{e}");
    }

    #[test]
    fn success_resets_the_streak() {
        let b = breaker(3, 60_000);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state_name(), "closed", "streak must reset on success");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let b = breaker(1, 40);
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        std::thread::sleep(Duration::from_millis(50));
        // Cooldown elapsed: next acquire is the probe.
        b.try_acquire().unwrap();
        assert_eq!(b.state_name(), "half-open");
        // A second query during the probe fails fast.
        assert!(b.try_acquire().is_err());
        // Probe failure re-opens …
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        // … next probe (after another cooldown) succeeds and closes.
        std::thread::sleep(Duration::from_millis(50));
        b.try_acquire().unwrap();
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        b.try_acquire().unwrap();
    }

    #[test]
    fn silent_probe_does_not_wedge_the_breaker() {
        let b = breaker(1, 40);
        b.record_failure();
        std::thread::sleep(Duration::from_millis(50));
        // Probe admitted, but its query dies before any invocation — the
        // breaker never hears record_success/record_failure.
        b.try_acquire().unwrap();
        assert_eq!(b.state_name(), "half-open");
        assert!(b.try_acquire().is_err(), "probe still fresh: fail fast");
        // After a further cooldown a new probe is admitted anyway.
        std::thread::sleep(Duration::from_millis(50));
        b.try_acquire().unwrap();
        b.record_success();
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn open_breaker_respects_cooldown() {
        let b = breaker(1, 60_000);
        b.record_failure();
        // Cooldown far from elapsed: every acquire fails fast.
        for _ in 0..5 {
            assert!(b.try_acquire().is_err());
        }
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let b = breaker(0, 0);
        assert!(b.disabled());
        for _ in 0..10 {
            b.record_failure();
            b.try_acquire().unwrap();
        }
        assert_eq!(b.state_name(), "closed");
    }
}
