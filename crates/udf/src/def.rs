//! UDF definitions: what the catalog stores, and how the executor turns a
//! definition into a per-query [`ScalarUdf`] instance.

use std::sync::Arc;

use jaguar_common::cancel::CancelToken;
use jaguar_common::error::Result;
use jaguar_common::Value;
use jaguar_ipc::executor::WorkerProcess;
use jaguar_ipc::proto::CallbackHandler;
use jaguar_pool::{PooledWorker, WorkerPool};
use jaguar_vm::interp::ExecMode;
use jaguar_vm::{PermissionSet, ResourceLimits, VerifiedModule};

use crate::api::{ScalarUdf, UdfSignature};
use crate::breaker::CircuitBreaker;
use crate::native::NativeUdf;
use crate::vmexec::VmUdf;

/// Everything needed to run a UDF under the sandboxed VM.
#[derive(Clone)]
pub struct VmUdfSpec {
    /// The verified module (kept verified so instantiation is cheap; the
    /// raw bytes are retained for Design 4 shipping).
    pub module: Arc<VerifiedModule>,
    pub module_bytes: Arc<Vec<u8>>,
    pub function: String,
    pub limits: ResourceLimits,
    pub jit: bool,
    pub permissions: Option<Arc<PermissionSet>>,
}

/// The execution design chosen for a UDF (the paper's Table 1).
#[derive(Clone)]
pub enum UdfImpl {
    /// Design 1 ("C++"): trusted closure in the server process.
    Native(NativeUdf),
    /// Design 2 ("IC++"): native code in a per-query worker process.
    /// `worker_fn` names an entry in the worker binary's registry.
    IsolatedNative { worker_fn: String },
    /// Design 3 ("JNI"): verified bytecode in the server process.
    Vm(VmUdfSpec),
    /// Design 4: verified bytecode in a per-query worker process.
    IsolatedVm(VmUdfSpec),
}

impl UdfImpl {
    /// Short label used in plans and reports (paper terminology).
    pub fn design_label(&self) -> &'static str {
        match self {
            UdfImpl::Native(_) => "C++",
            UdfImpl::IsolatedNative { .. } => "IC++",
            UdfImpl::Vm(_) => "JSM",
            UdfImpl::IsolatedVm(_) => "IJSM",
        }
    }

    /// Whether this design runs in a separate worker process — and so
    /// draws one checkout per execution context from the worker pool when
    /// one is attached. The parallel planner clamps a query's dop to the
    /// pool size when any of its UDFs answers true, so a thread team can
    /// never deadlock on its own checkouts.
    pub fn needs_worker(&self) -> bool {
        matches!(
            self,
            UdfImpl::IsolatedNative { .. } | UdfImpl::IsolatedVm(_)
        )
    }
}

/// A registered UDF: name + SQL signature + execution design.
#[derive(Clone)]
pub struct UdfDef {
    pub name: String,
    pub signature: UdfSignature,
    pub imp: UdfImpl,
    /// The registry-owned circuit breaker guarding this UDF, populated by
    /// `UdfCatalog::get` so it rides along into the executor with no
    /// extra plumbing. `None` for defs built outside a catalog.
    pub breaker: Option<Arc<CircuitBreaker>>,
}

impl UdfDef {
    pub fn new(name: impl Into<String>, signature: UdfSignature, imp: UdfImpl) -> UdfDef {
        UdfDef {
            name: name.into(),
            signature,
            imp,
            breaker: None,
        }
    }

    /// Attach the registry's circuit breaker (see [`UdfDef::breaker`]).
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> UdfDef {
        self.breaker = Some(breaker);
        self
    }

    /// Create the per-query execution instance. For isolated designs this
    /// spawns the worker process (the paper's per-query remote executor).
    pub fn instantiate(&self) -> Result<Box<dyn ScalarUdf>> {
        self.instantiate_with(None)
    }

    /// Like [`UdfDef::instantiate`], but isolated designs acquire their
    /// executor from `pool` (a warm worker checked out for the query and
    /// returned at `finish`) instead of spawning a fresh process.
    pub fn instantiate_with(&self, pool: Option<&Arc<WorkerPool>>) -> Result<Box<dyn ScalarUdf>> {
        match &self.imp {
            UdfImpl::Native(n) => Ok(Box::new(n.clone())),
            UdfImpl::Vm(spec) => Ok(Box::new(VmUdf::new(
                self.name.clone(),
                self.signature.clone(),
                Arc::clone(&spec.module),
                spec.function.clone(),
                spec.limits,
                if spec.jit {
                    ExecMode::Jit
                } else {
                    ExecMode::Baseline
                },
                spec.permissions.clone(),
            )?)),
            UdfImpl::IsolatedNative { worker_fn } => match pool {
                Some(pool) => {
                    let mut worker = pool.checkout()?;
                    worker.load_native(worker_fn)?;
                    Ok(Box::new(PooledIsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
                None => {
                    let mut worker = WorkerProcess::spawn()?;
                    worker.load_native(worker_fn)?;
                    Ok(Box::new(IsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
            },
            UdfImpl::IsolatedVm(spec) => match pool {
                Some(pool) => {
                    let mut worker = pool.checkout()?;
                    worker.load_vm(
                        &spec.module_bytes,
                        &spec.function,
                        spec.jit,
                        spec.limits.fuel,
                        spec.limits.memory,
                    )?;
                    Ok(Box::new(PooledIsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
                None => {
                    let mut worker = WorkerProcess::spawn()?;
                    worker.load_vm(
                        &spec.module_bytes,
                        &spec.function,
                        spec.jit,
                        spec.limits.fuel,
                        spec.limits.memory,
                    )?;
                    Ok(Box::new(IsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
            },
        }
    }
}

/// A UDF running in a worker process (Designs 2 and 4).
struct IsolatedUdf {
    name: String,
    signature: UdfSignature,
    worker: WorkerProcess,
    cancel: CancelToken,
}

impl ScalarUdf for IsolatedUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &UdfSignature {
        &self.signature
    }

    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value> {
        // Per-query workers have no supervisor to kill them mid-invoke;
        // the token is still honoured between tuples.
        self.cancel.check()?;
        self.signature.check_args(&self.name, args)?;
        // The argument copy into the pipe is the "copy into shared memory"
        // of the paper's Design 2.
        self.worker.invoke(args.to_vec(), callbacks)
    }

    fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    fn finish(self: Box<Self>) -> Result<()> {
        self.worker.shutdown()
    }
}

/// A UDF running in a pool-managed worker process: same designs as
/// [`IsolatedUdf`], but the executor is borrowed from a [`WorkerPool`] and
/// returned (reset, ready for the next query) instead of being torn down.
struct PooledIsolatedUdf {
    name: String,
    signature: UdfSignature,
    worker: PooledWorker,
    cancel: CancelToken,
}

impl ScalarUdf for PooledIsolatedUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &UdfSignature {
        &self.signature
    }

    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value> {
        self.cancel.check()?;
        self.signature.check_args(&self.name, args)?;
        // Deadline propagation: the supervisor kills the worker at
        // min(remaining statement budget, pool invoke timeout), so a
        // wedged UDF cannot outlive its statement.
        self.worker
            .invoke_with_deadline(args.to_vec(), callbacks, self.cancel.remaining())
    }

    fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    fn finish(self: Box<Self>) -> Result<()> {
        // Dropping the guard checks the worker back in (Reset + re-idle)
        // or, if it died this query, lets the supervisor replace it.
        drop(self.worker);
        Ok(())
    }
}

/// Helper: build a [`VmUdfSpec`] from an unverified module.
pub fn vm_spec(
    module: jaguar_vm::Module,
    function: impl Into<String>,
    limits: ResourceLimits,
    jit: bool,
    permissions: Option<Arc<PermissionSet>>,
) -> Result<VmUdfSpec> {
    let bytes = module.to_bytes();
    let verified = Arc::new(module.verify()?);
    Ok(VmUdfSpec {
        module: verified,
        module_bytes: Arc::new(bytes),
        function: function.into(),
        limits,
        jit,
        permissions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_common::DataType;
    use jaguar_ipc::proto::NoCallbacks;

    #[test]
    fn native_def_instantiates_cheaply() {
        let def = UdfDef::new(
            "inc",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            UdfImpl::Native(NativeUdf::new(
                "inc",
                UdfSignature::new(vec![DataType::Int], DataType::Int),
                |args, _| Ok(Value::Int(args[0].as_int()? + 1)),
            )),
        );
        let mut u = def.instantiate().unwrap();
        assert_eq!(
            u.invoke(&[Value::Int(41)], &mut NoCallbacks).unwrap(),
            Value::Int(42)
        );
        assert_eq!(def.imp.design_label(), "C++");
    }

    #[test]
    fn vm_def_instantiates() {
        let module = jaguar_lang::compile("m", "fn main(x: i64) -> i64 { return x * x; }").unwrap();
        let spec = vm_spec(module, "main", ResourceLimits::default(), true, None).unwrap();
        let def = UdfDef::new(
            "square",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            UdfImpl::Vm(spec),
        );
        let mut u = def.instantiate().unwrap();
        assert_eq!(
            u.invoke(&[Value::Int(7)], &mut NoCallbacks).unwrap(),
            Value::Int(49)
        );
        assert_eq!(def.imp.design_label(), "JSM");
    }

    #[test]
    fn labels() {
        assert_eq!(
            UdfImpl::IsolatedNative {
                worker_fn: "x".into()
            }
            .design_label(),
            "IC++"
        );
    }
}
