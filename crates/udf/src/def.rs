//! UDF definitions: what the catalog stores, and how the executor turns a
//! definition into a per-query [`ScalarUdf`] instance.

use std::sync::Arc;

use jaguar_common::cancel::CancelToken;
use jaguar_common::error::{JaguarError, Result};
use jaguar_common::retry::{self, RetryPolicy};
use jaguar_common::Value;
use jaguar_ipc::executor::WorkerProcess;
use jaguar_ipc::proto::CallbackHandler;
use jaguar_pool::{PooledWorker, WorkerPool};
use jaguar_vec::{BatchError, BatchResult, ValueBatch};
use jaguar_vm::interp::ExecMode;
use jaguar_vm::{PermissionSet, ResourceLimits, VerifiedModule};

use crate::api::{ScalarUdf, UdfSignature};
use crate::breaker::CircuitBreaker;
use crate::native::NativeUdf;
use crate::vmexec::VmUdf;

/// Everything needed to run a UDF under the sandboxed VM.
#[derive(Clone)]
pub struct VmUdfSpec {
    /// The verified module (kept verified so instantiation is cheap; the
    /// raw bytes are retained for Design 4 shipping).
    pub module: Arc<VerifiedModule>,
    pub module_bytes: Arc<Vec<u8>>,
    pub function: String,
    pub limits: ResourceLimits,
    pub jit: bool,
    pub permissions: Option<Arc<PermissionSet>>,
    /// Invocations before a function is promoted to the compiled register
    /// tier (`Some(0)` = first call, `None` = never). Only meaningful with
    /// `jit`; carried to the worker for Design 4.
    pub tier_up_after: Option<u64>,
}

impl VmUdfSpec {
    /// Override the compiled-tier hotness threshold (see
    /// [`VmUdfSpec::tier_up_after`]).
    pub fn with_tier_up(mut self, calls: Option<u64>) -> VmUdfSpec {
        self.tier_up_after = calls;
        self
    }
}

/// The execution design chosen for a UDF (the paper's Table 1).
#[derive(Clone)]
pub enum UdfImpl {
    /// Design 1 ("C++"): trusted closure in the server process.
    Native(NativeUdf),
    /// Design 2 ("IC++"): native code in a per-query worker process.
    /// `worker_fn` names an entry in the worker binary's registry.
    IsolatedNative { worker_fn: String },
    /// Design 3 ("JNI"): verified bytecode in the server process.
    Vm(VmUdfSpec),
    /// Design 4: verified bytecode in a per-query worker process.
    IsolatedVm(VmUdfSpec),
}

impl UdfImpl {
    /// Short label used in plans and reports (paper terminology).
    pub fn design_label(&self) -> &'static str {
        match self {
            UdfImpl::Native(_) => "C++",
            UdfImpl::IsolatedNative { .. } => "IC++",
            UdfImpl::Vm(_) => "JSM",
            UdfImpl::IsolatedVm(_) => "IJSM",
        }
    }

    /// Whether this design runs in a separate worker process — and so
    /// draws one checkout per execution context from the worker pool when
    /// one is attached. The parallel planner clamps a query's dop to the
    /// pool size when any of its UDFs answers true, so a thread team can
    /// never deadlock on its own checkouts.
    pub fn needs_worker(&self) -> bool {
        matches!(
            self,
            UdfImpl::IsolatedNative { .. } | UdfImpl::IsolatedVm(_)
        )
    }

    /// Whether invoking this design costs no more than a plain function
    /// call — no process crossing, no interpreter entry. Batching exists
    /// to amortize a per-invocation boundary cost; when the crossing is
    /// free there is nothing to amortize and accumulating a `ValueBatch`
    /// is pure overhead (BENCH_batch measured the trusted-native design
    /// *slowing down* ~7% under batching), so the planner keeps these on
    /// the per-tuple path.
    pub fn crossing_is_free(&self) -> bool {
        matches!(self, UdfImpl::Native(_))
    }
}

/// How a UDF's result may vary across invocations within one statement —
/// the purity/determinism declaration ROADMAP item 2 calls for (the
/// PostgreSQL volatility classes). The planner only batches
/// `Immutable`/`Stable` UDFs across filter short-circuit boundaries:
/// a `Volatile` UDF's per-row evaluation order is observable, so it keeps
/// the strict per-tuple cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Volatility {
    /// Pure function of its arguments, forever (`abs`, checksums).
    /// Safe to batch, memoize, and inline (Froid-style) later.
    Immutable,
    /// Fixed within one statement, may vary across statements (catalog
    /// lookups, `now()`-relative logic). Safe to batch within a statement.
    Stable,
    /// May return different results or have observable effects on every
    /// call. Never batched, never memoized. The safe default.
    #[default]
    Volatile,
}

impl Volatility {
    /// Whether the executor may evaluate this UDF set-at-a-time (batched)
    /// instead of strictly tuple-at-a-time. Defined as `!pinned()` so the
    /// batching gate and the planner's reorder guard share one predicate.
    pub fn batchable(self) -> bool {
        !self.pinned()
    }

    /// Whether the planner must keep this UDF at its written position:
    /// a `Volatile` UDF's per-row evaluation order (and count) is
    /// observable, so it is never reordered, short-circuited past its
    /// written slot, batched, memoized, or inlined.
    pub fn pinned(self) -> bool {
        matches!(self, Volatility::Volatile)
    }

    /// Whether results may be served from the cross-statement memo cache
    /// (and the body inlined): only `Immutable` promises arg-determinism
    /// beyond a single statement.
    pub fn memoizable(self) -> bool {
        matches!(self, Volatility::Immutable)
    }
}

/// A registered UDF: name + SQL signature + execution design.
#[derive(Clone)]
pub struct UdfDef {
    pub name: String,
    pub signature: UdfSignature,
    pub imp: UdfImpl,
    /// The registry-owned circuit breaker guarding this UDF, populated by
    /// `UdfCatalog::get` so it rides along into the executor with no
    /// extra plumbing. `None` for defs built outside a catalog.
    pub breaker: Option<Arc<CircuitBreaker>>,
    /// Purity declaration; gates vectorized invocation. Defaults to
    /// [`Volatility::Volatile`] (never batched) for safety.
    pub volatility: Volatility,
}

/// Retry budget for *acquiring* an isolated executor — a pool checkout or
/// a process spawn, strictly before any UDF code runs. Transient spawn
/// failures (EAGAIN under fork pressure, a momentarily-busy binary) are
/// worth a short backoff; pool-saturation timeouts are not retried (the
/// checkout already waited its configured budget, and doubling it here
/// would just deepen the overload). Because nothing in this path is an
/// invocation, retrying cannot mask a circuit-breaker trip: the breaker
/// counts invoke failures, which pass through untouched.
fn acquire_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_delay_ms: 5,
        max_delay_ms: 200,
        ..RetryPolicy::default()
    }
}

fn checkout_worker(pool: &Arc<WorkerPool>) -> Result<PooledWorker> {
    acquire_retry().run(
        "udf.pool.checkout",
        retry::is_transient_worker_acquire,
        || pool.checkout(),
    )
}

fn spawn_worker() -> Result<WorkerProcess> {
    acquire_retry().run(
        "udf.worker.spawn",
        retry::is_transient_worker_acquire,
        WorkerProcess::spawn,
    )
}

impl UdfDef {
    pub fn new(name: impl Into<String>, signature: UdfSignature, imp: UdfImpl) -> UdfDef {
        UdfDef {
            name: name.into(),
            signature,
            imp,
            breaker: None,
            volatility: Volatility::default(),
        }
    }

    /// Attach the registry's circuit breaker (see [`UdfDef::breaker`]).
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> UdfDef {
        self.breaker = Some(breaker);
        self
    }

    /// Declare the UDF's volatility class (see [`Volatility`]).
    pub fn with_volatility(mut self, volatility: Volatility) -> UdfDef {
        self.volatility = volatility;
        self
    }

    /// Create the per-query execution instance. For isolated designs this
    /// spawns the worker process (the paper's per-query remote executor).
    pub fn instantiate(&self) -> Result<Box<dyn ScalarUdf>> {
        self.instantiate_with(None)
    }

    /// Like [`UdfDef::instantiate`], but isolated designs acquire their
    /// executor from `pool` (a warm worker checked out for the query and
    /// returned at `finish`) instead of spawning a fresh process.
    pub fn instantiate_with(&self, pool: Option<&Arc<WorkerPool>>) -> Result<Box<dyn ScalarUdf>> {
        match &self.imp {
            UdfImpl::Native(n) => Ok(Box::new(n.clone())),
            UdfImpl::Vm(spec) => Ok(Box::new(VmUdf::new(
                self.name.clone(),
                self.signature.clone(),
                Arc::clone(&spec.module),
                spec.function.clone(),
                spec.limits,
                if spec.jit {
                    ExecMode::Jit
                } else {
                    ExecMode::Baseline
                },
                spec.permissions.clone(),
                spec.tier_up_after,
            )?)),
            UdfImpl::IsolatedNative { worker_fn } => match pool {
                Some(pool) => {
                    let mut worker = checkout_worker(pool)?;
                    worker.load_native(worker_fn)?;
                    Ok(Box::new(PooledIsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
                None => {
                    let mut worker = spawn_worker()?;
                    worker.load_native(worker_fn)?;
                    Ok(Box::new(IsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
            },
            UdfImpl::IsolatedVm(spec) => match pool {
                Some(pool) => {
                    let mut worker = checkout_worker(pool)?;
                    worker.load_vm(
                        &spec.module_bytes,
                        &spec.function,
                        spec.jit,
                        spec.limits.fuel,
                        spec.limits.memory,
                        spec.tier_up_after,
                    )?;
                    Ok(Box::new(PooledIsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
                None => {
                    let mut worker = spawn_worker()?;
                    worker.load_vm(
                        &spec.module_bytes,
                        &spec.function,
                        spec.jit,
                        spec.limits.fuel,
                        spec.limits.memory,
                        spec.tier_up_after,
                    )?;
                    Ok(Box::new(IsolatedUdf {
                        name: self.name.clone(),
                        signature: self.signature.clone(),
                        worker,
                        cancel: CancelToken::unbounded(),
                    }))
                }
            },
        }
    }
}

/// A UDF running in a worker process (Designs 2 and 4).
struct IsolatedUdf {
    name: String,
    signature: UdfSignature,
    worker: WorkerProcess,
    cancel: CancelToken,
}

impl ScalarUdf for IsolatedUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &UdfSignature {
        &self.signature
    }

    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value> {
        // Per-query workers have no supervisor to kill them mid-invoke;
        // the token is still honoured between tuples.
        self.cancel.check()?;
        self.signature.check_args(&self.name, args)?;
        // The argument copy into the pipe is the "copy into shared memory"
        // of the paper's Design 2.
        self.worker.invoke(args.to_vec(), callbacks)
    }

    fn invoke_batch(
        &mut self,
        batch: &ValueBatch,
        callbacks: &mut dyn CallbackHandler,
    ) -> BatchResult {
        let (rows, bad) = checked_prefix(&self.name, &self.signature, batch);
        if let Err(e) = self.cancel.check() {
            return Err(BatchError::before_any(e));
        }
        finish_checked(self.worker.invoke_batch(rows, callbacks), bad)
    }

    fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    fn finish(self: Box<Self>) -> Result<()> {
        self.worker.shutdown()
    }
}

/// Split a batch at the first row whose arguments fail the signature
/// check: per-tuple semantics demand that rows before the bad one still
/// execute (with their side effects) before the check error surfaces, so
/// the isolated designs ship the valid prefix and report the check error
/// at its true row index afterwards.
fn checked_prefix(
    name: &str,
    signature: &UdfSignature,
    batch: &ValueBatch,
) -> (Vec<Vec<Value>>, Option<(usize, JaguarError)>) {
    let mut rows = Vec::with_capacity(batch.len());
    let mut args = Vec::with_capacity(batch.arity());
    for i in 0..batch.len() {
        batch.read_row(i, &mut args);
        if let Err(e) = signature.check_args(name, &args) {
            return (rows, Some((i, e)));
        }
        rows.push(std::mem::take(&mut args));
    }
    (rows, None)
}

/// Combine a worker's batch reply with a deferred signature-check error.
///
/// Precedence mirrors the per-tuple path: an error the worker hit while
/// running the shipped prefix comes first (it happened at an earlier row);
/// otherwise the deferred check error surfaces at its true row index. A
/// worker row error carries its index as the completed-value count;
/// transport-level failures (dead worker) have no row attribution and are
/// positioned before any row.
fn finish_checked(
    out: Result<(Vec<Value>, Option<String>)>,
    bad: Option<(usize, JaguarError)>,
) -> BatchResult {
    match out {
        Ok((values, None)) => match bad {
            None => Ok(values),
            Some((row, e)) => Err(BatchError::new(row, e)),
        },
        Ok((values, Some(message))) => {
            Err(BatchError::new(values.len(), JaguarError::Worker(message)))
        }
        Err(e) => Err(BatchError::before_any(e)),
    }
}

/// A UDF running in a pool-managed worker process: same designs as
/// [`IsolatedUdf`], but the executor is borrowed from a [`WorkerPool`] and
/// returned (reset, ready for the next query) instead of being torn down.
struct PooledIsolatedUdf {
    name: String,
    signature: UdfSignature,
    worker: PooledWorker,
    cancel: CancelToken,
}

impl ScalarUdf for PooledIsolatedUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &UdfSignature {
        &self.signature
    }

    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value> {
        self.cancel.check()?;
        self.signature.check_args(&self.name, args)?;
        // Deadline propagation: the supervisor kills the worker at
        // min(remaining statement budget, pool invoke timeout), so a
        // wedged UDF cannot outlive its statement.
        self.worker
            .invoke_with_deadline(args.to_vec(), callbacks, self.cancel.remaining())
    }

    fn invoke_batch(
        &mut self,
        batch: &ValueBatch,
        callbacks: &mut dyn CallbackHandler,
    ) -> BatchResult {
        let (rows, bad) = checked_prefix(&self.name, &self.signature, batch);
        if let Err(e) = self.cancel.check() {
            return Err(BatchError::before_any(e));
        }
        // One deadline arm around the whole batch: the supervisor still
        // kills a wedged worker at min(statement budget, pool timeout),
        // it just can no longer distinguish which row wedged.
        let out = self
            .worker
            .invoke_batch_with_deadline(rows, callbacks, self.cancel.remaining());
        finish_checked(out, bad)
    }

    fn attach_cancel(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    fn finish(self: Box<Self>) -> Result<()> {
        // Dropping the guard checks the worker back in (Reset + re-idle)
        // or, if it died this query, lets the supervisor replace it.
        drop(self.worker);
        Ok(())
    }
}

/// Helper: build a [`VmUdfSpec`] from an unverified module. Hot functions
/// tier up after the default threshold; use [`VmUdfSpec::with_tier_up`] to
/// override.
pub fn vm_spec(
    module: jaguar_vm::Module,
    function: impl Into<String>,
    limits: ResourceLimits,
    jit: bool,
    permissions: Option<Arc<PermissionSet>>,
) -> Result<VmUdfSpec> {
    let bytes = module.to_bytes();
    let verified = Arc::new(module.verify()?);
    Ok(VmUdfSpec {
        module: verified,
        module_bytes: Arc::new(bytes),
        function: function.into(),
        limits,
        jit,
        permissions,
        tier_up_after: Some(jaguar_vm::DEFAULT_TIER_UP_AFTER),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_common::DataType;
    use jaguar_ipc::proto::NoCallbacks;

    #[test]
    fn native_def_instantiates_cheaply() {
        let def = UdfDef::new(
            "inc",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            UdfImpl::Native(NativeUdf::new(
                "inc",
                UdfSignature::new(vec![DataType::Int], DataType::Int),
                |args, _| Ok(Value::Int(args[0].as_int()? + 1)),
            )),
        );
        let mut u = def.instantiate().unwrap();
        assert_eq!(
            u.invoke(&[Value::Int(41)], &mut NoCallbacks).unwrap(),
            Value::Int(42)
        );
        assert_eq!(def.imp.design_label(), "C++");
    }

    #[test]
    fn vm_def_instantiates() {
        let module = jaguar_lang::compile("m", "fn main(x: i64) -> i64 { return x * x; }").unwrap();
        let spec = vm_spec(module, "main", ResourceLimits::default(), true, None).unwrap();
        let def = UdfDef::new(
            "square",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            UdfImpl::Vm(spec),
        );
        let mut u = def.instantiate().unwrap();
        assert_eq!(
            u.invoke(&[Value::Int(7)], &mut NoCallbacks).unwrap(),
            Value::Int(49)
        );
        assert_eq!(def.imp.design_label(), "JSM");
    }

    #[test]
    fn labels() {
        assert_eq!(
            UdfImpl::IsolatedNative {
                worker_fn: "x".into()
            }
            .design_label(),
            "IC++"
        );
    }
}
