//! The paper's generic UDF (§5.1) in every variant the experiments need.
//!
//! > "We used a 'generic' UDF that takes four parameters (ByteArray,
//! > NumDataIndepComps, NumDataDepComps, NumCallbacks) and returns an
//! > integer."
//!
//! Semantics (identical across all variants, so the equivalence tests can
//! compare backends bit-for-bit):
//!
//! 1. `NumDataIndepComps` iterations of a data-independent integer
//!    multiply-accumulate loop (`acc = acc * 31 + i`; the paper used a
//!    plain addition loop, but a modern optimizer closed-forms that into
//!    O(1), which would measure nothing — the loop-carried multiply keeps
//!    the work real in every variant),
//! 2. `NumDataDepComps` full passes over the byte array, accumulating
//!    every byte (models image transformations etc.),
//! 3. `NumCallbacks` callbacks to the server ("no data is actually
//!    transferred during the callback"); each returns its index, which is
//!    accumulated.
//!
//! All additions wrap (Java semantics; JagScript and the VM also wrap).
//!
//! Variants:
//!
//! * [`generic_native`] — idiomatic Rust, iterator-based inner loop: the
//!   paper's optimized "C++" (no per-access bounds checks, vectorizable),
//! * [`generic_native_bc`] — the §5.4 "second version of the C++ UDF that
//!   explicitly checks the bounds of every array access",
//! * [`generic_native_sfi`] — the §2.3/§4 software-fault-isolated variant:
//!   data copied into an [`SfiRegion`], every access masked,
//! * [`GENERIC_JAGSCRIPT`] — the same function in JagScript, compiled to
//!   JSM bytecode (the "Java" UDF of Design 3/4).

use std::sync::Arc;

use jaguar_common::error::Result;
use jaguar_common::{DataType, Value};
use jaguar_ipc::proto::CallbackHandler;
use jaguar_ipc::worker::WorkerRegistry;
use jaguar_vm::{PermissionSet, ResourceLimits};

use crate::api::UdfSignature;
use crate::def::{vm_spec, UdfDef, UdfImpl, Volatility};
use crate::native::NativeUdf;
use crate::sfi::SfiRegion;

/// Name of the callback the generic UDF issues.
pub const GENERIC_CALLBACK: &str = "cb";

/// Parameters of the generic UDF (the three scalar knobs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenericParams {
    pub data_indep_comps: i64,
    pub data_dep_comps: i64,
    pub callbacks: i64,
}

impl GenericParams {
    /// Assemble the full SQL argument tuple for a given byte array.
    pub fn args(&self, data: jaguar_common::ByteArray) -> Vec<Value> {
        vec![
            Value::Bytes(data),
            Value::Int(self.data_indep_comps),
            Value::Int(self.data_dep_comps),
            Value::Int(self.callbacks),
        ]
    }
}

/// The generic UDF's SQL signature.
pub fn generic_signature() -> UdfSignature {
    UdfSignature::new(
        vec![DataType::Bytes, DataType::Int, DataType::Int, DataType::Int],
        DataType::Int,
    )
}

fn unpack(args: &[Value]) -> Result<(&[u8], i64, i64, i64)> {
    Ok((
        args[0].as_bytes()?.as_slice(),
        args[1].as_int()?,
        args[2].as_int()?,
        args[3].as_int()?,
    ))
}

fn run_callbacks(mut acc: i64, n: i64, cb: &mut dyn CallbackHandler) -> Result<i64> {
    for c in 0..n {
        let v = cb.callback(GENERIC_CALLBACK, &[Value::Int(c)])?;
        acc = acc.wrapping_add(v.as_int()?);
    }
    Ok(acc)
}

/// Plain native variant (paper's "C++"): no per-access checks.
pub fn generic_native(args: &[Value], cb: &mut dyn CallbackHandler) -> Result<Value> {
    let (data, n_indep, n_dep, n_cb) = unpack(args)?;
    let mut acc: i64 = 0;
    for i in 0..n_indep {
        acc = acc.wrapping_mul(31).wrapping_add(i);
    }
    for _ in 0..n_dep {
        // Iterator form: the compiler elides bounds checks and may
        // vectorise — this is the optimized native baseline.
        for &b in data {
            acc = acc.wrapping_add(b as i64);
        }
    }
    acc = run_callbacks(acc, n_cb, cb)?;
    Ok(Value::Int(acc))
}

/// Bounds-checked native variant (§5.4's "BC-C++"). `black_box` keeps the
/// optimizer from proving the index in range and deleting the check —
/// which is exactly what a C++ compiler could not do for hand-written
/// `if (j >= len) abort();` checks against opaque indices.
pub fn generic_native_bc(args: &[Value], cb: &mut dyn CallbackHandler) -> Result<Value> {
    let (data, n_indep, n_dep, n_cb) = unpack(args)?;
    let mut acc: i64 = 0;
    for i in 0..n_indep {
        acc = acc.wrapping_mul(31).wrapping_add(i);
    }
    for _ in 0..n_dep {
        let len = data.len();
        let mut j = 0usize;
        while j < len {
            let jj = std::hint::black_box(j);
            // Explicit bounds check, kept live by black_box.
            let b = match data.get(jj) {
                Some(b) => *b,
                None => {
                    return Err(jaguar_common::JaguarError::Udf(
                        "bounds check failed".into(),
                    ))
                }
            };
            acc = acc.wrapping_add(b as i64);
            j += 1;
        }
    }
    acc = run_callbacks(acc, n_cb, cb)?;
    Ok(Value::Int(acc))
}

/// SFI variant (§2.3): the byte array is copied into a masked sandbox
/// region and every access goes through the masking accessor.
pub fn generic_native_sfi(args: &[Value], cb: &mut dyn CallbackHandler) -> Result<Value> {
    let (data, n_indep, n_dep, n_cb) = unpack(args)?;
    let region = SfiRegion::from_data(data);
    let mut acc: i64 = 0;
    for i in 0..n_indep {
        acc = acc.wrapping_mul(31).wrapping_add(i);
    }
    for _ in 0..n_dep {
        let len = region.len();
        let mut j = 0usize;
        while j < len {
            let jj = std::hint::black_box(j);
            acc = acc.wrapping_add(region.load(jj) as i64);
            j += 1;
        }
    }
    acc = run_callbacks(acc, n_cb, cb)?;
    Ok(Value::Int(acc))
}

/// The generic UDF in JagScript — the "Java source" the paper's users
/// would write, compiled to JSM bytecode for Designs 3 and 4.
pub const GENERIC_JAGSCRIPT: &str = r#"
import cb(i64) -> i64;

fn main(data: bytes, n_indep: i64, n_dep: i64, n_callbacks: i64) -> i64 {
    let acc: i64 = 0;
    let i: i64 = 0;
    while i < n_indep {
        acc = acc * 31 + i;
        i = i + 1;
    }
    let p: i64 = 0;
    while p < n_dep {
        let j: i64 = 0;
        let n: i64 = len(data);
        while j < n {
            acc = acc + data[j];
            j = j + 1;
        }
        p = p + 1;
    }
    let c: i64 = 0;
    while c < n_callbacks {
        acc = acc + cb(c);
        c = c + 1;
    }
    return acc;
}
"#;

/// Compile the JagScript generic UDF to an unverified module.
pub fn generic_module() -> jaguar_vm::Module {
    jaguar_lang::compile("udfs.generic", GENERIC_JAGSCRIPT)
        .expect("builtin generic UDF must compile")
}

// ---------------------------------------------------------------------
// UdfDefs for each design (used by the benchmark harness and tests)
// ---------------------------------------------------------------------

/// Design 1 definition ("C++").
pub fn def_native() -> UdfDef {
    UdfDef::new(
        "generic",
        generic_signature(),
        UdfImpl::Native(NativeUdf::new(
            "generic",
            generic_signature(),
            generic_native,
        )),
    )
    .with_volatility(Volatility::Stable)
}

/// Design 1 with explicit bounds checks ("BC-C++", §5.4).
pub fn def_native_bc() -> UdfDef {
    UdfDef::new(
        "generic_bc",
        generic_signature(),
        UdfImpl::Native(NativeUdf::new(
            "generic_bc",
            generic_signature(),
            generic_native_bc,
        )),
    )
    .with_volatility(Volatility::Stable)
}

/// Design 1 under software fault isolation (A1 ablation).
pub fn def_native_sfi() -> UdfDef {
    UdfDef::new(
        "generic_sfi",
        generic_signature(),
        UdfImpl::Native(NativeUdf::new(
            "generic_sfi",
            generic_signature(),
            generic_native_sfi,
        )),
    )
    .with_volatility(Volatility::Stable)
}

/// Design 2 definition ("IC++"): the worker binary's native `generic`.
pub fn def_isolated() -> UdfDef {
    UdfDef::new(
        "generic_ic",
        generic_signature(),
        UdfImpl::IsolatedNative {
            worker_fn: "generic".into(),
        },
    )
    .with_volatility(Volatility::Stable)
}

/// Design 3 definition ("JSM"/"JNI"): sandboxed bytecode in-process.
pub fn def_vm(jit: bool, limits: ResourceLimits) -> UdfDef {
    def_vm_tiered(jit, limits, Some(jaguar_vm::DEFAULT_TIER_UP_AFTER))
}

/// Design 3 with an explicit compiled-tier threshold (`Some(0)` =
/// compile on first call, `None` = interpreter only) — the knob the
/// tier benchmark sweeps.
pub fn def_vm_tiered(jit: bool, limits: ResourceLimits, tier_up_after: Option<u64>) -> UdfDef {
    let perms = Arc::new(
        PermissionSet::deny_all("generic_vm")
            .grant(jaguar_vm::Permission::HostCall(GENERIC_CALLBACK.into())),
    );
    let spec = vm_spec(generic_module(), "main", limits, jit, Some(perms))
        .expect("builtin generic UDF must verify")
        .with_tier_up(tier_up_after);
    UdfDef::new("generic_vm", generic_signature(), UdfImpl::Vm(spec))
        .with_volatility(Volatility::Stable)
}

/// Design 4 definition: sandboxed bytecode in a worker process.
pub fn def_isolated_vm(jit: bool, limits: ResourceLimits) -> UdfDef {
    def_isolated_vm_tiered(jit, limits, Some(jaguar_vm::DEFAULT_TIER_UP_AFTER))
}

/// Design 4 with an explicit compiled-tier threshold, shipped over the
/// wire so the worker-side interpreter applies the same policy.
pub fn def_isolated_vm_tiered(
    jit: bool,
    limits: ResourceLimits,
    tier_up_after: Option<u64>,
) -> UdfDef {
    let spec = vm_spec(generic_module(), "main", limits, jit, None)
        .expect("builtin generic UDF must verify")
        .with_tier_up(tier_up_after);
    UdfDef::new(
        "generic_ivm",
        generic_signature(),
        UdfImpl::IsolatedVm(spec),
    )
    .with_volatility(Volatility::Stable)
}

/// Callback handler used by the experiments: returns its argument
/// ("no data is actually transferred during the callback").
pub struct IdentityCallbacks;

impl CallbackHandler for IdentityCallbacks {
    fn callback(&mut self, _name: &str, args: &[Value]) -> Result<Value> {
        Ok(args.first().cloned().unwrap_or(Value::Int(0)))
    }
}

/// The native UDFs compiled into the `jaguar-worker` binary — the
/// counterpart of the C++ UDFs linked into PREDATOR's remote executor.
pub fn worker_registry() -> WorkerRegistry {
    WorkerRegistry::new()
        .register("noop", |_args, _cb| Ok(Value::Int(0)))
        .register("generic", generic_native)
        .register("generic_bc", generic_native_bc)
        .register("generic_sfi", generic_native_sfi)
        // A deliberately crashing UDF: proves Design 2's crash containment.
        .register("crash", |_args, _cb| {
            std::process::abort();
        })
        // A deliberately hanging UDF: proves the pool's deadline
        // enforcement kills a wedged worker instead of wedging the query.
        .register("hang", |_args, _cb| loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        })
        // Crashes only for positive arguments: lets circuit-breaker tests
        // trip the breaker with crashing inputs, then prove the half-open
        // probe recovers with a benign one.
        .register("crash_if_positive", |args, _cb| {
            let v = args.first().map(|a| a.as_int()).transpose()?.unwrap_or(0);
            if v > 0 {
                std::process::abort();
            }
            Ok(Value::Int(v))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_common::ByteArray;
    use jaguar_ipc::proto::NoCallbacks;

    fn reference(data: &[u8], p: GenericParams) -> i64 {
        let mut acc: i64 = 0;
        for i in 0..p.data_indep_comps {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        for _ in 0..p.data_dep_comps {
            for &b in data {
                acc = acc.wrapping_add(b as i64);
            }
        }
        for c in 0..p.callbacks {
            acc = acc.wrapping_add(c);
        }
        acc
    }

    fn eval(
        f: fn(&[Value], &mut dyn CallbackHandler) -> Result<Value>,
        data: &[u8],
        p: GenericParams,
    ) -> i64 {
        let args = p.args(ByteArray::from(data));
        f(&args, &mut IdentityCallbacks).unwrap().as_int().unwrap()
    }

    #[test]
    fn native_variants_agree_with_reference() {
        let data = ByteArray::patterned(257, 9);
        for p in [
            GenericParams::default(),
            GenericParams {
                data_indep_comps: 1000,
                ..Default::default()
            },
            GenericParams {
                data_dep_comps: 3,
                ..Default::default()
            },
            GenericParams {
                callbacks: 10,
                ..Default::default()
            },
            GenericParams {
                data_indep_comps: 17,
                data_dep_comps: 2,
                callbacks: 5,
            },
        ] {
            let want = reference(data.as_slice(), p);
            assert_eq!(eval(generic_native, data.as_slice(), p), want, "{p:?}");
            assert_eq!(eval(generic_native_bc, data.as_slice(), p), want, "{p:?}");
            assert_eq!(eval(generic_native_sfi, data.as_slice(), p), want, "{p:?}");
        }
    }

    #[test]
    fn jagscript_variant_agrees() {
        let data = ByteArray::patterned(100, 4);
        let p = GenericParams {
            data_indep_comps: 50,
            data_dep_comps: 2,
            callbacks: 3,
        };
        let def = def_vm(true, ResourceLimits::default());
        let mut udf = def.instantiate().unwrap();
        let got = udf
            .invoke(&p.args(data.clone()), &mut IdentityCallbacks)
            .unwrap();
        assert_eq!(got, Value::Int(reference(data.as_slice(), p)));
    }

    #[test]
    fn baseline_and_jit_agree() {
        let data = ByteArray::patterned(64, 2);
        let p = GenericParams {
            data_indep_comps: 10,
            data_dep_comps: 1,
            callbacks: 0,
        };
        let mut jit = def_vm(true, ResourceLimits::default())
            .instantiate()
            .unwrap();
        let mut base = def_vm(false, ResourceLimits::default())
            .instantiate()
            .unwrap();
        assert_eq!(
            jit.invoke(&p.args(data.clone()), &mut NoCallbacks).unwrap(),
            base.invoke(&p.args(data), &mut NoCallbacks).unwrap()
        );
    }

    #[test]
    fn vm_security_denies_unexpected_callbacks() {
        // The VM def grants only the "cb" host call; a module importing
        // something else would be rejected — here we check the runtime
        // side: identity callbacks work under the granted permission.
        let data = ByteArray::zeroed(1);
        let p = GenericParams {
            callbacks: 1,
            ..Default::default()
        };
        let mut udf = def_vm(true, ResourceLimits::default())
            .instantiate()
            .unwrap();
        udf.invoke(&p.args(data), &mut IdentityCallbacks).unwrap();
    }

    #[test]
    fn worker_registry_contents() {
        let reg = worker_registry();
        for name in [
            "noop",
            "generic",
            "generic_bc",
            "generic_sfi",
            "crash",
            "hang",
            "crash_if_positive",
        ] {
            assert!(reg.get(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn empty_array_with_dep_passes() {
        let p = GenericParams {
            data_dep_comps: 5,
            ..Default::default()
        };
        assert_eq!(eval(generic_native, &[], p), 0);
        assert_eq!(eval(generic_native_bc, &[], p), 0);
        assert_eq!(eval(generic_native_sfi, &[], p), 0);
    }
}
