//! # jaguar-udf — the extensibility framework
//!
//! This crate is the paper's design space (Table 1) made executable. A UDF
//! is registered as a [`UdfDef`] whose [`UdfImpl`] picks the execution
//! design:
//!
//! | Paper | `UdfImpl` | Mechanism |
//! |---|---|---|
//! | Design 1, "C++"  | [`UdfImpl::Native`]         | Rust closure called in-process (trusted) |
//! | Design 2, "IC++" | [`UdfImpl::IsolatedNative`] | native code in a worker process, one per query |
//! | Design 3, "JNI"  | [`UdfImpl::Vm`]             | verified JSM bytecode in-process, sandboxed |
//! | Design 4         | [`UdfImpl::IsolatedVm`]     | JSM bytecode in a worker process |
//!
//! The query executor instantiates a [`ScalarUdf`] from the definition
//! **once per query** (matching the paper's per-query remote executors) and
//! invokes it once per tuple. Callbacks (§4.2) flow through the
//! [`CallbackHandler`] the executor supplies.
//!
//! [`generic`] implements the paper's four-parameter generic UDF
//! (§5.1) in every variant the experiments need — plain native,
//! bounds-checked native (§5.4), SFI-instrumented native (§2.3), and
//! JagScript→bytecode — plus the worker registry for the
//! `jaguar-worker` binary.

pub mod api;
pub mod breaker;
pub mod def;
pub mod generic;
pub mod native;
pub mod sfi;
pub mod vmexec;

pub use api::{ScalarUdf, UdfResourceUsage, UdfSignature};
pub use breaker::CircuitBreaker;
pub use def::{UdfDef, UdfImpl, VmUdfSpec, Volatility};
pub use generic::{worker_registry, GenericParams};
pub use jaguar_ipc::proto::CallbackHandler;
pub use jaguar_vec::{BatchError, BatchResult, ValueBatch};
pub use native::NativeUdf;
pub use vmexec::VmUdf;
