//! Design 1: native UDFs executed inside the server process.
//!
//! "Clearly, Design 1 will have the best performance of all the options
//! since it essentially corresponds to hard-coding the UDF into the
//! server. However, the obvious concern is that system security might be
//! compromised." — the closure runs with the full authority of the server
//! process; nothing stops it from panicking, allocating unboundedly, or
//! scribbling over shared state. That is the point of the baseline.

use std::sync::Arc;

use jaguar_common::error::Result;
use jaguar_common::Value;
use jaguar_ipc::proto::CallbackHandler;

use crate::api::{ScalarUdf, UdfSignature};

/// The function type for a trusted native UDF.
pub type NativeFn = dyn Fn(&[Value], &mut dyn CallbackHandler) -> Result<Value> + Send + Sync;

/// A trusted, in-process UDF (the paper's "C++" baseline).
///
/// The definition is shared (`Arc`); instantiation per query is free.
#[derive(Clone)]
pub struct NativeUdf {
    name: String,
    signature: UdfSignature,
    f: Arc<NativeFn>,
}

impl NativeUdf {
    pub fn new(
        name: impl Into<String>,
        signature: UdfSignature,
        f: impl Fn(&[Value], &mut dyn CallbackHandler) -> Result<Value> + Send + Sync + 'static,
    ) -> NativeUdf {
        NativeUdf {
            name: name.into(),
            signature,
            f: Arc::new(f),
        }
    }
}

impl ScalarUdf for NativeUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &UdfSignature {
        &self.signature
    }

    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value> {
        self.signature.check_args(&self.name, args)?;
        (self.f)(args, callbacks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_common::DataType;
    use jaguar_ipc::proto::NoCallbacks;

    #[test]
    fn direct_invocation() {
        let mut udf = NativeUdf::new(
            "double",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            |args, _| Ok(Value::Int(args[0].as_int()? * 2)),
        );
        assert_eq!(
            udf.invoke(&[Value::Int(21)], &mut NoCallbacks).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn signature_enforced_before_dispatch() {
        let mut udf = NativeUdf::new(
            "one_arg",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            |_, _| panic!("must not be reached on bad args"),
        );
        assert!(udf.invoke(&[], &mut NoCallbacks).is_err());
        assert!(udf
            .invoke(&[Value::Str("x".into())], &mut NoCallbacks)
            .is_err());
    }

    #[test]
    fn callbacks_reach_handler() {
        struct Plus100;
        impl CallbackHandler for Plus100 {
            fn callback(&mut self, _name: &str, args: &[Value]) -> Result<Value> {
                Ok(Value::Int(args[0].as_int()? + 100))
            }
        }
        let mut udf = NativeUdf::new(
            "cb",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            |args, cb| cb.callback("lookup", args),
        );
        assert_eq!(
            udf.invoke(&[Value::Int(1)], &mut Plus100).unwrap(),
            Value::Int(101)
        );
    }
}
