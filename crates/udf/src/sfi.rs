//! Software Fault Isolation (SFI) for native UDFs.
//!
//! §2.3 cites Wahbe et al. \[WLAG93\]: *"instruments the extension code with
//! run-time checks to ensure that all memory accesses are valid (usually by
//! checking the higher order bits of each address to ensure that it lies
//! within a specific range)"*, and §4 expects *"such a mechanism to add an
//! overhead of approximately 25%"*.
//!
//! [`SfiRegion`] is that mechanism in miniature: a power-of-two-sized
//! sandbox region; every load and store masks the address into the region
//! (the classic sandboxing transform), so out-of-sandbox access is
//! *impossible by construction* rather than detected. An SFI'd UDF operates
//! only through these accessors — the A1 ablation measures what the
//! masking costs relative to raw native access.

/// A power-of-two-sized memory sandbox with address-masking accessors.
#[derive(Debug)]
pub struct SfiRegion {
    mem: Vec<u8>,
    mask: usize,
    /// Logical length (≤ capacity); reads past it return 0 rather than
    /// leaking the slack, mirroring zero-fill in real SFI heaps.
    len: usize,
}

impl SfiRegion {
    /// Create a region holding `data`, rounding capacity up to a power of
    /// two (minimum 64 bytes).
    pub fn from_data(data: &[u8]) -> SfiRegion {
        let cap = data.len().next_power_of_two().max(64);
        let mut mem = vec![0u8; cap];
        mem[..data.len()].copy_from_slice(data);
        SfiRegion {
            mem,
            mask: cap - 1,
            len: data.len(),
        }
    }

    /// Logical length of the sandboxed data.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sandboxed load: the address is masked into the region. Never faults,
    /// never escapes. Reads beyond the logical length observe the zero
    /// slack, never foreign memory.
    #[inline]
    pub fn load(&self, addr: usize) -> u8 {
        // The mask is the entire protection mechanism (WLAG93).
        self.mem[addr & self.mask]
    }

    /// Sandboxed store.
    #[inline]
    pub fn store(&mut self, addr: usize, value: u8) {
        let a = addr & self.mask;
        self.mem[a] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_visible_through_sandbox() {
        let r = SfiRegion::from_data(&[1, 2, 3]);
        assert_eq!(r.load(0), 1);
        assert_eq!(r.load(2), 3);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn wild_addresses_wrap_into_region() {
        let r = SfiRegion::from_data(&[9; 100]); // capacity 128
                                                 // A wild pointer-style address cannot escape the region.
        assert!(r.load(usize::MAX) <= 9);
        let v = r.load(128 + 5); // wraps to 5
        assert_eq!(v, 9);
    }

    #[test]
    fn slack_reads_zero() {
        let r = SfiRegion::from_data(&[7; 100]); // capacity 128; 28 slack
        assert_eq!(r.load(120), 0);
    }

    #[test]
    fn stores_are_contained() {
        let mut r = SfiRegion::from_data(&[0; 64]);
        r.store(1 << 40, 5); // masks to 0
        assert_eq!(r.load(0), 5);
    }

    #[test]
    fn minimum_capacity() {
        let r = SfiRegion::from_data(&[]);
        assert!(r.is_empty());
        assert_eq!(r.load(0), 0); // safe even when empty
    }
}
