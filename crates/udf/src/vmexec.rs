//! Design 3: sandboxed VM UDFs inside the server process (the "JNI" design).
//!
//! A [`VmUdf`] owns a JSM interpreter over a verified module. Each
//! invocation:
//!
//! 1. marshals SQL [`Value`]s into a fresh VM arena (the JNI-style
//!    "parameters that need to be passed must first be mapped to Java
//!    objects" cost — a real copy for byte arrays),
//! 2. executes under fuel/memory limits and the security manager,
//! 3. marshals the result back out.
//!
//! Host calls made by the bytecode become [`CallbackHandler`] invocations —
//! crossing the language boundary, but *not* a process boundary, which is
//! why Figure 8 shows JNI callbacks far cheaper than IC++ callbacks.

use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::{ByteArray, DataType, Value};
use jaguar_ipc::proto::CallbackHandler;
use jaguar_vec::{BatchError, BatchResult, ValueBatch};
use jaguar_vm::interp::{ExecMode, HostEnv, Interpreter, VmValue};
use jaguar_vm::{Arena, PermissionSet, ResourceLimits, VType, VerifiedModule};

use crate::api::{ScalarUdf, UdfResourceUsage, UdfSignature};

/// Convert a SQL value into a VM value, allocating byte arrays in `arena`.
pub fn value_to_vm(v: &Value, arena: &mut Arena) -> Result<VmValue> {
    Ok(match v {
        Value::Int(i) => VmValue::I64(*i),
        Value::Float(f) => VmValue::F64(*f),
        Value::Bool(b) => VmValue::I64(*b as i64),
        Value::Bytes(b) => VmValue::Bytes(arena.alloc_from(b.as_slice())?),
        other => return Err(JaguarError::Udf(format!("cannot pass {other} to a VM UDF"))),
    })
}

/// Convert a VM value back into a SQL value, copying byte arrays out.
pub fn vm_to_value(v: VmValue, arena: &Arena) -> Result<Value> {
    Ok(match v {
        VmValue::I64(i) => Value::Int(i),
        VmValue::F64(f) => Value::Float(f),
        VmValue::Bytes(r) => Value::Bytes(ByteArray::new(arena.get(r)?.to_vec())),
    })
}

/// Adapts a [`CallbackHandler`] into the VM's [`HostEnv`].
pub struct CallbackHost<'a> {
    pub callbacks: &'a mut dyn CallbackHandler,
}

impl HostEnv for CallbackHost<'_> {
    fn host_call(
        &mut self,
        name: &str,
        args: &[VmValue],
        arena: &mut Arena,
    ) -> Result<Option<VmValue>> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(vm_to_value(*a, arena)?);
        }
        let out = self.callbacks.callback(name, &vals)?;
        Ok(Some(value_to_vm(&out, arena)?))
    }
}

/// Map a SQL type onto the VM type used to carry it.
fn vtype_of(t: DataType) -> Result<VType> {
    Ok(match t {
        DataType::Int | DataType::Bool => VType::I64,
        DataType::Float => VType::F64,
        DataType::Bytes => VType::Bytes,
        DataType::Str => {
            return Err(JaguarError::Udf(
                "VARCHAR parameters are not supported by VM UDFs; use BYTEARRAY".into(),
            ))
        }
    })
}

/// A sandboxed, in-process UDF (the paper's Design 3).
pub struct VmUdf {
    name: String,
    signature: UdfSignature,
    function: String,
    interp: Interpreter,
    consumed: UdfResourceUsage,
}

impl VmUdf {
    /// Build a VM UDF over an already-verified module. Fails if the VM
    /// function's signature cannot carry the SQL signature.
    /// `tier_up_after` is the hotness threshold for the compiled register
    /// tier (`None` = stay interpreted; only meaningful in JIT mode).
    #[allow(clippy::too_many_arguments)] // a constructor mirroring UdfDef's full design space
    pub fn new(
        name: impl Into<String>,
        signature: UdfSignature,
        module: Arc<VerifiedModule>,
        function: impl Into<String>,
        limits: ResourceLimits,
        mode: ExecMode,
        permissions: Option<Arc<PermissionSet>>,
        tier_up_after: Option<u64>,
    ) -> Result<VmUdf> {
        let name = name.into();
        let function = function.into();
        let fidx = module.find_function(&function).ok_or_else(|| {
            JaguarError::Udf(format!(
                "module '{}' has no function '{function}'",
                module.name()
            ))
        })?;
        let f = &module.functions()[fidx as usize];
        let want_params: Vec<VType> = signature
            .params
            .iter()
            .map(|t| vtype_of(*t))
            .collect::<Result<_>>()?;
        if f.sig.params != want_params {
            return Err(JaguarError::Udf(format!(
                "VM function '{function}' parameter types do not carry the SQL signature"
            )));
        }
        if f.sig.ret != Some(vtype_of(signature.ret)?) {
            return Err(JaguarError::Udf(format!(
                "VM function '{function}' return type does not carry the SQL signature"
            )));
        }
        let mut interp = Interpreter::new(module, limits, mode).with_tier_up(tier_up_after);
        if let Some(p) = permissions {
            interp = interp.with_security(p);
        }
        Ok(VmUdf {
            name,
            signature,
            function,
            interp,
            consumed: UdfResourceUsage::default(),
        })
    }
}

impl ScalarUdf for VmUdf {
    fn name(&self) -> &str {
        &self.name
    }

    fn signature(&self) -> &UdfSignature {
        &self.signature
    }

    fn consumed(&self) -> Option<UdfResourceUsage> {
        Some(self.consumed)
    }

    fn attach_cancel(&mut self, token: jaguar_common::cancel::CancelToken) {
        // The interpreter polls the token every K instructions alongside
        // fuel, so even an unmetered (`fuel: None`) loop respects the
        // statement deadline.
        self.interp.set_cancel(token);
    }

    fn invoke(&mut self, args: &[Value], callbacks: &mut dyn CallbackHandler) -> Result<Value> {
        self.signature.check_args(&self.name, args)?;
        let mut arena = Arena::new(self.interp.limits().memory);
        // (usage recorded below, after the run)
        let mut vm_args = Vec::with_capacity(args.len());
        for a in args {
            vm_args.push(value_to_vm(a, &mut arena)?);
        }
        let mut host = CallbackHost { callbacks };
        let (ret, usage) =
            self.interp
                .invoke_with_arena(&self.function, vm_args, &mut arena, &mut host)?;
        self.consumed.instructions += usage.instructions;
        self.consumed.bytes_allocated += arena.allocated() as u64;
        self.consumed.host_calls += usage.host_calls;
        match ret {
            Some(v) => {
                let out = vm_to_value(v, &arena)?;
                // Return type fidelity: Bool SQL results come back as i64.
                if self.signature.ret == DataType::Bool {
                    return Ok(Value::Bool(out.as_int()? != 0));
                }
                Ok(out)
            }
            None => Err(JaguarError::Udf(format!(
                "VM function '{}' returned no value",
                self.function
            ))),
        }
    }

    /// The vectorized entry point: enter the interpreter once per row but
    /// amortize everything around it across the batch — the function is
    /// resolved once, and one arena is reset per row instead of being
    /// reallocated. Results, error text, and per-row resource accounting
    /// are identical to the per-tuple path; the interpreter's cancel poll
    /// keeps its per-`CANCEL_CHECK_INTERVAL` cadence inside every row.
    fn invoke_batch(
        &mut self,
        batch: &ValueBatch,
        callbacks: &mut dyn CallbackHandler,
    ) -> BatchResult {
        let fidx = match self.interp.resolve(&self.function) {
            Ok(f) => f,
            Err(e) => return Err(BatchError::before_any(e)),
        };
        let mut arena = Arena::new(self.interp.limits().memory);
        let mut out = Vec::with_capacity(batch.len());
        let mut args = Vec::with_capacity(batch.arity());
        for i in 0..batch.len() {
            batch.read_row(i, &mut args);
            arena.reset();
            let one = (|| -> Result<Value> {
                self.signature.check_args(&self.name, &args)?;
                let mut vm_args = Vec::with_capacity(args.len());
                for a in &args {
                    vm_args.push(value_to_vm(a, &mut arena)?);
                }
                let mut host = CallbackHost { callbacks };
                let (ret, usage) = self.interp.invoke_resolved(
                    fidx,
                    &self.function,
                    vm_args,
                    &mut arena,
                    &mut host,
                )?;
                self.consumed.instructions += usage.instructions;
                self.consumed.bytes_allocated += arena.allocated() as u64;
                self.consumed.host_calls += usage.host_calls;
                match ret {
                    Some(v) => {
                        let out = vm_to_value(v, &arena)?;
                        if self.signature.ret == DataType::Bool {
                            return Ok(Value::Bool(out.as_int()? != 0));
                        }
                        Ok(out)
                    }
                    None => Err(JaguarError::Udf(format!(
                        "VM function '{}' returned no value",
                        self.function
                    ))),
                }
            })();
            match one {
                Ok(v) => out.push(v),
                Err(e) => return Err(BatchError::new(i, e)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_ipc::proto::NoCallbacks;
    use jaguar_lang::compile;

    fn vm_udf(src: &str, sig: UdfSignature) -> VmUdf {
        let module = compile("m", src).unwrap();
        let verified = Arc::new(module.verify().unwrap());
        VmUdf::new(
            "test_udf",
            sig,
            verified,
            "main",
            ResourceLimits::default(),
            ExecMode::Jit,
            None,
            Some(jaguar_vm::DEFAULT_TIER_UP_AFTER),
        )
        .unwrap()
    }

    #[test]
    fn bytes_in_int_out() {
        let mut udf = vm_udf(
            "fn main(b: bytes) -> i64 { return len(b); }",
            UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        );
        let v = udf
            .invoke(&[Value::Bytes(ByteArray::zeroed(17))], &mut NoCallbacks)
            .unwrap();
        assert_eq!(v, Value::Int(17));
    }

    #[test]
    fn float_signature() {
        let mut udf = vm_udf(
            "fn main(x: f64) -> f64 { return x * 2.0; }",
            UdfSignature::new(vec![DataType::Float], DataType::Float),
        );
        assert_eq!(
            udf.invoke(&[Value::Float(1.25)], &mut NoCallbacks).unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn bool_maps_to_i64_and_back() {
        let mut udf = vm_udf(
            "fn main(b: i64) -> i64 { return !b; }",
            UdfSignature::new(vec![DataType::Bool], DataType::Bool),
        );
        assert_eq!(
            udf.invoke(&[Value::Bool(false)], &mut NoCallbacks).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn signature_mismatch_rejected_at_build() {
        let module = compile("m", "fn main(x: i64) -> i64 { return x; }").unwrap();
        let verified = Arc::new(module.verify().unwrap());
        let e = match VmUdf::new(
            "bad",
            UdfSignature::new(vec![DataType::Bytes], DataType::Int),
            verified,
            "main",
            ResourceLimits::default(),
            ExecMode::Jit,
            None,
            None,
        ) {
            Err(e) => e,
            Ok(_) => panic!("signature mismatch must be rejected"),
        };
        assert!(e.to_string().contains("parameter types"), "{e}");
    }

    #[test]
    fn missing_function_rejected() {
        let module = compile("m", "fn main() -> i64 { return 0; }").unwrap();
        let verified = Arc::new(module.verify().unwrap());
        assert!(VmUdf::new(
            "bad",
            UdfSignature::new(vec![], DataType::Int),
            verified,
            "absent",
            ResourceLimits::default(),
            ExecMode::Jit,
            None,
            None,
        )
        .is_err());
    }

    #[test]
    fn varchar_unsupported() {
        let module = compile("m", "fn main() -> i64 { return 0; }").unwrap();
        let verified = Arc::new(module.verify().unwrap());
        assert!(VmUdf::new(
            "bad",
            UdfSignature::new(vec![DataType::Str], DataType::Int),
            verified,
            "main",
            ResourceLimits::default(),
            ExecMode::Jit,
            None,
            None,
        )
        .is_err());
    }

    #[test]
    fn callback_through_host_boundary() {
        struct Lookup;
        impl CallbackHandler for Lookup {
            fn callback(&mut self, name: &str, args: &[Value]) -> Result<Value> {
                assert_eq!(name, "lookup");
                Ok(Value::Int(args[0].as_int()? * 10))
            }
        }
        let src = r#"
            import lookup(i64) -> i64;
            fn main(x: i64) -> i64 { return lookup(x) + 1; }
        "#;
        let mut udf = vm_udf(src, UdfSignature::new(vec![DataType::Int], DataType::Int));
        assert_eq!(
            udf.invoke(&[Value::Int(4)], &mut Lookup).unwrap(),
            Value::Int(41)
        );
    }

    #[test]
    fn infinite_loop_contained_by_fuel() {
        let module = compile("m", "fn main() -> i64 { while 1 { } return 0; }").unwrap();
        let verified = Arc::new(module.verify().unwrap());
        let mut udf = VmUdf::new(
            "spin",
            UdfSignature::new(vec![], DataType::Int),
            verified,
            "main",
            ResourceLimits::tight(50_000, 1 << 20),
            ExecMode::Jit,
            None,
            Some(0),
        )
        .unwrap();
        let e = udf.invoke(&[], &mut NoCallbacks).unwrap_err();
        assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
        assert!(e.is_containable());
    }

    #[test]
    fn infinite_loop_contained_by_deadline_without_fuel() {
        use jaguar_common::cancel::CancelToken;
        let module = compile("m", "fn main() -> i64 { while 1 { } return 0; }").unwrap();
        let verified = Arc::new(module.verify().unwrap());
        let mut udf = VmUdf::new(
            "spin",
            UdfSignature::new(vec![], DataType::Int),
            verified,
            "main",
            // No fuel limit: only the statement deadline can stop this.
            ResourceLimits {
                fuel: None,
                memory: Some(1 << 20),
                max_call_depth: 8,
            },
            ExecMode::Jit,
            None,
            Some(0),
        )
        .unwrap();
        udf.attach_cancel(CancelToken::with_deadline(
            std::time::Duration::from_millis(30),
        ));
        let started = std::time::Instant::now();
        let e = udf.invoke(&[], &mut NoCallbacks).unwrap_err();
        assert!(matches!(e, JaguarError::Timeout(_)), "{e}");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "deadline must abort promptly"
        );
    }
}
