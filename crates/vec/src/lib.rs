//! # jaguar-vec
//!
//! Vectorized UDF invocation: the columnar [`ValueBatch`] carrier and the
//! batch-size policy shared by every trust design.
//!
//! The paper's measurements (and our own BENCH_parallel.json) show that for
//! sandboxed and isolated designs the *crossing* — VM entry, argument
//! marshalling, IPC round-trip — dominates per-tuple cost. This crate
//! defines the ABI that amortizes it: instead of one crossing per tuple,
//! the executor accumulates filter-surviving tuples into a `ValueBatch`
//! and pays one crossing per batch. Each backend then loops rows on the
//! *inside* of the boundary (inside the interpreter entry, inside the
//! worker process), which is where the loop is cheap.
//!
//! The contract every batched backend must honour:
//!
//! * **Byte-identical results.** Row `i` of the reply equals what a
//!   per-tuple `invoke` on row `i` would have returned.
//! * **Exact error positions.** If row `k` fails, the batch reports
//!   [`BatchError`] `{ row: k, error }` where `error` is the same error the
//!   per-tuple path raises, and rows `0..k` have fully taken effect
//!   (their side effects — callbacks, resource accounting — happened).
//! * **Cancellation still ticks per row.** Batching amortizes entry cost,
//!   not responsiveness: cancel/deadline polls keep their per-row cadence.

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::Value;

/// Smallest batch worth forming: below this the bookkeeping outweighs the
/// saved crossings (measured; see EXPERIMENTS.md E12).
pub const MIN_BATCH: usize = 64;

/// Largest batch the engine will form. Caps carrier memory and bounds how
/// long an isolated worker goes between supervisor-visible replies.
pub const MAX_BATCH: usize = 1024;

/// Resolve a configured batch size against the engine's fixed budget.
///
/// `0` and `1` disable batching (the per-tuple path); anything else is
/// clamped into `MIN_BATCH..=MAX_BATCH`.
pub fn effective_batch_size(requested: usize) -> usize {
    if requested <= 1 {
        1
    } else {
        requested.clamp(MIN_BATCH, MAX_BATCH)
    }
}

/// A batch invocation error: which row failed, and with what.
///
/// The `error` is exactly the error the per-tuple path would raise for
/// that row, so the executor can replicate per-tuple accounting (rows
/// `0..row` succeeded) and surface the identical failure to the client.
#[derive(Debug)]
pub struct BatchError {
    /// Zero-based index of the failing row within the batch.
    pub row: usize,
    pub error: JaguarError,
}

impl BatchError {
    pub fn new(row: usize, error: JaguarError) -> BatchError {
        BatchError { row, error }
    }

    /// An error that occurred before any row was attempted (e.g. a dead
    /// worker): positioned at row 0 with no prior effects.
    pub fn before_any(error: JaguarError) -> BatchError {
        BatchError { row: 0, error }
    }
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch row {}: {}", self.row, self.error)
    }
}

/// Result of a batched invocation: one output value per input row, or the
/// first failing row's error.
pub type BatchResult = std::result::Result<Vec<Value>, BatchError>;

/// A columnar carrier of UDF argument tuples.
///
/// Arguments are stored column-major (`columns[arg][row]`), matching how
/// the projection evaluator produces them (one expression at a time over
/// the accumulated rows) and how the wire format ships them. Row count is
/// bounded by [`MAX_BATCH`] at the call sites, not by the type.
#[derive(Debug, Clone, Default)]
pub struct ValueBatch {
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl ValueBatch {
    /// An empty batch for `arity` argument columns, each with room for
    /// `capacity` rows.
    pub fn with_capacity(arity: usize, capacity: usize) -> ValueBatch {
        ValueBatch {
            columns: (0..arity).map(|_| Vec::with_capacity(capacity)).collect(),
            rows: 0,
        }
    }

    /// Build a batch from row-major tuples (wire decoding, tests).
    /// Fails if rows disagree on arity.
    pub fn from_rows(rows: &[Vec<Value>]) -> Result<ValueBatch> {
        let arity = rows.first().map_or(0, |r| r.len());
        let mut batch = ValueBatch::with_capacity(arity, rows.len());
        for row in rows {
            batch.push_row(row)?;
        }
        Ok(batch)
    }

    /// Number of argument columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows accumulated.
    pub fn len(&self) -> usize {
        self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one argument tuple (cloning the values).
    pub fn push_row(&mut self, args: &[Value]) -> Result<()> {
        if args.len() != self.columns.len() {
            return Err(JaguarError::Execution(format!(
                "batch arity mismatch: batch has {} columns, row has {}",
                self.columns.len(),
                args.len()
            )));
        }
        for (col, v) in self.columns.iter_mut().zip(args) {
            col.push(v.clone());
        }
        self.rows += 1;
        Ok(())
    }

    /// Append one argument tuple, consuming it (no clone).
    pub fn push_row_owned(&mut self, args: Vec<Value>) -> Result<()> {
        if args.len() != self.columns.len() {
            return Err(JaguarError::Execution(format!(
                "batch arity mismatch: batch has {} columns, row has {}",
                self.columns.len(),
                args.len()
            )));
        }
        for (col, v) in self.columns.iter_mut().zip(args) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Copy row `i`'s arguments into `out` (cleared first). The reusable
    /// buffer keeps the default per-tuple fallback allocation-free across
    /// rows.
    pub fn read_row(&self, i: usize, out: &mut Vec<Value>) {
        out.clear();
        for col in &self.columns {
            out.push(col[i].clone());
        }
    }

    /// Row `i` as a fresh argument vector.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// All rows, row-major (wire encoding, tests).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Borrow argument column `a`.
    pub fn column(&self, a: usize) -> &[Value] {
        &self.columns[a]
    }

    /// Drop all rows, keeping column capacity for reuse.
    pub fn clear(&mut self) {
        for col in &mut self.columns {
            col.clear();
        }
        self.rows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_batch_size_policy() {
        assert_eq!(effective_batch_size(0), 1);
        assert_eq!(effective_batch_size(1), 1);
        assert_eq!(effective_batch_size(2), MIN_BATCH);
        assert_eq!(effective_batch_size(64), 64);
        assert_eq!(effective_batch_size(256), 256);
        assert_eq!(effective_batch_size(1024), 1024);
        assert_eq!(effective_batch_size(1_000_000), MAX_BATCH);
    }

    #[test]
    fn push_and_read_round_trip() {
        let mut b = ValueBatch::with_capacity(2, 4);
        assert_eq!(b.arity(), 2);
        assert!(b.is_empty());
        b.push_row(&[Value::Int(1), Value::Null]).unwrap();
        b.push_row_owned(vec![Value::Int(2), Value::Float(0.5)])
            .unwrap();
        assert_eq!(b.len(), 2);
        let mut buf = Vec::new();
        b.read_row(0, &mut buf);
        assert_eq!(buf, vec![Value::Int(1), Value::Null]);
        b.read_row(1, &mut buf);
        assert_eq!(buf, vec![Value::Int(2), Value::Float(0.5)]);
        assert_eq!(b.column(0), &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = ValueBatch::with_capacity(2, 4);
        assert!(b.push_row(&[Value::Int(1)]).is_err());
        assert!(b.push_row_owned(vec![]).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn rows_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ];
        let b = ValueBatch::from_rows(&rows).unwrap();
        assert_eq!(b.to_rows(), rows);
        let bad = vec![vec![Value::Int(1)], vec![Value::Int(2), Value::Int(3)]];
        assert!(ValueBatch::from_rows(&bad).is_err());
    }

    #[test]
    fn clear_keeps_arity() {
        let mut b = ValueBatch::from_rows(&[vec![Value::Int(1)]]).unwrap();
        b.clear();
        assert_eq!(b.arity(), 1);
        assert!(b.is_empty());
        b.push_row(&[Value::Int(2)]).unwrap();
        assert_eq!(b.row(0), vec![Value::Int(2)]);
    }

    #[test]
    fn batch_error_display() {
        let e = BatchError::new(3, JaguarError::Udf("boom".into()));
        assert!(e.to_string().contains("batch row 3"));
        let b = BatchError::before_any(JaguarError::Udf("dead".into()));
        assert_eq!(b.row, 0);
    }
}
