//! The VM byte-array heap.
//!
//! Byte arrays are the only reference type in JSM. They live in an arena
//! owned by the interpreter instance; VM code holds opaque indices. The
//! arena charges every allocation against the invocation's memory budget —
//! the mechanism 1998 JVMs lacked (§6.2: "Memory usage, however, cannot
//! currently be monitored: the JVM does not maintain any information on the
//! memory usage of individual UDFs"). Here every UDF invocation gets a
//! fresh arena, so usage is tracked *per UDF* exactly as the paper says a
//! database needs.
//!
//! No deallocation: an invocation's garbage is reclaimed wholesale when the
//! arena drops — the "allocate in a pool, reclaim at end of query" style
//! the paper notes commercial servers use, applied per invocation.

use jaguar_common::error::{JaguarError, Result, VmTrap};

/// Opaque handle to a byte array in an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BytesRef(pub(crate) u32);

/// A per-invocation byte-array heap with memory accounting.
#[derive(Debug, Default)]
pub struct Arena {
    objects: Vec<Vec<u8>>,
    allocated: usize,
    limit: Option<usize>,
}

impl Arena {
    pub fn new(limit: Option<usize>) -> Arena {
        Arena {
            objects: Vec::new(),
            allocated: 0,
            limit,
        }
    }

    /// Bytes allocated so far (monotonic; arenas never free individually).
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Reclaim everything, keeping the limit (and the object vector's
    /// capacity) for the next invocation. Batched execution resets one
    /// arena per row instead of constructing a fresh one, so the
    /// accounting stays per-invocation while the allocation is amortized.
    pub fn reset(&mut self) {
        self.objects.clear();
        self.allocated = 0;
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Allocate a zeroed array. Fails (containably) if the invocation's
    /// memory budget would be exceeded.
    pub fn alloc_zeroed(&mut self, len: usize) -> Result<BytesRef> {
        self.charge(len)?;
        self.objects.push(vec![0u8; len]);
        Ok(BytesRef((self.objects.len() - 1) as u32))
    }

    /// Allocate an array initialised from `data` (argument marshalling —
    /// this copy is the "mapping large bytearrays to Java" cost of Fig. 5).
    pub fn alloc_from(&mut self, data: &[u8]) -> Result<BytesRef> {
        self.charge(data.len())?;
        self.objects.push(data.to_vec());
        Ok(BytesRef((self.objects.len() - 1) as u32))
    }

    fn charge(&mut self, len: usize) -> Result<()> {
        let new_total = self.allocated.saturating_add(len);
        if let Some(limit) = self.limit {
            if new_total > limit {
                return Err(JaguarError::ResourceLimit(format!(
                    "memory: {new_total} bytes requested, limit {limit}"
                )));
            }
        }
        if self.objects.len() >= u32::MAX as usize {
            return Err(JaguarError::ResourceLimit("object count".into()));
        }
        self.allocated = new_total;
        Ok(())
    }

    /// Length of an array.
    pub fn len(&self, r: BytesRef) -> Result<usize> {
        Ok(self.get(r)?.len())
    }

    /// Read one byte, **bounds-checked** — the per-access cost that makes
    /// Java slower on data-dependent UDFs (Figure 7).
    #[inline]
    pub fn load(&self, r: BytesRef, index: i64) -> Result<u8> {
        let obj = self.get(r)?;
        if index < 0 || index as usize >= obj.len() {
            return Err(JaguarError::VmTrap(VmTrap::Bounds {
                index,
                len: obj.len(),
            }));
        }
        Ok(obj[index as usize])
    }

    /// Write one byte, **bounds-checked**.
    #[inline]
    pub fn store(&mut self, r: BytesRef, index: i64, value: u8) -> Result<()> {
        let obj = self.get_mut(r)?;
        if index < 0 || index as usize >= obj.len() {
            let len = obj.len();
            return Err(JaguarError::VmTrap(VmTrap::Bounds { index, len }));
        }
        obj[index as usize] = value;
        Ok(())
    }

    /// Borrow the whole array (host-side access for result marshalling).
    pub fn get(&self, r: BytesRef) -> Result<&[u8]> {
        self.objects
            .get(r.0 as usize)
            .map(|v| v.as_slice())
            .ok_or(JaguarError::VmTrap(VmTrap::Type(
                "dangling bytes reference",
            )))
    }

    fn get_mut(&mut self, r: BytesRef) -> Result<&mut Vec<u8>> {
        self.objects
            .get_mut(r.0 as usize)
            .ok_or(JaguarError::VmTrap(VmTrap::Type(
                "dangling bytes reference",
            )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store() {
        let mut a = Arena::new(None);
        let r = a.alloc_zeroed(4).unwrap();
        assert_eq!(a.len(r).unwrap(), 4);
        assert_eq!(a.load(r, 0).unwrap(), 0);
        a.store(r, 3, 200).unwrap();
        assert_eq!(a.load(r, 3).unwrap(), 200);
    }

    #[test]
    fn bounds_checked() {
        let mut a = Arena::new(None);
        let r = a.alloc_zeroed(4).unwrap();
        assert!(matches!(
            a.load(r, 4),
            Err(JaguarError::VmTrap(VmTrap::Bounds { index: 4, len: 4 }))
        ));
        assert!(a.load(r, -1).is_err());
        assert!(a.store(r, 100, 1).is_err());
    }

    #[test]
    fn memory_limit_enforced() {
        let mut a = Arena::new(Some(100));
        a.alloc_zeroed(60).unwrap();
        a.alloc_zeroed(40).unwrap();
        let e = a.alloc_zeroed(1).unwrap_err();
        assert!(matches!(e, JaguarError::ResourceLimit(_)));
        assert_eq!(a.allocated(), 100);
    }

    #[test]
    fn alloc_from_copies() {
        let mut a = Arena::new(None);
        let data = vec![1, 2, 3];
        let r = a.alloc_from(&data).unwrap();
        assert_eq!(a.get(r).unwrap(), &[1, 2, 3]);
        assert_eq!(a.allocated(), 3);
    }

    #[test]
    fn dangling_ref_is_trap() {
        let a = Arena::new(None);
        assert!(a.get(BytesRef(9)).is_err());
    }

    #[test]
    fn zero_length_arrays_fine() {
        let mut a = Arena::new(Some(10));
        let r = a.alloc_zeroed(0).unwrap();
        assert_eq!(a.len(r).unwrap(), 0);
        assert!(a.load(r, 0).is_err());
    }
}
