//! A textual assembler and disassembler for JSM modules.
//!
//! The normal authoring path is the JagScript compiler (`jaguar-lang`),
//! but an assembler earns its keep three ways: hand-written UDFs in tests,
//! human-inspectable disassembly when debugging verifier rejections, and a
//! stable second front-end exercising the module format.
//!
//! Syntax (one construct per line; `;` starts a comment):
//!
//! ```text
//! module my.udf
//! import callback(i64) -> i64
//!
//! func main(bytes, i64) -> i64
//! locals i64, i64
//!   consti 0
//!   store 2
//! top:
//!   load 2
//!   load 1
//!   lti
//!   jmpifnot done
//!   ...
//!   jmp top
//! done:
//!   load 3
//!   ret
//! end
//! ```
//!
//! Labels (`name:`) may be used anywhere a numeric jump target is allowed.

use std::collections::HashMap;

use jaguar_common::error::{JaguarError, Result};

use crate::isa::{Insn, VType};
use crate::module::{FuncSig, Function, HostImport, Module};

/// Assemble module source text into a [`Module`] (unverified).
pub fn assemble(src: &str) -> Result<Module> {
    let mut module = Module::new("anonymous");
    let mut saw_module_decl = false;
    let mut cur: Option<FnBuilder> = None;

    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| JaguarError::Parse(format!("line {}: {msg}", lineno + 1));

        if let Some(rest) = line.strip_prefix("module ") {
            if saw_module_decl {
                return Err(err("duplicate module declaration".into()));
            }
            saw_module_decl = true;
            module.name = rest.trim().to_string();
        } else if let Some(rest) = line.strip_prefix("import ") {
            if cur.is_some() {
                return Err(err("import must appear before functions".into()));
            }
            let (name, sig) = parse_header(rest).map_err(|e| err(e.to_string()))?;
            module.imports.push(HostImport { name, sig });
        } else if let Some(rest) = line.strip_prefix("func ") {
            if cur.is_some() {
                return Err(err("nested func (missing 'end'?)".into()));
            }
            let (name, sig) = parse_header(rest).map_err(|e| err(e.to_string()))?;
            cur = Some(FnBuilder::new(name, sig));
        } else if let Some(rest) = line.strip_prefix("locals ") {
            let b = cur
                .as_mut()
                .ok_or_else(|| err("'locals' outside func".into()))?;
            if !b.items.is_empty() || !b.local_types.is_empty() {
                return Err(err("'locals' must come first in a func".into()));
            }
            for part in rest.split(',') {
                b.local_types
                    .push(VType::from_name(part.trim()).map_err(|e| err(e.to_string()))?);
            }
        } else if line == "end" {
            let b = cur.take().ok_or_else(|| err("'end' outside func".into()))?;
            module.functions.push(b.finish()?);
        } else if let Some(label) = line.strip_suffix(':') {
            let b = cur
                .as_mut()
                .ok_or_else(|| err("label outside func".into()))?;
            let label = label.trim();
            if !is_ident(label) {
                return Err(err(format!("invalid label '{label}'")));
            }
            if b.labels.contains_key(label) {
                return Err(err(format!("duplicate label '{label}'")));
            }
            b.labels.insert(label.to_string(), b.pc());
        } else {
            let b = cur
                .as_mut()
                .ok_or_else(|| err(format!("instruction '{line}' outside func")))?;
            b.items
                .push(parse_insn(line).map_err(|e| err(e.to_string()))?);
        }
    }
    if cur.is_some() {
        return Err(JaguarError::Parse(
            "unterminated func (missing 'end')".into(),
        ));
    }
    Ok(module)
}

/// Disassemble a module back to assembler text (labels synthesised for
/// jump targets). `assemble(disassemble(m))` reproduces `m`.
pub fn disassemble(module: &Module) -> String {
    let mut out = String::new();
    out.push_str(&format!("module {}\n", module.name));
    for imp in &module.imports {
        out.push_str(&format!("import {}\n", fmt_header(&imp.name, &imp.sig)));
    }
    for f in &module.functions {
        out.push('\n');
        out.push_str(&format!("func {}\n", fmt_header(&f.name, &f.sig)));
        if !f.local_types.is_empty() {
            let list: Vec<_> = f.local_types.iter().map(|t| t.name()).collect();
            out.push_str(&format!("locals {}\n", list.join(", ")));
        }
        // Collect jump targets so we can emit labels.
        let mut targets: Vec<u32> = f
            .code
            .iter()
            .filter_map(|i| match i {
                Insn::Jmp(t) | Insn::JmpIf(t) | Insn::JmpIfNot(t) => Some(*t),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let label_of = |t: u32| format!("L{t}");
        for (pc, insn) in f.code.iter().enumerate() {
            if targets.binary_search(&(pc as u32)).is_ok() {
                out.push_str(&format!("{}:\n", label_of(pc as u32)));
            }
            let line = match insn {
                Insn::ConstI(v) => format!("consti {v}"),
                Insn::ConstF(v) => format!("constf {v:?}"),
                Insn::Load(i) => format!("load {i}"),
                Insn::Store(i) => format!("store {i}"),
                Insn::Jmp(t) => format!("jmp {}", label_of(*t)),
                Insn::JmpIf(t) => format!("jmpif {}", label_of(*t)),
                Insn::JmpIfNot(t) => format!("jmpifnot {}", label_of(*t)),
                Insn::Call(t) => format!("call {t}"),
                Insn::HostCall(t) => format!("hostcall {t}"),
                Insn::Trap(c) => format!("trap {c}"),
                other => other.mnemonic().to_string(),
            };
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
        // Emit trailing labels that point one past the end (not produced by
        // the assembler, but keep the disassembly total).
        out.push_str("end\n");
    }
    out
}

// ---------------------------------------------------------------------

struct FnBuilder {
    name: String,
    sig: FuncSig,
    local_types: Vec<VType>,
    items: Vec<AsmItem>,
    labels: HashMap<String, u32>,
}

enum AsmItem {
    Done(Insn),
    /// A jump whose target label is resolved at `finish` time.
    JumpTo {
        kind: JumpKind,
        label: String,
    },
}

enum JumpKind {
    Jmp,
    JmpIf,
    JmpIfNot,
}

impl FnBuilder {
    fn new(name: String, sig: FuncSig) -> FnBuilder {
        FnBuilder {
            name,
            sig,
            local_types: Vec::new(),
            items: Vec::new(),
            labels: HashMap::new(),
        }
    }

    fn pc(&self) -> u32 {
        self.items.len() as u32
    }

    fn finish(self) -> Result<Function> {
        let mut code = Vec::with_capacity(self.items.len());
        for item in self.items {
            code.push(match item {
                AsmItem::Done(i) => i,
                AsmItem::JumpTo { kind, label } => {
                    let t = *self.labels.get(&label).ok_or_else(|| {
                        JaguarError::Parse(format!(
                            "function '{}': undefined label '{label}'",
                            self.name
                        ))
                    })?;
                    match kind {
                        JumpKind::Jmp => Insn::Jmp(t),
                        JumpKind::JmpIf => Insn::JmpIf(t),
                        JumpKind::JmpIfNot => Insn::JmpIfNot(t),
                    }
                }
            });
        }
        Ok(Function {
            name: self.name,
            sig: self.sig,
            local_types: self.local_types,
            code,
        })
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().expect("non-empty").is_ascii_digit()
}

/// Parse `name(ty, ty) -> ty` or `name()`.
fn parse_header(s: &str) -> Result<(String, FuncSig)> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| JaguarError::Parse(format!("missing '(' in '{s}'")))?;
    let close = s
        .find(')')
        .ok_or_else(|| JaguarError::Parse(format!("missing ')' in '{s}'")))?;
    let name = s[..open].trim().to_string();
    if !is_ident(&name) {
        return Err(JaguarError::Parse(format!("invalid name '{name}'")));
    }
    let params_src = s[open + 1..close].trim();
    let mut params = Vec::new();
    if !params_src.is_empty() {
        for p in params_src.split(',') {
            params.push(VType::from_name(p.trim())?);
        }
    }
    let rest = s[close + 1..].trim();
    let ret = if rest.is_empty() {
        None
    } else if let Some(t) = rest.strip_prefix("->") {
        Some(VType::from_name(t.trim())?)
    } else {
        return Err(JaguarError::Parse(format!("unexpected '{rest}'")));
    };
    Ok((name, FuncSig { params, ret }))
}

fn fmt_header(name: &str, sig: &FuncSig) -> String {
    let params: Vec<_> = sig.params.iter().map(|t| t.name()).collect();
    match sig.ret {
        Some(r) => format!("{name}({}) -> {}", params.join(", "), r.name()),
        None => format!("{name}({})", params.join(", ")),
    }
}

fn parse_insn(line: &str) -> Result<AsmItem> {
    let mut parts = line.split_whitespace();
    let mnem = parts.next().expect("line is non-empty");
    let arg = parts.next();
    if parts.next().is_some() {
        return Err(JaguarError::Parse(format!("trailing tokens in '{line}'")));
    }
    let need = |what: &str| -> Result<&str> {
        arg.ok_or_else(|| JaguarError::Parse(format!("'{mnem}' needs {what}")))
    };
    let no_arg = |insn: Insn| -> Result<AsmItem> {
        if arg.is_some() {
            Err(JaguarError::Parse(format!("'{mnem}' takes no operand")))
        } else {
            Ok(AsmItem::Done(insn))
        }
    };
    let jump = |kind: JumpKind| -> Result<AsmItem> {
        let t = need("a label or index")?;
        if let Ok(idx) = t.parse::<u32>() {
            Ok(AsmItem::Done(match kind {
                JumpKind::Jmp => Insn::Jmp(idx),
                JumpKind::JmpIf => Insn::JmpIf(idx),
                JumpKind::JmpIfNot => Insn::JmpIfNot(idx),
            }))
        } else {
            Ok(AsmItem::JumpTo {
                kind,
                label: t.to_string(),
            })
        }
    };

    match mnem {
        "consti" => Ok(AsmItem::Done(Insn::ConstI(
            need("an integer")?
                .parse::<i64>()
                .map_err(|e| JaguarError::Parse(format!("bad integer: {e}")))?,
        ))),
        "constf" => Ok(AsmItem::Done(Insn::ConstF(
            need("a float")?
                .parse::<f64>()
                .map_err(|e| JaguarError::Parse(format!("bad float: {e}")))?,
        ))),
        "load" => Ok(AsmItem::Done(Insn::Load(parse_u16(need("a slot")?)?))),
        "store" => Ok(AsmItem::Done(Insn::Store(parse_u16(need("a slot")?)?))),
        "pop" => no_arg(Insn::Pop),
        "dup" => no_arg(Insn::Dup),
        "swap" => no_arg(Insn::Swap),
        "addi" => no_arg(Insn::AddI),
        "subi" => no_arg(Insn::SubI),
        "muli" => no_arg(Insn::MulI),
        "divi" => no_arg(Insn::DivI),
        "remi" => no_arg(Insn::RemI),
        "negi" => no_arg(Insn::NegI),
        "addf" => no_arg(Insn::AddF),
        "subf" => no_arg(Insn::SubF),
        "mulf" => no_arg(Insn::MulF),
        "divf" => no_arg(Insn::DivF),
        "negf" => no_arg(Insn::NegF),
        "and" => no_arg(Insn::And),
        "or" => no_arg(Insn::Or),
        "xor" => no_arg(Insn::Xor),
        "shl" => no_arg(Insn::Shl),
        "shr" => no_arg(Insn::Shr),
        "not" => no_arg(Insn::Not),
        "i2f" => no_arg(Insn::I2F),
        "f2i" => no_arg(Insn::F2I),
        "eqi" => no_arg(Insn::EqI),
        "lti" => no_arg(Insn::LtI),
        "lei" => no_arg(Insn::LeI),
        "eqf" => no_arg(Insn::EqF),
        "ltf" => no_arg(Insn::LtF),
        "lef" => no_arg(Insn::LeF),
        "jmp" => jump(JumpKind::Jmp),
        "jmpif" => jump(JumpKind::JmpIf),
        "jmpifnot" => jump(JumpKind::JmpIfNot),
        "call" => Ok(AsmItem::Done(Insn::Call(
            need("a function index")?
                .parse::<u32>()
                .map_err(|e| JaguarError::Parse(format!("bad index: {e}")))?,
        ))),
        "hostcall" => Ok(AsmItem::Done(Insn::HostCall(parse_u16(need(
            "an import index",
        )?)?))),
        "ret" => no_arg(Insn::Ret),
        "newarr" => no_arg(Insn::NewArr),
        "aload" => no_arg(Insn::ALoad),
        "astore" => no_arg(Insn::AStore),
        "alen" => no_arg(Insn::ALen),
        "trap" => Ok(AsmItem::Done(Insn::Trap(
            need("a code")?
                .parse::<u32>()
                .map_err(|e| JaguarError::Parse(format!("bad code: {e}")))?,
        ))),
        other => Err(JaguarError::Parse(format!("unknown mnemonic '{other}'"))),
    }
}

fn parse_u16(s: &str) -> Result<u16> {
    s.parse::<u16>()
        .map_err(|e| JaguarError::Parse(format!("bad u16: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ArgValue, ExecMode, Interpreter, NoHost};
    use crate::resources::ResourceLimits;
    use std::sync::Arc;

    const SUM_BYTES: &str = r#"
; sum of all bytes in the argument array
module test.sum
func main(bytes) -> i64
locals i64, i64            ; i, acc
  consti 0
  store 1
  consti 0
  store 2
top:
  load 1
  load 0
  alen
  lti
  jmpifnot done
  load 2
  load 0
  load 1
  aload
  addi
  store 2
  load 1
  consti 1
  addi
  store 1
  jmp top
done:
  load 2
  ret
end
"#;

    #[test]
    fn assembles_verifies_and_runs() {
        let m = assemble(SUM_BYTES).unwrap();
        assert_eq!(m.name, "test.sum");
        let vm = Arc::new(m.verify().unwrap());
        let interp = Interpreter::new(vm, ResourceLimits::default(), ExecMode::Jit);
        let (ret, _, _) = interp
            .invoke("main", &[ArgValue::Bytes(vec![10, 20, 30])], &mut NoHost)
            .unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 60);
    }

    #[test]
    fn disassemble_assemble_roundtrip() {
        let m = assemble(SUM_BYTES).unwrap();
        let text = disassemble(&m);
        let m2 = assemble(&text).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn imports_parsed() {
        let src = "module m\nimport callback(i64, bytes) -> i64\nfunc f() -> i64\n  consti 0\n  ret\nend\n";
        let m = assemble(src).unwrap();
        assert_eq!(m.imports.len(), 1);
        assert_eq!(m.imports[0].name, "callback");
        assert_eq!(m.imports[0].sig.params, vec![VType::I64, VType::Bytes]);
        assert_eq!(m.imports[0].sig.ret, Some(VType::I64));
    }

    #[test]
    fn undefined_label_rejected() {
        let src = "func f() -> i64\n  jmp nowhere\n  consti 0\n  ret\nend\n";
        let e = assemble(src).unwrap_err();
        assert!(e.to_string().contains("undefined label"), "{e}");
    }

    #[test]
    fn duplicate_label_rejected() {
        let src = "func f()\nx:\nx:\n  ret\nend\n";
        let e = assemble(src).unwrap_err();
        assert!(e.to_string().contains("duplicate label"), "{e}");
    }

    #[test]
    fn unterminated_func_rejected() {
        let e = assemble("func f()\n  ret\n").unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("func f()\n  fly 3\n  ret\nend").unwrap_err();
        assert!(e.to_string().contains("unknown mnemonic"), "{e}");
    }

    #[test]
    fn bad_operands_rejected() {
        assert!(assemble("func f()\n  consti\n  ret\nend").is_err());
        assert!(assemble("func f()\n  pop 3\n  ret\nend").is_err());
        assert!(assemble("func f()\n  consti 1 2\n  ret\nend").is_err());
        assert!(assemble("func f()\n  load 99999999\n  ret\nend").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n; leading comment\nmodule m ; trailing? no, whole-line\nfunc f()\n  ret ; done\nend\n";
        let m = assemble(src).unwrap();
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn numeric_jump_targets_accepted() {
        let src = "func f() -> i64\n  jmp 1\n  consti 0\n  ret\nend";
        // jmp 1 lands on consti — fine structurally; also verifies.
        let m = assemble(src).unwrap();
        m.verify().unwrap();
    }
}
