//! The JSM execution engine.
//!
//! Two execution modes model the two JVMs of the era:
//!
//! * [`ExecMode::Baseline`] re-decodes each instruction from the encoded
//!   byte stream on every execution — a classic bytecode interpreter,
//! * [`ExecMode::Jit`] executes pre-decoded instructions with direct
//!   dispatch — modelling the JIT-compiled execution of the JVM the paper
//!   used ("In all cases, the JVM included a JIT compiler"). The A2
//!   ablation bench quantifies the difference.
//!
//! In **both** modes every array access is bounds-checked ([`Arena`]),
//! fuel and memory budgets are enforced ([`ResourceLimits`]), and host
//! calls pass through the security manager — those are the *semantic*
//! costs of safety the paper measures; the mode only changes dispatch
//! overhead.
//!
//! The interpreter only accepts a [`VerifiedModule`], so type errors at
//! runtime indicate an interpreter bug, not a UDF bug; they still surface
//! as containable traps rather than panics (defence in depth).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use jaguar_common::cancel::CancelToken;
use jaguar_common::error::{JaguarError, Result, VmTrap};

use crate::arena::{Arena, BytesRef};
use crate::isa::{Insn, VType};
use crate::module::VerifiedModule;
use crate::resources::{ResourceLimits, ResourceUsage};
use crate::security::{Permission, PermissionSet};
use crate::tier::{self, ModulePlan};

/// A runtime value on the operand stack or in a local slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VmValue {
    I64(i64),
    F64(f64),
    Bytes(BytesRef),
}

impl VmValue {
    pub fn vtype(&self) -> VType {
        match self {
            VmValue::I64(_) => VType::I64,
            VmValue::F64(_) => VType::F64,
            VmValue::Bytes(_) => VType::Bytes,
        }
    }

    /// Extract the integer, or a type trap.
    pub fn as_i64(self) -> Result<i64> {
        match self {
            VmValue::I64(v) => Ok(v),
            _ => Err(VmTrap::Type("expected i64").into()),
        }
    }

    /// Extract the float, or a type trap.
    pub fn as_f64(self) -> Result<f64> {
        match self {
            VmValue::F64(v) => Ok(v),
            _ => Err(VmTrap::Type("expected f64").into()),
        }
    }

    /// Extract the bytes reference, or a type trap.
    pub fn as_bytes(self) -> Result<BytesRef> {
        match self {
            VmValue::Bytes(r) => Ok(r),
            _ => Err(VmTrap::Type("expected bytes").into()),
        }
    }
}

/// The host interface — JSM's "native methods" (§4.2: callbacks from the
/// UDF to the database server go through this trait).
pub trait HostEnv {
    /// Perform the named host call. `args` match the declared import
    /// signature (the verifier guarantees it). Byte-array arguments and
    /// results live in `arena`.
    fn host_call(
        &mut self,
        name: &str,
        args: &[VmValue],
        arena: &mut Arena,
    ) -> Result<Option<VmValue>>;
}

/// A host environment that rejects every call — for pure-compute UDFs.
pub struct NoHost;

impl HostEnv for NoHost {
    fn host_call(&mut self, name: &str, _: &[VmValue], _: &mut Arena) -> Result<Option<VmValue>> {
        Err(JaguarError::VmTrap(VmTrap::Host(format!(
            "no host environment provides '{name}'"
        ))))
    }
}

/// Dispatch strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Decode each instruction from bytes on every execution.
    Baseline,
    /// Execute pre-decoded instructions with **superinstruction fusion**:
    /// hot multi-instruction patterns (compare-and-branch, local
    /// increment, array-load-accumulate) collapse into single dispatch
    /// steps, the closest an interpreter gets to JIT-compiled loops.
    /// Fuel accounting still charges the original instruction count.
    Jit,
}

/// Per-function pre-encoded form used by baseline mode: the raw bytes and
/// the byte offset of each instruction (jump targets are insn indices).
pub(crate) struct EncodedFn {
    bytes: Vec<u8>,
    offsets: Vec<u32>,
}

impl EncodedFn {
    pub(crate) fn of(f: &crate::module::Function) -> EncodedFn {
        let mut bytes = Vec::new();
        let mut offsets = Vec::with_capacity(f.code.len());
        for insn in &f.code {
            offsets.push(bytes.len() as u32);
            insn.encode(&mut bytes);
        }
        EncodedFn { bytes, offsets }
    }
}

struct Frame {
    func: u32,
    pc: usize,
    locals: Vec<VmValue>,
    stack_base: usize,
}

/// Comparison selector for fused compare-and-branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpKind {
    Lt,
    Le,
    Eq,
}

/// One step of the fused (JIT-mode) execution plan. `len` records how many
/// original instructions the step covers, for fuel accounting and for the
/// sequential-advance amount.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FusedOp {
    /// A single ordinary instruction.
    Std(Insn),
    /// Interior of a fused region; unreachable (the fuser refuses to fuse
    /// across jump targets), kept as a defensive trap.
    Interior,
    /// `Load s; ConstI k; AddI|SubI; Store s` → `s += delta`.
    IncLocal { slot: u16, delta: i64, len: u8 },
    /// `Load a; Load b; LtI|LeI|EqI; JmpIfNot t`.
    CmpLocalsJmpIfNot {
        a: u16,
        b: u16,
        cmp: CmpKind,
        target: u32,
        len: u8,
    },
    /// `Load acc; Load arr; Load idx; ALoad; AddI; Store acc`
    /// → `acc += arr[idx]` (bounds-checked, as always).
    AccAddALoad {
        acc: u16,
        arr: u16,
        idx: u16,
        len: u8,
    },
    /// `Load acc; ConstI k; MulI; Load b; AddI; Store acc`
    /// → `acc = acc * k + b` (wrapping).
    MulConstAddLocal { acc: u16, k: i64, b: u16, len: u8 },
}

/// Build the fused execution plan for one function. Fusion never spans a
/// jump target: a pattern is only collapsed when control can only enter it
/// at its first instruction.
pub(crate) fn fuse(code: &[Insn]) -> Vec<FusedOp> {
    use std::collections::HashSet;
    let mut targets: HashSet<usize> = HashSet::new();
    for insn in code {
        match insn {
            Insn::Jmp(t) | Insn::JmpIf(t) | Insn::JmpIfNot(t) => {
                targets.insert(*t as usize);
            }
            _ => {}
        }
    }
    let clear =
        |from: usize, len: usize| -> bool { (from + 1..from + len).all(|p| !targets.contains(&p)) };

    let mut out: Vec<FusedOp> = code.iter().map(|i| FusedOp::Std(*i)).collect();
    let mut i = 0;
    while i < code.len() {
        // Longest patterns first.
        if i + 6 <= code.len() && clear(i, 6) {
            if let (
                Insn::Load(acc),
                Insn::Load(arr),
                Insn::Load(idx),
                Insn::ALoad,
                Insn::AddI,
                Insn::Store(acc2),
            ) = (
                code[i],
                code[i + 1],
                code[i + 2],
                code[i + 3],
                code[i + 4],
                code[i + 5],
            ) {
                if acc == acc2 {
                    out[i] = FusedOp::AccAddALoad {
                        acc,
                        arr,
                        idx,
                        len: 6,
                    };
                    for slot in out.iter_mut().take(i + 6).skip(i + 1) {
                        *slot = FusedOp::Interior;
                    }
                    i += 6;
                    continue;
                }
            }
            if let (
                Insn::Load(acc),
                Insn::ConstI(k),
                Insn::MulI,
                Insn::Load(b),
                Insn::AddI,
                Insn::Store(acc2),
            ) = (
                code[i],
                code[i + 1],
                code[i + 2],
                code[i + 3],
                code[i + 4],
                code[i + 5],
            ) {
                if acc == acc2 {
                    out[i] = FusedOp::MulConstAddLocal { acc, k, b, len: 6 };
                    for slot in out.iter_mut().take(i + 6).skip(i + 1) {
                        *slot = FusedOp::Interior;
                    }
                    i += 6;
                    continue;
                }
            }
        }
        if i + 4 <= code.len() && clear(i, 4) {
            if let (Insn::Load(a), Insn::Load(b), cmp_insn, Insn::JmpIfNot(t)) =
                (code[i], code[i + 1], code[i + 2], code[i + 3])
            {
                let cmp = match cmp_insn {
                    Insn::LtI => Some(CmpKind::Lt),
                    Insn::LeI => Some(CmpKind::Le),
                    Insn::EqI => Some(CmpKind::Eq),
                    _ => None,
                };
                if let Some(cmp) = cmp {
                    out[i] = FusedOp::CmpLocalsJmpIfNot {
                        a,
                        b,
                        cmp,
                        target: t,
                        len: 4,
                    };
                    for slot in out.iter_mut().take(i + 4).skip(i + 1) {
                        *slot = FusedOp::Interior;
                    }
                    i += 4;
                    continue;
                }
            }
            if let (Insn::Load(slot_a), Insn::ConstI(k), arith, Insn::Store(slot_b)) =
                (code[i], code[i + 1], code[i + 2], code[i + 3])
            {
                let delta = match arith {
                    Insn::AddI => Some(k),
                    Insn::SubI => Some(k.wrapping_neg()),
                    _ => None,
                };
                if let (Some(delta), true) = (delta, slot_a == slot_b) {
                    out[i] = FusedOp::IncLocal {
                        slot: slot_a,
                        delta,
                        len: 4,
                    };
                    for slot in out.iter_mut().take(i + 4).skip(i + 1) {
                        *slot = FusedOp::Interior;
                    }
                    i += 4;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// An execution engine bound to one verified module.
///
/// The interpreter itself is stateless across invocations: each
/// [`Interpreter::invoke`] gets a fresh arena, fuel budget, and frame
/// stack, so one UDF invocation cannot leak state into the next.
pub struct Interpreter {
    module: Arc<VerifiedModule>,
    limits: ResourceLimits,
    mode: ExecMode,
    security: Option<Arc<PermissionSet>>,
    /// Shared per-module execution plans (encoded/fused/compiled) and
    /// hotness counters — one [`ModulePlan`] per live module `Arc`, so
    /// every statement and pooled worker over the same module reuses the
    /// same decode/fuse/compile work.
    plan: Arc<ModulePlan>,
    /// Interpreted invocations of a function before it is promoted to the
    /// compiled tier (JIT mode only). `None` disables tier-up entirely;
    /// `Some(0)` compiles on first call.
    tier_up_after: Option<u64>,
    /// Statement-lifecycle token, polled every
    /// [`CANCEL_CHECK_INTERVAL`] instructions alongside the fuel check.
    /// `None` (the default) skips the poll entirely.
    cancel: Option<CancelToken>,
}

/// How many VM instructions may retire between cooperative cancellation
/// checks. Coarse enough that the `Instant::now()` deadline comparison is
/// amortised to noise, fine enough that an infinite loop is abandoned
/// within microseconds of the deadline.
pub const CANCEL_CHECK_INTERVAL: u64 = 65_536;

impl Interpreter {
    pub fn new(module: Arc<VerifiedModule>, limits: ResourceLimits, mode: ExecMode) -> Interpreter {
        let plan = tier::plan_for(&module);
        // Pre-warm the plan this mode executes from, so the hot path is a
        // plain load. Both are built at most once per module, however many
        // interpreters are instantiated over it.
        match mode {
            ExecMode::Jit => {
                plan.fused(&module);
            }
            ExecMode::Baseline => {
                plan.encoded(&module);
            }
        }
        Interpreter {
            module,
            limits,
            mode,
            security: None,
            plan,
            tier_up_after: None,
            cancel: None,
        }
    }

    /// Enable tier-up: after `n` interpreted invocations a function is
    /// promoted to the compiled tier (JIT mode only; `Some(0)` compiles
    /// on first call, `None` — the default — never promotes).
    pub fn with_tier_up(mut self, tier_up_after: Option<u64>) -> Interpreter {
        self.tier_up_after = tier_up_after;
        self
    }

    /// Attach a security manager; host calls will be checked against it.
    pub fn with_security(mut self, perms: Arc<PermissionSet>) -> Interpreter {
        self.security = Some(perms);
        self
    }

    /// Attach (or replace) the statement lifecycle token. Execution then
    /// polls the token every [`CANCEL_CHECK_INTERVAL`] instructions and
    /// aborts with `Cancelled` / `Timeout` when it trips — the in-process
    /// equivalent of killing an isolated worker.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    pub fn module(&self) -> &VerifiedModule {
        &self.module
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// The configured tier-up threshold, if any.
    pub fn tier_up_after(&self) -> Option<u64> {
        self.tier_up_after
    }

    /// The shared per-module execution plan (exposed so tests and
    /// diagnostics can observe plan sharing across interpreters).
    pub fn plan(&self) -> &Arc<ModulePlan> {
        &self.plan
    }

    pub(crate) fn security_ref(&self) -> Option<&PermissionSet> {
        self.security.as_deref()
    }

    pub(crate) fn cancel_ref(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Resolve `func` to its function index once, so batched invocation
    /// can skip the per-call name lookup (see [`Interpreter::invoke_resolved`]).
    pub fn resolve(&self, func: &str) -> Result<u32> {
        self.module
            .find_function(func)
            .ok_or_else(|| JaguarError::Udf(format!("no function '{func}' in module")))
    }

    /// Invoke `func` with `args` using a caller-provided arena (the caller
    /// marshals byte-array arguments into the arena first — that copy is
    /// the JNI-style argument mapping cost).
    pub fn invoke_with_arena(
        &self,
        func: &str,
        args: Vec<VmValue>,
        arena: &mut Arena,
        host: &mut dyn HostEnv,
    ) -> Result<(Option<VmValue>, ResourceUsage)> {
        let fidx = self.resolve(func)?;
        self.invoke_resolved(fidx, func, args, arena, host)
    }

    /// Invoke an already-resolved function index. `func` is only used for
    /// error messages, which must stay identical to the per-tuple path's.
    pub fn invoke_resolved(
        &self,
        fidx: u32,
        func: &str,
        args: Vec<VmValue>,
        arena: &mut Arena,
        host: &mut dyn HostEnv,
    ) -> Result<(Option<VmValue>, ResourceUsage)> {
        let f = &self.module.functions()[fidx as usize];
        if args.len() != f.sig.params.len() {
            return Err(JaguarError::Udf(format!(
                "'{func}' expects {} args, got {}",
                f.sig.params.len(),
                args.len()
            )));
        }
        for (i, (a, p)) in args.iter().zip(&f.sig.params).enumerate() {
            if a.vtype() != *p {
                return Err(JaguarError::Udf(format!(
                    "'{func}' arg {i}: expected {}, got {}",
                    p.name(),
                    a.vtype().name()
                )));
            }
        }
        self.run(fidx, args, arena, host)
    }

    /// Convenience wrapper: creates the arena, marshals owned byte-array
    /// arguments into it, runs, and returns the arena for result readback.
    pub fn invoke(
        &self,
        func: &str,
        args: &[ArgValue],
        host: &mut dyn HostEnv,
    ) -> Result<(Option<VmValue>, ResourceUsage, Arena)> {
        let mut arena = Arena::new(self.limits.memory);
        let mut vm_args = Vec::with_capacity(args.len());
        for a in args {
            vm_args.push(match a {
                ArgValue::I64(v) => VmValue::I64(*v),
                ArgValue::F64(v) => VmValue::F64(*v),
                ArgValue::Bytes(data) => VmValue::Bytes(arena.alloc_from(data)?),
            });
        }
        let (ret, usage) = self.invoke_with_arena(func, vm_args, &mut arena, host)?;
        Ok((ret, usage, arena))
    }

    fn run(
        &self,
        entry: u32,
        args: Vec<VmValue>,
        arena: &mut Arena,
        host: &mut dyn HostEnv,
    ) -> Result<(Option<VmValue>, ResourceUsage)> {
        // Tier-up: once a function has been invoked `tier_up_after` times
        // it runs through the compiled tier — if the template compiler
        // covered its whole call graph; otherwise fall back and keep
        // interpreting (observable behaviour is identical either way).
        if self.mode == ExecMode::Jit {
            if let Some(n) = self.tier_up_after {
                let hits = self.plan.hot(entry).fetch_add(1, Ordering::Relaxed) + 1;
                if hits > n {
                    let tm = tier::metrics();
                    if hits == n + 1 {
                        tm.promotions.inc();
                    }
                    let cm = self.plan.compiled(&self.module);
                    if cm.entry_runnable(entry) {
                        tm.compiled_hits.inc();
                        return tier::run_compiled(self, cm, entry, args, arena, host);
                    }
                    tm.fallbacks.inc();
                }
            }
        }

        let funcs = self.module.functions();
        let imports = self.module.imports();

        /// The per-mode instruction source for this run.
        enum CodePlan<'a> {
            Fused(&'a [Vec<FusedOp>]),
            Encoded(&'a [EncodedFn]),
        }
        let code_plan = match self.mode {
            ExecMode::Jit => CodePlan::Fused(self.plan.fused(&self.module)),
            ExecMode::Baseline => CodePlan::Encoded(self.plan.encoded(&self.module)),
        };

        // Default value for uninitialised `bytes` locals: one shared empty
        // array (JSM has no null references).
        let mut empty_ref: Option<BytesRef> = None;
        let mut default_local = |t: VType, arena: &mut Arena| -> Result<VmValue> {
            Ok(match t {
                VType::I64 => VmValue::I64(0),
                VType::F64 => VmValue::F64(0.0),
                VType::Bytes => {
                    if empty_ref.is_none() {
                        empty_ref = Some(arena.alloc_zeroed(0)?);
                    }
                    VmValue::Bytes(empty_ref.expect("just set"))
                }
            })
        };

        let mut usage = ResourceUsage::default();
        let mut fuel = self.limits.fuel;
        let mut cancel_left = CANCEL_CHECK_INTERVAL;

        let make_locals = |fidx: u32,
                           args: Vec<VmValue>,
                           arena: &mut Arena,
                           dl: &mut dyn FnMut(VType, &mut Arena) -> Result<VmValue>|
         -> Result<Vec<VmValue>> {
            let f = &funcs[fidx as usize];
            let mut locals = Vec::with_capacity(f.total_locals());
            locals.extend(args);
            for t in &f.local_types {
                locals.push(dl(*t, arena)?);
            }
            Ok(locals)
        };

        let mut stack: Vec<VmValue> = Vec::with_capacity(64);
        let mut frames: Vec<Frame> = Vec::with_capacity(8);
        frames.push(Frame {
            func: entry,
            pc: 0,
            locals: make_locals(entry, args, arena, &mut default_local)?,
            stack_base: 0,
        });
        usage.max_depth_seen = 1;

        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| JaguarError::VmTrap(VmTrap::Stack("underflow")))?
            };
        }

        loop {
            let frame = frames.last_mut().expect("at least one frame");
            let op = match code_plan {
                CodePlan::Fused(plan) => plan[frame.func as usize][frame.pc],
                CodePlan::Encoded(plan) => {
                    let enc = &plan[frame.func as usize];
                    let off = enc.offsets[frame.pc] as usize;
                    let mut r = &enc.bytes[off..];
                    FusedOp::Std(Insn::decode(&mut r)?)
                }
            };

            // Resource policing: the per-instruction fuel check (A3).
            // Fused steps charge the number of instructions they cover, so
            // fuel semantics are dispatch-strategy independent: check
            // before charging, and on exhaustion report `initial_fuel + 1`
            // — the instruction that could not be afforded — whatever the
            // step width (identical to per-instruction accounting).
            let cost: u64 = match op {
                FusedOp::Std(_) | FusedOp::Interior => 1,
                FusedOp::IncLocal { len, .. }
                | FusedOp::CmpLocalsJmpIfNot { len, .. }
                | FusedOp::AccAddALoad { len, .. }
                | FusedOp::MulConstAddLocal { len, .. } => len as u64,
            };
            if let Some(left) = fuel.as_mut() {
                if *left < cost {
                    usage.instructions += *left + 1;
                    return Err(JaguarError::ResourceLimit(format!(
                        "fuel exhausted after {} instructions",
                        usage.instructions
                    )));
                }
                *left -= cost;
            }
            usage.instructions += cost;
            // Cooperative cancellation: poll the statement token at a
            // coarse cadence so runaway-but-fueled loops still respect
            // deadlines and client cancels.
            if let Some(token) = &self.cancel {
                cancel_left = cancel_left.saturating_sub(cost);
                if cancel_left == 0 {
                    token.check()?;
                    cancel_left = CANCEL_CHECK_INTERVAL;
                }
            }

            let insn = match op {
                FusedOp::Std(insn) => insn,
                FusedOp::Interior => {
                    return Err(JaguarError::VmTrap(VmTrap::Type(
                        "jump into the interior of a fused region",
                    )))
                }
                FusedOp::IncLocal { slot, delta, len } => {
                    let v = frame
                        .locals
                        .get_mut(slot as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(slot)))?;
                    let old = v.as_i64()?;
                    *v = VmValue::I64(old.wrapping_add(delta));
                    frame.pc += len as usize;
                    continue;
                }
                FusedOp::CmpLocalsJmpIfNot {
                    a,
                    b,
                    cmp,
                    target,
                    len,
                } => {
                    let av = frame
                        .locals
                        .get(a as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(a)))?
                        .as_i64()?;
                    let bv = frame
                        .locals
                        .get(b as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(b)))?
                        .as_i64()?;
                    let holds = match cmp {
                        CmpKind::Lt => av < bv,
                        CmpKind::Le => av <= bv,
                        CmpKind::Eq => av == bv,
                    };
                    frame.pc = if holds {
                        frame.pc + len as usize
                    } else {
                        target as usize
                    };
                    continue;
                }
                FusedOp::AccAddALoad { acc, arr, idx, len } => {
                    let r = frame
                        .locals
                        .get(arr as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(arr)))?
                        .as_bytes()?;
                    let i = frame
                        .locals
                        .get(idx as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(idx)))?
                        .as_i64()?;
                    let byte = arena.load(r, i)? as i64;
                    let v = frame
                        .locals
                        .get_mut(acc as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(acc)))?;
                    let old = v.as_i64()?;
                    *v = VmValue::I64(old.wrapping_add(byte));
                    frame.pc += len as usize;
                    continue;
                }
                FusedOp::MulConstAddLocal { acc, k, b, len } => {
                    let bv = frame
                        .locals
                        .get(b as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(b)))?
                        .as_i64()?;
                    let v = frame
                        .locals
                        .get_mut(acc as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(acc)))?;
                    let old = v.as_i64()?;
                    *v = VmValue::I64(old.wrapping_mul(k).wrapping_add(bv));
                    frame.pc += len as usize;
                    continue;
                }
            };

            frame.pc += 1;
            match insn {
                Insn::ConstI(v) => stack.push(VmValue::I64(v)),
                Insn::ConstF(v) => stack.push(VmValue::F64(v)),
                Insn::Load(i) => {
                    let v = *frame
                        .locals
                        .get(i as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(i)))?;
                    stack.push(v);
                }
                Insn::Store(i) => {
                    let v = pop!();
                    let slot = frame
                        .locals
                        .get_mut(i as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadLocal(i)))?;
                    *slot = v;
                }
                Insn::Pop => {
                    pop!();
                }
                Insn::Dup => {
                    let v = *stack
                        .last()
                        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?;
                    stack.push(v);
                }
                Insn::Swap => {
                    let a = pop!();
                    let b = pop!();
                    stack.push(a);
                    stack.push(b);
                }
                Insn::AddI => binop_i(&mut stack, |a, b| Ok(a.wrapping_add(b)))?,
                Insn::SubI => binop_i(&mut stack, |a, b| Ok(a.wrapping_sub(b)))?,
                Insn::MulI => binop_i(&mut stack, |a, b| Ok(a.wrapping_mul(b)))?,
                Insn::DivI => binop_i(&mut stack, |a, b| {
                    if b == 0 {
                        Err(JaguarError::VmTrap(VmTrap::DivideByZero))
                    } else {
                        Ok(a.wrapping_div(b))
                    }
                })?,
                Insn::RemI => binop_i(&mut stack, |a, b| {
                    if b == 0 {
                        Err(JaguarError::VmTrap(VmTrap::DivideByZero))
                    } else {
                        Ok(a.wrapping_rem(b))
                    }
                })?,
                Insn::NegI => {
                    let a = pop!().as_i64()?;
                    stack.push(VmValue::I64(a.wrapping_neg()));
                }
                Insn::AddF => binop_f(&mut stack, |a, b| a + b)?,
                Insn::SubF => binop_f(&mut stack, |a, b| a - b)?,
                Insn::MulF => binop_f(&mut stack, |a, b| a * b)?,
                Insn::DivF => binop_f(&mut stack, |a, b| a / b)?,
                Insn::NegF => {
                    let a = pop!().as_f64()?;
                    stack.push(VmValue::F64(-a));
                }
                Insn::And => binop_i(&mut stack, |a, b| Ok(a & b))?,
                Insn::Or => binop_i(&mut stack, |a, b| Ok(a | b))?,
                Insn::Xor => binop_i(&mut stack, |a, b| Ok(a ^ b))?,
                Insn::Shl => binop_i(&mut stack, |a, b| Ok(a.wrapping_shl(b as u32 & 63)))?,
                Insn::Shr => binop_i(&mut stack, |a, b| Ok(a.wrapping_shr(b as u32 & 63)))?,
                Insn::Not => {
                    let a = pop!().as_i64()?;
                    stack.push(VmValue::I64(!a));
                }
                Insn::I2F => {
                    let a = pop!().as_i64()?;
                    stack.push(VmValue::F64(a as f64));
                }
                Insn::F2I => {
                    let a = pop!().as_f64()?;
                    stack.push(VmValue::I64(a as i64));
                }
                Insn::EqI => cmp_i(&mut stack, |a, b| a == b)?,
                Insn::LtI => cmp_i(&mut stack, |a, b| a < b)?,
                Insn::LeI => cmp_i(&mut stack, |a, b| a <= b)?,
                Insn::EqF => cmp_f(&mut stack, |a, b| a == b)?,
                Insn::LtF => cmp_f(&mut stack, |a, b| a < b)?,
                Insn::LeF => cmp_f(&mut stack, |a, b| a <= b)?,
                Insn::Jmp(t) => frame.pc = t as usize,
                Insn::JmpIf(t) => {
                    if pop!().as_i64()? != 0 {
                        frame.pc = t as usize;
                    }
                }
                Insn::JmpIfNot(t) => {
                    if pop!().as_i64()? == 0 {
                        frame.pc = t as usize;
                    }
                }
                Insn::Call(fidx) => {
                    if frames.len() >= self.limits.max_call_depth {
                        return Err(JaguarError::ResourceLimit(format!(
                            "call depth limit {} exceeded",
                            self.limits.max_call_depth
                        )));
                    }
                    let callee = funcs
                        .get(fidx as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadCall(fidx)))?;
                    let argc = callee.sig.params.len();
                    if stack.len() < argc {
                        return Err(JaguarError::VmTrap(VmTrap::Stack("underflow")));
                    }
                    let args: Vec<VmValue> = stack.split_off(stack.len() - argc);
                    let base = stack.len();
                    frames.push(Frame {
                        func: fidx,
                        pc: 0,
                        locals: make_locals(fidx, args, arena, &mut default_local)?,
                        stack_base: base,
                    });
                    usage.max_depth_seen = usage.max_depth_seen.max(frames.len());
                }
                Insn::HostCall(iidx) => {
                    let import = imports
                        .get(iidx as usize)
                        .ok_or(JaguarError::VmTrap(VmTrap::BadCall(iidx as u32)))?;
                    if let Some(sec) = &self.security {
                        sec.check(&Permission::HostCall(import.name.clone()))?;
                    }
                    let argc = import.sig.params.len();
                    if stack.len() < argc {
                        return Err(JaguarError::VmTrap(VmTrap::Stack("underflow")));
                    }
                    let args: Vec<VmValue> = stack.split_off(stack.len() - argc);
                    usage.host_calls += 1;
                    let ret = host.host_call(&import.name, &args, arena)?;
                    match (ret, import.sig.ret) {
                        (Some(v), Some(t)) if v.vtype() == t => stack.push(v),
                        (None, None) => {}
                        (got, want) => {
                            return Err(JaguarError::VmTrap(VmTrap::Host(format!(
                                "host '{}' returned {:?}, import declares {:?}",
                                import.name,
                                got.map(|v| v.vtype()),
                                want
                            ))))
                        }
                    }
                }
                Insn::Ret => {
                    let f = &funcs[frames.last().expect("frame").func as usize];
                    let ret = match f.sig.ret {
                        Some(_) => Some(pop!()),
                        None => None,
                    };
                    let done = frames.pop().expect("frame");
                    stack.truncate(done.stack_base);
                    match frames.last() {
                        None => {
                            usage.bytes_allocated = arena.allocated();
                            return Ok((ret, usage));
                        }
                        Some(_) => {
                            if let Some(v) = ret {
                                stack.push(v);
                            }
                        }
                    }
                }
                Insn::NewArr => {
                    let len = pop!().as_i64()?;
                    if len < 0 {
                        return Err(JaguarError::VmTrap(VmTrap::Bounds { index: len, len: 0 }));
                    }
                    let r = arena.alloc_zeroed(len as usize)?;
                    stack.push(VmValue::Bytes(r));
                }
                Insn::ALoad => {
                    let idx = pop!().as_i64()?;
                    let r = pop!().as_bytes()?;
                    stack.push(VmValue::I64(arena.load(r, idx)? as i64));
                }
                Insn::AStore => {
                    let val = pop!().as_i64()?;
                    let idx = pop!().as_i64()?;
                    let r = pop!().as_bytes()?;
                    arena.store(r, idx, val as u8)?;
                }
                Insn::ALen => {
                    let r = pop!().as_bytes()?;
                    stack.push(VmValue::I64(arena.len(r)? as i64));
                }
                Insn::Trap(code) => {
                    return Err(JaguarError::VmTrap(VmTrap::Explicit(code)));
                }
            }
        }
    }
}

/// Owned argument form accepted by [`Interpreter::invoke`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    I64(i64),
    F64(f64),
    Bytes(Vec<u8>),
}

#[inline]
fn binop_i(stack: &mut Vec<VmValue>, f: impl Fn(i64, i64) -> Result<i64>) -> Result<()> {
    let b = stack
        .pop()
        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?
        .as_i64()?;
    let a = stack
        .pop()
        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?
        .as_i64()?;
    stack.push(VmValue::I64(f(a, b)?));
    Ok(())
}

#[inline]
fn binop_f(stack: &mut Vec<VmValue>, f: impl Fn(f64, f64) -> f64) -> Result<()> {
    let b = stack
        .pop()
        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?
        .as_f64()?;
    let a = stack
        .pop()
        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?
        .as_f64()?;
    stack.push(VmValue::F64(f(a, b)));
    Ok(())
}

#[inline]
fn cmp_i(stack: &mut Vec<VmValue>, f: impl Fn(i64, i64) -> bool) -> Result<()> {
    binop_i(stack, |a, b| Ok(f(a, b) as i64))
}

#[inline]
fn cmp_f(stack: &mut Vec<VmValue>, f: impl Fn(f64, f64) -> bool) -> Result<()> {
    let b = stack
        .pop()
        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?
        .as_f64()?;
    let a = stack
        .pop()
        .ok_or(JaguarError::VmTrap(VmTrap::Stack("underflow")))?
        .as_f64()?;
    stack.push(VmValue::I64(f(a, b) as i64));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{FuncSig, Function, Module};

    fn build(sig: FuncSig, locals: Vec<VType>, code: Vec<Insn>) -> Arc<VerifiedModule> {
        Arc::new(
            Module {
                name: "t".into(),
                imports: vec![],
                functions: vec![Function {
                    name: "main".into(),
                    sig,
                    local_types: locals,
                    code,
                }],
            }
            .verify()
            .expect("test module must verify"),
        )
    }

    fn run_i64(code: Vec<Insn>) -> Result<i64> {
        run_i64_mode(code, ExecMode::Jit)
    }

    fn run_i64_mode(code: Vec<Insn>, mode: ExecMode) -> Result<i64> {
        let m = build(FuncSig::new(vec![], Some(VType::I64)), vec![], code);
        let interp = Interpreter::new(m, ResourceLimits::default(), mode);
        let (ret, _, _) = interp.invoke("main", &[], &mut NoHost)?;
        ret.expect("declared return").as_i64()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run_i64(vec![
                Insn::ConstI(2),
                Insn::ConstI(3),
                Insn::AddI,
                Insn::Ret
            ])
            .unwrap(),
            5
        );
        assert_eq!(
            run_i64(vec![
                Insn::ConstI(10),
                Insn::ConstI(3),
                Insn::DivI,
                Insn::Ret
            ])
            .unwrap(),
            3
        );
        assert_eq!(
            run_i64(vec![
                Insn::ConstI(10),
                Insn::ConstI(3),
                Insn::RemI,
                Insn::Ret
            ])
            .unwrap(),
            1
        );
        assert_eq!(
            run_i64(vec![Insn::ConstI(7), Insn::NegI, Insn::Ret]).unwrap(),
            -7
        );
    }

    #[test]
    fn both_modes_agree() {
        let code = vec![
            Insn::ConstI(6),
            Insn::ConstI(7),
            Insn::MulI,
            Insn::ConstI(2),
            Insn::SubI,
            Insn::Ret,
        ];
        assert_eq!(
            run_i64_mode(code.clone(), ExecMode::Baseline).unwrap(),
            run_i64_mode(code, ExecMode::Jit).unwrap()
        );
    }

    #[test]
    fn divide_by_zero_traps() {
        let e = run_i64(vec![
            Insn::ConstI(1),
            Insn::ConstI(0),
            Insn::DivI,
            Insn::Ret,
        ])
        .unwrap_err();
        assert!(matches!(e, JaguarError::VmTrap(VmTrap::DivideByZero)));
    }

    #[test]
    fn overflow_wraps_like_java() {
        assert_eq!(
            run_i64(vec![
                Insn::ConstI(i64::MAX),
                Insn::ConstI(1),
                Insn::AddI,
                Insn::Ret
            ])
            .unwrap(),
            i64::MIN
        );
        assert_eq!(
            run_i64(vec![
                Insn::ConstI(i64::MIN),
                Insn::ConstI(-1),
                Insn::DivI,
                Insn::Ret
            ])
            .unwrap(),
            i64::MIN
        );
    }

    #[test]
    fn float_ops_and_conversion() {
        let m = build(
            FuncSig::new(vec![], Some(VType::F64)),
            vec![],
            vec![
                Insn::ConstF(1.5),
                Insn::ConstI(2),
                Insn::I2F,
                Insn::MulF,
                Insn::Ret,
            ],
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let (ret, _, _) = interp.invoke("main", &[], &mut NoHost).unwrap();
        assert_eq!(ret.unwrap().as_f64().unwrap(), 3.0);
    }

    #[test]
    fn loop_sums() {
        // sum 1..=n where n = arg0
        let code = vec![
            Insn::Load(0),      // 0
            Insn::JmpIfNot(10), // 1
            Insn::Load(1),      // 2
            Insn::Load(0),      // 3
            Insn::AddI,         // 4
            Insn::Store(1),     // 5
            Insn::Load(0),      // 6
            Insn::ConstI(1),    // 7
            Insn::SubI,         // 8
            Insn::Store(0),     // 9 → falls through to 0? no: next is 10
            Insn::Load(1),      // 10
            Insn::Ret,          // 11
        ];
        // insert back-jump after Store(0)
        let mut code = code;
        code.insert(10, Insn::Jmp(0));
        // exit target moves from 10 to 11? No: JmpIfNot(10) should point at
        // the Load(1) which is now at index 11.
        code[1] = Insn::JmpIfNot(11);
        let m = build(
            FuncSig::new(vec![VType::I64], Some(VType::I64)),
            vec![VType::I64],
            code,
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let (ret, usage, _) = interp
            .invoke("main", &[ArgValue::I64(100)], &mut NoHost)
            .unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 5050);
        assert!(usage.instructions > 500);
    }

    #[test]
    fn array_roundtrip_and_bounds() {
        // a = newarr(3); a[0]=7; return a[0]+len(a)
        let m = build(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![VType::Bytes],
            vec![
                Insn::ConstI(3),
                Insn::NewArr,
                Insn::Store(0),
                Insn::Load(0),
                Insn::ConstI(0),
                Insn::ConstI(7),
                Insn::AStore,
                Insn::Load(0),
                Insn::ConstI(0),
                Insn::ALoad,
                Insn::Load(0),
                Insn::ALen,
                Insn::AddI,
                Insn::Ret,
            ],
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let (ret, _, _) = interp.invoke("main", &[], &mut NoHost).unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 10);
    }

    #[test]
    fn out_of_bounds_traps() {
        let m = build(
            FuncSig::new(vec![VType::Bytes], Some(VType::I64)),
            vec![],
            vec![Insn::Load(0), Insn::ConstI(99), Insn::ALoad, Insn::Ret],
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let e = interp
            .invoke("main", &[ArgValue::Bytes(vec![0; 10])], &mut NoHost)
            .unwrap_err();
        assert!(matches!(
            e,
            JaguarError::VmTrap(VmTrap::Bounds { index: 99, len: 10 })
        ));
    }

    #[test]
    fn negative_array_length_traps() {
        let e = run_i64(vec![Insn::ConstI(-5), Insn::NewArr, Insn::ALen, Insn::Ret]).unwrap_err();
        assert!(matches!(e, JaguarError::VmTrap(VmTrap::Bounds { .. })));
    }

    #[test]
    fn fuel_exhaustion_stops_infinite_loop() {
        let m = build(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![],
            vec![Insn::Jmp(0), Insn::ConstI(0), Insn::Ret],
        );
        let interp = Interpreter::new(m, ResourceLimits::tight(10_000, 1 << 20), ExecMode::Jit);
        let e = interp.invoke("main", &[], &mut NoHost).unwrap_err();
        assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
        assert!(e.is_containable());
    }

    #[test]
    fn cancelled_token_stops_infinite_loop() {
        let m = build(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![],
            vec![Insn::Jmp(0), Insn::ConstI(0), Insn::Ret],
        );
        // Unlimited fuel: only the pre-cancelled token can stop the loop.
        let mut interp = Interpreter::new(
            m,
            ResourceLimits {
                fuel: None,
                memory: Some(1 << 20),
                max_call_depth: 8,
            },
            ExecMode::Jit,
        );
        let token = CancelToken::unbounded();
        token.cancel();
        interp.set_cancel(token);
        let e = interp.invoke("main", &[], &mut NoHost).unwrap_err();
        assert!(matches!(e, JaguarError::Cancelled(_)), "{e}");
        assert!(e.is_containable());
    }

    #[test]
    fn expired_deadline_stops_infinite_loop() {
        let m = build(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![],
            vec![Insn::Jmp(0), Insn::ConstI(0), Insn::Ret],
        );
        let mut interp = Interpreter::new(
            m,
            ResourceLimits {
                fuel: None,
                memory: Some(1 << 20),
                max_call_depth: 8,
            },
            ExecMode::Jit,
        );
        interp.set_cancel(CancelToken::with_deadline(std::time::Duration::ZERO));
        let e = interp.invoke("main", &[], &mut NoHost).unwrap_err();
        assert!(matches!(e, JaguarError::Timeout(_)), "{e}");
    }

    #[test]
    fn memory_bomb_stopped() {
        // loop allocating 1 MB arrays forever
        let code = vec![
            Insn::ConstI(1 << 20), // 0
            Insn::NewArr,          // 1
            Insn::Pop,             // 2
            Insn::Jmp(0),          // 3
            Insn::ConstI(0),       // 4 (dead)
            Insn::Ret,             // 5 (dead)
        ];
        let m = build(FuncSig::new(vec![], Some(VType::I64)), vec![], code);
        let interp = Interpreter::new(
            m,
            ResourceLimits {
                fuel: None,
                memory: Some(8 << 20),
                max_call_depth: 8,
            },
            ExecMode::Jit,
        );
        let e = interp.invoke("main", &[], &mut NoHost).unwrap_err();
        assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
    }

    #[test]
    fn recursion_depth_limited() {
        // f() { return f(); } — infinite recursion
        let f = Function {
            name: "main".into(),
            sig: FuncSig::new(vec![], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::Call(0), Insn::Ret],
        };
        let m = Arc::new(
            Module {
                name: "t".into(),
                imports: vec![],
                functions: vec![f],
            }
            .verify()
            .unwrap(),
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let e = interp.invoke("main", &[], &mut NoHost).unwrap_err();
        assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
    }

    #[test]
    fn calls_pass_args_and_return() {
        // add(a,b) = a+b ; main() = add(20, 22)
        let add = Function {
            name: "add".into(),
            sig: FuncSig::new(vec![VType::I64, VType::I64], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::Load(0), Insn::Load(1), Insn::AddI, Insn::Ret],
        };
        let main = Function {
            name: "main".into(),
            sig: FuncSig::new(vec![], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::ConstI(20), Insn::ConstI(22), Insn::Call(0), Insn::Ret],
        };
        let m = Arc::new(
            Module {
                name: "t".into(),
                imports: vec![],
                functions: vec![add, main],
            }
            .verify()
            .unwrap(),
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let (ret, usage, _) = interp.invoke("main", &[], &mut NoHost).unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 42);
        assert_eq!(usage.max_depth_seen, 2);
    }

    #[test]
    fn host_call_dispatches_and_counts() {
        struct Doubler;
        impl HostEnv for Doubler {
            fn host_call(
                &mut self,
                name: &str,
                args: &[VmValue],
                _arena: &mut Arena,
            ) -> Result<Option<VmValue>> {
                assert_eq!(name, "double");
                Ok(Some(VmValue::I64(args[0].as_i64()? * 2)))
            }
        }
        let m = Arc::new(
            Module {
                name: "t".into(),
                imports: vec![crate::module::HostImport {
                    name: "double".into(),
                    sig: FuncSig::new(vec![VType::I64], Some(VType::I64)),
                }],
                functions: vec![Function {
                    name: "main".into(),
                    sig: FuncSig::new(vec![], Some(VType::I64)),
                    local_types: vec![],
                    code: vec![Insn::ConstI(21), Insn::HostCall(0), Insn::Ret],
                }],
            }
            .verify()
            .unwrap(),
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let (ret, usage, _) = interp.invoke("main", &[], &mut Doubler).unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 42);
        assert_eq!(usage.host_calls, 1);
    }

    #[test]
    fn security_manager_gates_host_calls() {
        let m = Arc::new(
            Module {
                name: "t".into(),
                imports: vec![crate::module::HostImport {
                    name: "steal_data".into(),
                    sig: FuncSig::new(vec![], Some(VType::I64)),
                }],
                functions: vec![Function {
                    name: "main".into(),
                    sig: FuncSig::new(vec![], Some(VType::I64)),
                    local_types: vec![],
                    code: vec![Insn::HostCall(0), Insn::Ret],
                }],
            }
            .verify()
            .unwrap(),
        );
        struct Never;
        impl HostEnv for Never {
            fn host_call(
                &mut self,
                _: &str,
                _: &[VmValue],
                _: &mut Arena,
            ) -> Result<Option<VmValue>> {
                panic!("security manager must block before the host is reached");
            }
        }
        let perms = Arc::new(PermissionSet::deny_all("udf"));
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit)
            .with_security(Arc::clone(&perms));
        let e = interp.invoke("main", &[], &mut Never).unwrap_err();
        assert!(matches!(e, JaguarError::SecurityViolation(_)), "{e}");
        assert_eq!(perms.violations().len(), 1);
    }

    #[test]
    fn explicit_trap() {
        let e = run_i64(vec![Insn::Trap(7)]).unwrap_err();
        assert!(matches!(e, JaguarError::VmTrap(VmTrap::Explicit(7))));
    }

    #[test]
    fn wrong_arg_count_and_type_rejected() {
        let m = build(
            FuncSig::new(vec![VType::I64], Some(VType::I64)),
            vec![],
            vec![Insn::Load(0), Insn::Ret],
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        assert!(interp.invoke("main", &[], &mut NoHost).is_err());
        assert!(interp
            .invoke("main", &[ArgValue::F64(1.0)], &mut NoHost)
            .is_err());
        assert!(interp.invoke("nope", &[], &mut NoHost).is_err());
    }

    #[test]
    fn bytes_argument_marshalled_and_summable() {
        // sum all bytes of arg0
        let code = vec![
            Insn::ConstI(0), // 0  i = 0 → store 1
            Insn::Store(1),  // 1
            Insn::ConstI(0), // 2  acc = 0 → store 2
            Insn::Store(2),  // 3
            // loop: if i >= len break
            Insn::Load(1),      // 4
            Insn::Load(0),      // 5
            Insn::ALen,         // 6
            Insn::LtI,          // 7  i < len
            Insn::JmpIfNot(19), // 8
            Insn::Load(2),      // 9
            Insn::Load(0),      // 10
            Insn::Load(1),      // 11
            Insn::ALoad,        // 12
            Insn::AddI,         // 13
            Insn::Store(2),     // 14
            Insn::Load(1),      // 15
            Insn::ConstI(1),    // 16
            Insn::AddI,         // 17
            Insn::Store(1),     // 18 → jmp 4 (inserted below)
            Insn::Load(2),      // 19
            Insn::Ret,          // 20
        ];
        let mut code = code;
        code.insert(19, Insn::Jmp(4));
        code[8] = Insn::JmpIfNot(20);
        let m = build(
            FuncSig::new(vec![VType::Bytes], Some(VType::I64)),
            vec![VType::I64, VType::I64],
            code,
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Baseline);
        let (ret, _, _) = interp
            .invoke("main", &[ArgValue::Bytes(vec![1, 2, 3, 4, 5])], &mut NoHost)
            .unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 15);
    }

    #[test]
    fn usage_reports_allocation() {
        let m = build(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![],
            vec![Insn::ConstI(1000), Insn::NewArr, Insn::ALen, Insn::Ret],
        );
        let interp = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let (ret, usage, _) = interp.invoke("main", &[], &mut NoHost).unwrap();
        assert_eq!(ret.unwrap().as_i64().unwrap(), 1000);
        assert!(usage.bytes_allocated >= 1000);
    }
}

#[cfg(test)]
mod fusion_tests {
    use super::*;
    use crate::module::{FuncSig, Function, Module};

    fn sum_loop_module() -> Arc<VerifiedModule> {
        // The canonical hot loop the fuser targets:
        //   while (j < n) { acc = acc + data[j]; j = j + 1; }
        let src = "module m\nfunc main(bytes, i64) -> i64\nlocals i64, i64\n\
                   top:\n  load 2\n  load 1\n  lti\n  jmpifnot done\n\
                   load 3\n  load 0\n  load 2\n  aload\n  addi\n  store 3\n\
                   load 2\n  consti 1\n  addi\n  store 2\n  jmp top\n\
                   done:\n  load 3\n  ret\nend\n";
        let m = crate::asm::assemble(src).unwrap();
        Arc::new(m.verify().unwrap())
    }

    #[test]
    fn fusion_plan_contains_superinstructions() {
        let m = sum_loop_module();
        let plan = fuse(&m.functions()[0].code);
        assert!(plan
            .iter()
            .any(|op| matches!(op, FusedOp::CmpLocalsJmpIfNot { .. })));
        assert!(plan
            .iter()
            .any(|op| matches!(op, FusedOp::AccAddALoad { .. })));
        assert!(plan.iter().any(|op| matches!(op, FusedOp::IncLocal { .. })));
    }

    #[test]
    fn fused_and_baseline_agree_on_results_and_fuel() {
        let m = sum_loop_module();
        let data: Vec<u8> = (0..200u8).collect();
        let args = [
            ArgValue::Bytes(data.clone()),
            ArgValue::I64(data.len() as i64),
        ];
        let jit = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit);
        let base = Interpreter::new(m, ResourceLimits::default(), ExecMode::Baseline);
        let (rj, uj, _) = jit.invoke("main", &args, &mut NoHost).unwrap();
        let (rb, ub, _) = base.invoke("main", &args, &mut NoHost).unwrap();
        assert_eq!(rj.unwrap().as_i64().unwrap(), rb.unwrap().as_i64().unwrap());
        // Fuel accounting is dispatch-independent.
        assert_eq!(uj.instructions, ub.instructions);
    }

    #[test]
    fn fusion_preserves_bounds_checks() {
        // Same loop but the bound is longer than the array: the fused
        // AccAddALoad must still trap.
        let m = sum_loop_module();
        let jit = Interpreter::new(m, ResourceLimits::default(), ExecMode::Jit);
        let e = jit
            .invoke(
                "main",
                &[ArgValue::Bytes(vec![1, 2, 3]), ArgValue::I64(10)],
                &mut NoHost,
            )
            .unwrap_err();
        assert!(matches!(
            e,
            JaguarError::VmTrap(VmTrap::Bounds { index: 3, len: 3 })
        ));
    }

    #[test]
    fn fusion_refuses_to_span_jump_targets() {
        // A jump lands in the middle of what would otherwise fuse as
        // IncLocal; the fuser must keep those instructions unfused.
        let f = Function {
            name: "main".into(),
            sig: FuncSig::new(vec![VType::I64], Some(VType::I64)),
            local_types: vec![],
            code: vec![
                // 0: entry — jump into the middle of the would-be pattern
                Insn::Load(0),  // 0
                Insn::JmpIf(4), // 1 → target 4 is inside [2..6)
                // would-be IncLocal pattern at 2: Load 0; ConstI 1; AddI; Store 0
                Insn::Load(0),   // 2
                Insn::ConstI(1), // 3
                Insn::AddI,      // 4  ← jump target! needs a stack value…
                Insn::Store(0),  // 5
                Insn::Load(0),   // 6
                Insn::Ret,       // 7
            ],
        };
        let module = Module {
            name: "t".into(),
            imports: vec![],
            functions: vec![f],
        };
        // This module does NOT verify (jumping to 4 with wrong stack), but
        // the fuser operates pre-verification in tests: check it directly.
        let plan = fuse(&module.functions[0].code);
        assert!(
            plan.iter().all(|op| matches!(op, FusedOp::Std(_))),
            "no fusion may span the jump target: {plan:?}"
        );
    }

    #[test]
    fn fused_loop_is_faster_than_baseline() {
        // Not a strict benchmark — just a sanity check that fusion pays.
        let m = sum_loop_module();
        let data: Vec<u8> = vec![7; 100_000];
        let args = [
            ArgValue::Bytes(data.clone()),
            ArgValue::I64(data.len() as i64),
        ];
        let jit = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit);
        let base = Interpreter::new(m, ResourceLimits::default(), ExecMode::Baseline);
        let t0 = std::time::Instant::now();
        jit.invoke("main", &args, &mut NoHost).unwrap();
        let jit_time = t0.elapsed();
        let t0 = std::time::Instant::now();
        base.invoke("main", &args, &mut NoHost).unwrap();
        let base_time = t0.elapsed();
        assert!(
            jit_time < base_time,
            "fused {jit_time:?} should beat baseline {base_time:?}"
        );
    }
}
