//! The JSM instruction set and its binary encoding.
//!
//! JSM is a typed stack machine with three value types: 64-bit integers,
//! 64-bit floats, and references to byte arrays. Jump targets are
//! *instruction indices* (not byte offsets), which keeps the verifier's
//! control-flow analysis and the binary decoder honest: a decoded function
//! is a `Vec<Insn>` and every target must index into it.
//!
//! Binary form: one opcode byte followed by little-endian operands of fixed
//! width per opcode. The encoding is stable — it is the portability story:
//! a module assembled at the client is byte-identical at the server.

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::stream::{read_f64, read_i64, read_u16, read_u32, read_u8};
use std::io::Read;

/// The verifier's value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VType {
    /// 64-bit signed integer (also used for booleans: 0 / non-0).
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Reference to a byte array in the VM arena.
    Bytes,
}

impl VType {
    pub fn tag(self) -> u8 {
        match self {
            VType::I64 => 1,
            VType::F64 => 2,
            VType::Bytes => 3,
        }
    }

    pub fn from_tag(t: u8) -> Result<VType> {
        Ok(match t {
            1 => VType::I64,
            2 => VType::F64,
            3 => VType::Bytes,
            other => return Err(JaguarError::Corruption(format!("bad vtype tag {other}"))),
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            VType::I64 => "i64",
            VType::F64 => "f64",
            VType::Bytes => "bytes",
        }
    }

    pub fn from_name(s: &str) -> Result<VType> {
        Ok(match s {
            "i64" | "int" => VType::I64,
            "f64" | "float" => VType::F64,
            "bytes" => VType::Bytes,
            other => return Err(JaguarError::Parse(format!("unknown type '{other}'"))),
        })
    }
}

/// One JSM instruction (decoded form).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Insn {
    // constants
    ConstI(i64),
    ConstF(f64),
    // locals
    Load(u16),
    Store(u16),
    // stack
    Pop,
    Dup,
    Swap,
    // integer arithmetic (wrapping, like Java)
    AddI,
    SubI,
    MulI,
    DivI,
    RemI,
    NegI,
    // float arithmetic
    AddF,
    SubF,
    MulF,
    DivF,
    NegF,
    // bitwise on i64
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Not,
    // conversions
    I2F,
    F2I,
    // comparisons → i64 0/1
    EqI,
    LtI,
    LeI,
    EqF,
    LtF,
    LeF,
    // control flow (instruction-index targets)
    Jmp(u32),
    /// Pop i64; jump if non-zero.
    JmpIf(u32),
    /// Pop i64; jump if zero.
    JmpIfNot(u32),
    /// Call function `idx` in the same module.
    Call(u32),
    /// Call host import `idx` (the "native method" of §4.2 callbacks).
    HostCall(u16),
    Ret,
    // byte arrays
    /// Pop length (i64) → push fresh zeroed array ref.
    NewArr,
    /// Pop index, ref → push byte as i64. **Bounds-checked.**
    ALoad,
    /// Pop value, index, ref. **Bounds-checked.** Value truncated to u8.
    AStore,
    /// Pop ref → push length as i64.
    ALen,
    /// Unconditional trap with a user code.
    Trap(u32),
}

// Opcode bytes. Gaps are reserved.
mod op {
    pub const CONST_I: u8 = 0x01;
    pub const CONST_F: u8 = 0x02;
    pub const LOAD: u8 = 0x03;
    pub const STORE: u8 = 0x04;
    pub const POP: u8 = 0x05;
    pub const DUP: u8 = 0x06;
    pub const SWAP: u8 = 0x07;
    pub const ADD_I: u8 = 0x10;
    pub const SUB_I: u8 = 0x11;
    pub const MUL_I: u8 = 0x12;
    pub const DIV_I: u8 = 0x13;
    pub const REM_I: u8 = 0x14;
    pub const NEG_I: u8 = 0x15;
    pub const ADD_F: u8 = 0x16;
    pub const SUB_F: u8 = 0x17;
    pub const MUL_F: u8 = 0x18;
    pub const DIV_F: u8 = 0x19;
    pub const NEG_F: u8 = 0x1A;
    pub const AND: u8 = 0x20;
    pub const OR: u8 = 0x21;
    pub const XOR: u8 = 0x22;
    pub const SHL: u8 = 0x23;
    pub const SHR: u8 = 0x24;
    pub const NOT: u8 = 0x25;
    pub const I2F: u8 = 0x28;
    pub const F2I: u8 = 0x29;
    pub const EQ_I: u8 = 0x30;
    pub const LT_I: u8 = 0x31;
    pub const LE_I: u8 = 0x32;
    pub const EQ_F: u8 = 0x33;
    pub const LT_F: u8 = 0x34;
    pub const LE_F: u8 = 0x35;
    pub const JMP: u8 = 0x40;
    pub const JMP_IF: u8 = 0x41;
    pub const JMP_IF_NOT: u8 = 0x42;
    pub const CALL: u8 = 0x43;
    pub const HOST_CALL: u8 = 0x44;
    pub const RET: u8 = 0x45;
    pub const NEW_ARR: u8 = 0x50;
    pub const A_LOAD: u8 = 0x51;
    pub const A_STORE: u8 = 0x52;
    pub const A_LEN: u8 = 0x53;
    pub const TRAP: u8 = 0x5F;
}

impl Insn {
    /// Append the binary encoding of this instruction to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use op::*;
        match *self {
            Insn::ConstI(v) => {
                out.push(CONST_I);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Insn::ConstF(v) => {
                out.push(CONST_F);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Insn::Load(i) => {
                out.push(LOAD);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Insn::Store(i) => {
                out.push(STORE);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Insn::Pop => out.push(POP),
            Insn::Dup => out.push(DUP),
            Insn::Swap => out.push(SWAP),
            Insn::AddI => out.push(ADD_I),
            Insn::SubI => out.push(SUB_I),
            Insn::MulI => out.push(MUL_I),
            Insn::DivI => out.push(DIV_I),
            Insn::RemI => out.push(REM_I),
            Insn::NegI => out.push(NEG_I),
            Insn::AddF => out.push(ADD_F),
            Insn::SubF => out.push(SUB_F),
            Insn::MulF => out.push(MUL_F),
            Insn::DivF => out.push(DIV_F),
            Insn::NegF => out.push(NEG_F),
            Insn::And => out.push(AND),
            Insn::Or => out.push(OR),
            Insn::Xor => out.push(XOR),
            Insn::Shl => out.push(SHL),
            Insn::Shr => out.push(SHR),
            Insn::Not => out.push(NOT),
            Insn::I2F => out.push(I2F),
            Insn::F2I => out.push(F2I),
            Insn::EqI => out.push(EQ_I),
            Insn::LtI => out.push(LT_I),
            Insn::LeI => out.push(LE_I),
            Insn::EqF => out.push(EQ_F),
            Insn::LtF => out.push(LT_F),
            Insn::LeF => out.push(LE_F),
            Insn::Jmp(t) => {
                out.push(JMP);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Insn::JmpIf(t) => {
                out.push(JMP_IF);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Insn::JmpIfNot(t) => {
                out.push(JMP_IF_NOT);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Insn::Call(t) => {
                out.push(CALL);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Insn::HostCall(t) => {
                out.push(HOST_CALL);
                out.extend_from_slice(&t.to_le_bytes());
            }
            Insn::Ret => out.push(RET),
            Insn::NewArr => out.push(NEW_ARR),
            Insn::ALoad => out.push(A_LOAD),
            Insn::AStore => out.push(A_STORE),
            Insn::ALen => out.push(A_LEN),
            Insn::Trap(c) => {
                out.push(TRAP);
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    /// Decode one instruction from a reader.
    pub fn decode(r: &mut impl Read) -> Result<Insn> {
        use op::*;
        let opcode = read_u8(r)?;
        Ok(match opcode {
            CONST_I => Insn::ConstI(read_i64(r)?),
            CONST_F => Insn::ConstF(read_f64(r)?),
            LOAD => Insn::Load(read_u16(r)?),
            STORE => Insn::Store(read_u16(r)?),
            POP => Insn::Pop,
            DUP => Insn::Dup,
            SWAP => Insn::Swap,
            ADD_I => Insn::AddI,
            SUB_I => Insn::SubI,
            MUL_I => Insn::MulI,
            DIV_I => Insn::DivI,
            REM_I => Insn::RemI,
            NEG_I => Insn::NegI,
            ADD_F => Insn::AddF,
            SUB_F => Insn::SubF,
            MUL_F => Insn::MulF,
            DIV_F => Insn::DivF,
            NEG_F => Insn::NegF,
            AND => Insn::And,
            OR => Insn::Or,
            XOR => Insn::Xor,
            SHL => Insn::Shl,
            SHR => Insn::Shr,
            NOT => Insn::Not,
            I2F => Insn::I2F,
            F2I => Insn::F2I,
            EQ_I => Insn::EqI,
            LT_I => Insn::LtI,
            LE_I => Insn::LeI,
            EQ_F => Insn::EqF,
            LT_F => Insn::LtF,
            LE_F => Insn::LeF,
            JMP => Insn::Jmp(read_u32(r)?),
            JMP_IF => Insn::JmpIf(read_u32(r)?),
            JMP_IF_NOT => Insn::JmpIfNot(read_u32(r)?),
            CALL => Insn::Call(read_u32(r)?),
            HOST_CALL => Insn::HostCall(read_u16(r)?),
            RET => Insn::Ret,
            NEW_ARR => Insn::NewArr,
            A_LOAD => Insn::ALoad,
            A_STORE => Insn::AStore,
            A_LEN => Insn::ALen,
            TRAP => Insn::Trap(read_u32(r)?),
            other => {
                return Err(JaguarError::Corruption(format!(
                    "unknown opcode {other:#04x}"
                )))
            }
        })
    }

    /// Mnemonic used by the assembler/disassembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Insn::ConstI(_) => "consti",
            Insn::ConstF(_) => "constf",
            Insn::Load(_) => "load",
            Insn::Store(_) => "store",
            Insn::Pop => "pop",
            Insn::Dup => "dup",
            Insn::Swap => "swap",
            Insn::AddI => "addi",
            Insn::SubI => "subi",
            Insn::MulI => "muli",
            Insn::DivI => "divi",
            Insn::RemI => "remi",
            Insn::NegI => "negi",
            Insn::AddF => "addf",
            Insn::SubF => "subf",
            Insn::MulF => "mulf",
            Insn::DivF => "divf",
            Insn::NegF => "negf",
            Insn::And => "and",
            Insn::Or => "or",
            Insn::Xor => "xor",
            Insn::Shl => "shl",
            Insn::Shr => "shr",
            Insn::Not => "not",
            Insn::I2F => "i2f",
            Insn::F2I => "f2i",
            Insn::EqI => "eqi",
            Insn::LtI => "lti",
            Insn::LeI => "lei",
            Insn::EqF => "eqf",
            Insn::LtF => "ltf",
            Insn::LeF => "lef",
            Insn::Jmp(_) => "jmp",
            Insn::JmpIf(_) => "jmpif",
            Insn::JmpIfNot(_) => "jmpifnot",
            Insn::Call(_) => "call",
            Insn::HostCall(_) => "hostcall",
            Insn::Ret => "ret",
            Insn::NewArr => "newarr",
            Insn::ALoad => "aload",
            Insn::AStore => "astore",
            Insn::ALen => "alen",
            Insn::Trap(_) => "trap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_insns() -> Vec<Insn> {
        vec![
            Insn::ConstI(-42),
            Insn::ConstI(i64::MAX),
            Insn::ConstF(3.25),
            Insn::Load(7),
            Insn::Store(65535),
            Insn::Pop,
            Insn::Dup,
            Insn::Swap,
            Insn::AddI,
            Insn::SubI,
            Insn::MulI,
            Insn::DivI,
            Insn::RemI,
            Insn::NegI,
            Insn::AddF,
            Insn::SubF,
            Insn::MulF,
            Insn::DivF,
            Insn::NegF,
            Insn::And,
            Insn::Or,
            Insn::Xor,
            Insn::Shl,
            Insn::Shr,
            Insn::Not,
            Insn::I2F,
            Insn::F2I,
            Insn::EqI,
            Insn::LtI,
            Insn::LeI,
            Insn::EqF,
            Insn::LtF,
            Insn::LeF,
            Insn::Jmp(9),
            Insn::JmpIf(0),
            Insn::JmpIfNot(u32::MAX),
            Insn::Call(3),
            Insn::HostCall(2),
            Insn::Ret,
            Insn::NewArr,
            Insn::ALoad,
            Insn::AStore,
            Insn::ALen,
            Insn::Trap(77),
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_opcode() {
        for insn in all_insns() {
            let mut buf = Vec::new();
            insn.encode(&mut buf);
            let mut r = buf.as_slice();
            let back = Insn::decode(&mut r).unwrap();
            assert_eq!(back, insn);
            assert!(r.is_empty(), "{insn:?} left trailing bytes");
        }
    }

    #[test]
    fn stream_of_instructions_roundtrips() {
        let insns = all_insns();
        let mut buf = Vec::new();
        for i in &insns {
            i.encode(&mut buf);
        }
        let mut r = buf.as_slice();
        let mut back = Vec::new();
        while !r.is_empty() {
            back.push(Insn::decode(&mut r).unwrap());
        }
        assert_eq!(back, insns);
    }

    #[test]
    fn unknown_opcode_is_error() {
        let mut r: &[u8] = &[0xFE];
        assert!(Insn::decode(&mut r).is_err());
    }

    #[test]
    fn truncated_operand_is_error() {
        let mut buf = Vec::new();
        Insn::ConstI(5).encode(&mut buf);
        let mut r = &buf[..4];
        assert!(Insn::decode(&mut r).is_err());
    }

    #[test]
    fn vtype_tags_roundtrip() {
        for t in [VType::I64, VType::F64, VType::Bytes] {
            assert_eq!(VType::from_tag(t.tag()).unwrap(), t);
            assert_eq!(VType::from_name(t.name()).unwrap(), t);
        }
        assert!(VType::from_tag(0).is_err());
        assert!(VType::from_name("str").is_err());
    }

    #[test]
    fn mnemonics_are_unique() {
        let insns = all_insns();
        let mut names: Vec<_> = insns.iter().map(|i| i.mnemonic()).collect();
        names.dedup(); // consecutive duplicates (ConstI twice) collapse
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
