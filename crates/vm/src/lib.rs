//! # jaguar-vm — the JSM sandboxed bytecode machine
//!
//! The stand-in for the embedded JVM of the paper's **Design 3**. The paper
//! attributes Java's security and cost profile to four mechanisms (§6.1):
//! bytecode **verification**, restricted **class loaders**, a **security
//! manager**, and thread-group isolation — plus the run-time **array bounds
//! checks** responsible for the Figure 7 slowdown, and the **resource
//! management** gap (§6.2: "UDFs can currently consume as much CPU time and
//! memory as they desire") that the J-Kernel project was addressing.
//!
//! JSM implements all of them:
//!
//! * [`isa`] / [`module`] — a compact, portable stack bytecode with typed
//!   functions, host imports, and a stable binary encoding,
//! * [`asm`] — a textual assembler (the "javac -S" of this world; the real
//!   front-end is the JagScript compiler in `jaguar-lang`),
//! * [`verifier`] — a dataflow verifier establishing stack/type/jump safety
//!   *before* execution, so the interpreter never executes unverifiable
//!   code ([`module::VerifiedModule`] can only be produced by the verifier),
//! * [`arena`] — the byte-array heap with memory accounting,
//! * [`security`] — least-privilege [`security::PermissionSet`]s consulted
//!   on every host call,
//! * [`resources`] — instruction fuel + memory caps + call-depth limits,
//!   closing the denial-of-service hole the paper highlights,
//! * [`interp`] — the execution engine, in two modes: a byte-at-a-time
//!   **baseline** interpreter and a pre-decoded **JIT-mode** dispatcher
//!   (the paper's JVM "included a JIT compiler"),
//! * [`loader`] — per-UDF namespaces: a module sees only its own functions
//!   plus explicitly granted host imports.
//!
//! ```
//! use jaguar_vm::{asm, ExecMode, Interpreter, ArgValue, NoHost, ResourceLimits};
//! use std::sync::Arc;
//!
//! // Assemble, verify, and run a module under the sandbox.
//! let module = asm::assemble(
//!     "module demo\nfunc main(i64) -> i64\n  load 0\n  dup\n  muli\n  ret\nend\n",
//! ).unwrap();
//! let verified = Arc::new(module.verify().unwrap());
//! let vm = Interpreter::new(verified, ResourceLimits::default(), ExecMode::Jit);
//! let (ret, usage, _) = vm.invoke("main", &[ArgValue::I64(12)], &mut NoHost).unwrap();
//! assert_eq!(ret.unwrap().as_i64().unwrap(), 144);
//! assert!(usage.instructions > 0); // every instruction is metered
//! ```

pub mod arena;
pub mod asm;
pub mod interp;
pub mod isa;
pub mod loader;
pub mod module;
pub mod resources;
pub mod security;
pub mod tier;
pub mod verifier;

pub use arena::Arena;
pub use interp::{ArgValue, ExecMode, HostEnv, Interpreter, NoHost, VmValue};
pub use isa::{Insn, VType};
pub use loader::Loader;
pub use module::{FuncSig, Function, HostImport, Module, VerifiedModule};
pub use resources::{ResourceLimits, ResourceUsage};
pub use security::{Permission, PermissionSet};
pub use tier::DEFAULT_TIER_UP_AFTER;
pub use verifier::verify;
