//! The module loader — JSM's "class loader".
//!
//! §6.1: *"A UDF can be loaded with a special class loader that isolates
//! the UDF's namespace from that of other UDFs and prevents interactions
//! between them."* The loader owns the mapping from UDF names to verified
//! modules and enforces two isolation properties:
//!
//! * **namespace isolation** — a module's `Call` instructions can only
//!   reach functions *inside the same module*; there is no cross-module
//!   linking at all (stronger than Java, which shares system classes),
//! * **import gating** — a module's declared host imports must be a subset
//!   of the loader's `allowed_imports`; a module asking for host functions
//!   the deployment does not offer is rejected *at load time*, before any
//!   code runs.
//!
//! Loading always verifies: the only way to get a module out of a loader
//! is as a [`VerifiedModule`].

use std::collections::HashMap;
use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use parking_lot::RwLock;

use crate::module::{FuncSig, Module, VerifiedModule};

/// A namespace-isolating, verifying module loader.
#[derive(Default)]
pub struct Loader {
    /// Host functions this deployment offers, with their signatures.
    /// A module importing anything else (or with a mismatched signature)
    /// is rejected at load time.
    allowed_imports: HashMap<String, FuncSig>,
    modules: RwLock<HashMap<String, Arc<VerifiedModule>>>,
}

impl Loader {
    pub fn new() -> Loader {
        Loader::default()
    }

    /// Declare a host function modules may import.
    pub fn allow_import(mut self, name: impl Into<String>, sig: FuncSig) -> Loader {
        self.allowed_imports.insert(name.into(), sig);
        self
    }

    /// Verify and register a module under its own name.
    /// Rejects duplicate names — UDFs cannot shadow each other.
    pub fn load(&self, module: Module) -> Result<Arc<VerifiedModule>> {
        for imp in &module.imports {
            match self.allowed_imports.get(&imp.name) {
                None => {
                    return Err(JaguarError::SecurityViolation(format!(
                        "module '{}' imports host function '{}' which this \
                         deployment does not offer",
                        module.name, imp.name
                    )))
                }
                Some(sig) if *sig != imp.sig => {
                    return Err(JaguarError::Verification(format!(
                        "module '{}' imports '{}' with a mismatched signature",
                        module.name, imp.name
                    )))
                }
                Some(_) => {}
            }
        }
        let name = module.name.clone();
        let verified = Arc::new(module.verify()?);
        let mut mods = self.modules.write();
        if mods.contains_key(&name) {
            return Err(JaguarError::Catalog(format!(
                "module '{name}' is already loaded"
            )));
        }
        mods.insert(name, Arc::clone(&verified));
        Ok(verified)
    }

    /// Verify and register a module from its binary form.
    pub fn load_bytes(&self, data: &[u8]) -> Result<Arc<VerifiedModule>> {
        self.load(Module::from_bytes(data)?)
    }

    /// Look up a loaded module by name.
    pub fn get(&self, name: &str) -> Option<Arc<VerifiedModule>> {
        self.modules.read().get(name).cloned()
    }

    /// Drop a module (e.g. when a UDF is unregistered).
    pub fn unload(&self, name: &str) -> bool {
        self.modules.write().remove(name).is_some()
    }

    /// Names of all loaded modules.
    pub fn loaded(&self) -> Vec<String> {
        let mut v: Vec<_> = self.modules.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Insn, VType};
    use crate::module::{Function, HostImport};

    fn trivial_module(name: &str) -> Module {
        Module {
            name: name.into(),
            imports: vec![],
            functions: vec![Function {
                name: "main".into(),
                sig: FuncSig::new(vec![], Some(VType::I64)),
                local_types: vec![],
                code: vec![Insn::ConstI(1), Insn::Ret],
            }],
        }
    }

    #[test]
    fn load_get_unload() {
        let loader = Loader::new();
        loader.load(trivial_module("a")).unwrap();
        loader.load(trivial_module("b")).unwrap();
        assert!(loader.get("a").is_some());
        assert_eq!(loader.loaded(), vec!["a".to_string(), "b".to_string()]);
        assert!(loader.unload("a"));
        assert!(!loader.unload("a"));
        assert!(loader.get("a").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let loader = Loader::new();
        loader.load(trivial_module("a")).unwrap();
        let e = loader.load(trivial_module("a")).unwrap_err();
        assert!(e.to_string().contains("already loaded"), "{e}");
    }

    #[test]
    fn unverifiable_module_rejected() {
        let loader = Loader::new();
        let mut m = trivial_module("bad");
        m.functions[0].code = vec![Insn::AddI, Insn::Ret];
        assert!(loader.load(m).is_err());
        assert!(loader.get("bad").is_none());
    }

    #[test]
    fn unoffered_import_rejected_at_load() {
        let loader = Loader::new();
        let mut m = trivial_module("sneaky");
        m.imports.push(HostImport {
            name: "format_disk".into(),
            sig: FuncSig::new(vec![], None),
        });
        let e = loader.load(m).unwrap_err();
        assert!(matches!(e, JaguarError::SecurityViolation(_)), "{e}");
    }

    #[test]
    fn import_signature_mismatch_rejected() {
        let loader = Loader::new()
            .allow_import("callback", FuncSig::new(vec![VType::I64], Some(VType::I64)));
        let mut m = trivial_module("m");
        m.imports.push(HostImport {
            name: "callback".into(),
            sig: FuncSig::new(vec![], Some(VType::I64)), // wrong arity
        });
        let e = loader.load(m).unwrap_err();
        assert!(e.to_string().contains("mismatched signature"), "{e}");
    }

    #[test]
    fn allowed_import_accepted() {
        let loader = Loader::new()
            .allow_import("callback", FuncSig::new(vec![VType::I64], Some(VType::I64)));
        let mut m = trivial_module("m");
        m.imports.push(HostImport {
            name: "callback".into(),
            sig: FuncSig::new(vec![VType::I64], Some(VType::I64)),
        });
        loader.load(m).unwrap();
    }

    #[test]
    fn load_bytes_roundtrip() {
        let loader = Loader::new();
        let bytes = trivial_module("bin").to_bytes();
        let vm = loader.load_bytes(&bytes).unwrap();
        assert_eq!(vm.name(), "bin");
        assert!(loader.load_bytes(b"garbage").is_err());
    }
}
