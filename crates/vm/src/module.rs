//! JSM modules: the unit of UDF deployment.
//!
//! A module is the analogue of a Java `.class` file: a named bundle of
//! typed functions plus a table of **host imports** (the "native methods"
//! through which a UDF calls back into the database server, §4.2). Modules
//! have a stable binary encoding so they can be compiled at a client,
//! shipped over the wire, verified at the server, and executed there —
//! the portability loop of §6.4.
//!
//! [`VerifiedModule`] is a newtype that can only be constructed by the
//! verifier (or by `Module::verify`), so every execution path is forced
//! through verification — the "only safe code is loaded" property of §6.1.

use std::io::Read;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::stream::{
    read_str, read_u16, read_u32, read_u8, write_str, write_u16, write_u32, write_u8,
};

use crate::isa::{Insn, VType};

/// Magic bytes opening a serialised module ("JSM" + format version 1).
pub const MODULE_MAGIC: [u8; 4] = *b"JSM1";

/// A function signature: parameter types and optional return type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSig {
    pub params: Vec<VType>,
    pub ret: Option<VType>,
}

impl FuncSig {
    pub fn new(params: Vec<VType>, ret: Option<VType>) -> Self {
        FuncSig { params, ret }
    }
}

/// A host function the module wants to import ("native method").
/// The loader grants or refuses each import by name; the security manager
/// additionally gates every call at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostImport {
    pub name: String,
    pub sig: FuncSig,
}

/// One function: signature, extra local slots, and code.
///
/// Locals are indexed `0..params.len()` for parameters followed by
/// `extra_locals` scratch slots with declared types (the verifier needs
/// declared types to give locals a fixed type for the whole function,
/// exactly like Java's local variable typing).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub sig: FuncSig,
    pub local_types: Vec<VType>,
    pub code: Vec<Insn>,
}

impl Function {
    /// Total number of local slots (params + extras).
    pub fn total_locals(&self) -> usize {
        self.sig.params.len() + self.local_types.len()
    }

    /// Type of local slot `i`.
    pub fn local_type(&self, i: usize) -> Option<VType> {
        if i < self.sig.params.len() {
            Some(self.sig.params[i])
        } else {
            self.local_types.get(i - self.sig.params.len()).copied()
        }
    }
}

/// An unverified module, as decoded from bytes or built by a compiler.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    pub name: String,
    pub imports: Vec<HostImport>,
    pub functions: Vec<Function>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            imports: Vec::new(),
            functions: Vec::new(),
        }
    }

    /// Index of the function with the given name.
    pub fn find_function(&self, name: &str) -> Option<u32> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Run the verifier, consuming this module into a [`VerifiedModule`].
    pub fn verify(self) -> Result<VerifiedModule> {
        crate::verifier::verify(self)
    }

    // ----- binary encoding ------------------------------------------------

    /// Serialise to the stable binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MODULE_MAGIC);
        write_str(&mut out, &self.name).expect("vec write");
        write_u16(&mut out, self.imports.len() as u16).expect("vec write");
        for imp in &self.imports {
            write_str(&mut out, &imp.name).expect("vec write");
            write_sig(&mut out, &imp.sig);
        }
        write_u32(&mut out, self.functions.len() as u32).expect("vec write");
        for f in &self.functions {
            write_str(&mut out, &f.name).expect("vec write");
            write_sig(&mut out, &f.sig);
            write_u16(&mut out, f.local_types.len() as u16).expect("vec write");
            for t in &f.local_types {
                write_u8(&mut out, t.tag()).expect("vec write");
            }
            write_u32(&mut out, f.code.len() as u32).expect("vec write");
            for insn in &f.code {
                insn.encode(&mut out);
            }
        }
        out
    }

    /// Decode from the binary form. Structural validation only — run the
    /// verifier before executing.
    pub fn from_bytes(data: &[u8]) -> Result<Module> {
        let mut r = data;
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MODULE_MAGIC {
            return Err(JaguarError::Verification(format!(
                "bad module magic {magic:02x?}"
            )));
        }
        let name = read_str(&mut r)?;
        // All counts below come from the (untrusted) module blob: grow the
        // vectors as entries actually decode, so a tiny blob declaring huge
        // counts fails on EOF instead of reserving memory up front.
        let n_imports = read_u16(&mut r)?;
        let mut imports = Vec::new();
        for _ in 0..n_imports {
            let iname = read_str(&mut r)?;
            let sig = read_sig(&mut r)?;
            imports.push(HostImport { name: iname, sig });
        }
        let n_funcs = read_u32(&mut r)?;
        if n_funcs > 100_000 {
            return Err(JaguarError::Verification(format!(
                "implausible function count {n_funcs}"
            )));
        }
        let mut functions = Vec::new();
        for _ in 0..n_funcs {
            let fname = read_str(&mut r)?;
            let sig = read_sig(&mut r)?;
            let n_locals = read_u16(&mut r)?;
            let mut local_types = Vec::new();
            for _ in 0..n_locals {
                local_types.push(VType::from_tag(read_u8(&mut r)?)?);
            }
            let n_code = read_u32(&mut r)?;
            if n_code > 10_000_000 {
                return Err(JaguarError::Verification(format!(
                    "implausible code length {n_code}"
                )));
            }
            let mut code = Vec::new();
            for _ in 0..n_code {
                code.push(Insn::decode(&mut r)?);
            }
            functions.push(Function {
                name: fname,
                sig,
                local_types,
                code,
            });
        }
        if !r.is_empty() {
            return Err(JaguarError::Verification(format!(
                "{} trailing bytes after module",
                r.len()
            )));
        }
        Ok(Module {
            name,
            imports,
            functions,
        })
    }
}

fn write_sig(out: &mut Vec<u8>, sig: &FuncSig) {
    write_u8(out, sig.params.len() as u8).expect("vec write");
    for p in &sig.params {
        write_u8(out, p.tag()).expect("vec write");
    }
    match sig.ret {
        None => write_u8(out, 0).expect("vec write"),
        Some(t) => write_u8(out, t.tag()).expect("vec write"),
    }
}

fn read_sig(r: &mut impl Read) -> Result<FuncSig> {
    let n = read_u8(r)?;
    let mut params = Vec::with_capacity(n as usize);
    for _ in 0..n {
        params.push(VType::from_tag(read_u8(r)?)?);
    }
    let ret = match read_u8(r)? {
        0 => None,
        t => Some(VType::from_tag(t)?),
    };
    Ok(FuncSig { params, ret })
}

/// A module that has passed bytecode verification. The interpreter only
/// accepts this type; there is deliberately no public constructor.
#[derive(Debug, Clone)]
pub struct VerifiedModule {
    inner: Module,
}

impl VerifiedModule {
    /// Crate-internal: only the verifier creates these.
    pub(crate) fn new_unchecked(inner: Module) -> VerifiedModule {
        VerifiedModule { inner }
    }

    pub fn module(&self) -> &Module {
        &self.inner
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub fn functions(&self) -> &[Function] {
        &self.inner.functions
    }

    pub fn imports(&self) -> &[HostImport] {
        &self.inner.imports
    }

    pub fn find_function(&self, name: &str) -> Option<u32> {
        self.inner.find_function(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> Module {
        Module {
            name: "udfs.investval".into(),
            imports: vec![HostImport {
                name: "callback".into(),
                sig: FuncSig::new(vec![VType::I64], Some(VType::I64)),
            }],
            functions: vec![
                Function {
                    name: "main".into(),
                    sig: FuncSig::new(vec![VType::Bytes, VType::I64], Some(VType::I64)),
                    local_types: vec![VType::I64, VType::F64],
                    code: vec![Insn::ConstI(0), Insn::Ret],
                },
                Function {
                    name: "helper".into(),
                    sig: FuncSig::new(vec![], None),
                    local_types: vec![],
                    code: vec![Insn::Ret],
                },
            ],
        }
    }

    #[test]
    fn binary_roundtrip() {
        let m = sample_module();
        let bytes = m.to_bytes();
        let back = Module::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_module().to_bytes();
        bytes[0] = b'X';
        assert!(Module::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_module().to_bytes();
        for cut in [4, 10, bytes.len() - 1] {
            assert!(Module::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample_module().to_bytes();
        bytes.push(0);
        assert!(Module::from_bytes(&bytes).is_err());
    }

    #[test]
    fn find_function() {
        let m = sample_module();
        assert_eq!(m.find_function("main"), Some(0));
        assert_eq!(m.find_function("helper"), Some(1));
        assert_eq!(m.find_function("absent"), None);
    }

    #[test]
    fn local_typing() {
        let m = sample_module();
        let f = &m.functions[0];
        assert_eq!(f.total_locals(), 4);
        assert_eq!(f.local_type(0), Some(VType::Bytes)); // param
        assert_eq!(f.local_type(1), Some(VType::I64)); // param
        assert_eq!(f.local_type(2), Some(VType::I64)); // extra
        assert_eq!(f.local_type(3), Some(VType::F64)); // extra
        assert_eq!(f.local_type(4), None);
    }
}
