//! Resource limits and accounting.
//!
//! §6.2 of the paper: *"One major issue we have not addressed is resource
//! management. UDFs can currently consume as much CPU time and memory as
//! they desire. [...] Such mechanisms will be essential in database
//! systems."* The paper points at the J-Kernel project's plan to
//! "instrument Java byte-codes so that the use of resources can be
//! monitored and policed". JSM bakes that instrumentation in:
//!
//! * **fuel** — a per-invocation instruction budget, decremented as code
//!   executes; exhaustion aborts the UDF with a containable
//!   `ResourceLimit` error (the CPU half of denial-of-service),
//! * **memory** — enforced by the [`crate::arena::Arena`] at allocation
//!   time (the memory half),
//! * **call depth** — bounds the frame stack against runaway recursion.
//!
//! The A3 ablation benchmark measures what this policing costs.

/// Per-invocation resource budget. `None` means unlimited — the 1998 JVM
/// status quo, kept available for the ablation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Instruction budget.
    pub fuel: Option<u64>,
    /// Arena allocation budget in bytes.
    pub memory: Option<usize>,
    /// Maximum call-frame depth.
    pub max_call_depth: usize,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            fuel: Some(500_000_000),
            memory: Some(64 * 1024 * 1024),
            max_call_depth: 256,
        }
    }
}

impl ResourceLimits {
    /// No limits at all (ablation baseline).
    pub fn unlimited() -> Self {
        ResourceLimits {
            fuel: None,
            memory: None,
            max_call_depth: 1 << 20,
        }
    }

    /// A tight budget for tests of the enforcement paths.
    pub fn tight(fuel: u64, memory: usize) -> Self {
        ResourceLimits {
            fuel: Some(fuel),
            memory: Some(memory),
            max_call_depth: 64,
        }
    }
}

/// What an invocation actually consumed — returned alongside results so
/// the server can account per-UDF usage (and, in a fuller system, bill or
/// throttle clients).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Instructions executed.
    pub instructions: u64,
    /// Bytes allocated in the arena.
    pub bytes_allocated: usize,
    /// Deepest call-frame stack observed.
    pub max_depth_seen: usize,
    /// Host callbacks performed.
    pub host_calls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_finite() {
        let l = ResourceLimits::default();
        assert!(l.fuel.is_some());
        assert!(l.memory.is_some());
        assert!(l.max_call_depth > 0);
    }

    #[test]
    fn unlimited_is_unlimited() {
        let l = ResourceLimits::unlimited();
        assert_eq!(l.fuel, None);
        assert_eq!(l.memory, None);
    }

    #[test]
    fn tight_budget() {
        let l = ResourceLimits::tight(100, 256);
        assert_eq!(l.fuel, Some(100));
        assert_eq!(l.memory, Some(256));
    }
}
