//! The security manager.
//!
//! §6.1: *"The security manager is invoked by the Java run-time libraries
//! each time an action affecting the execution environment (such as I/O)
//! is attempted. For UDFs, the security manager can be set up to prevent
//! many potentially harmful operations."* And the finer-grained example:
//! *"a UDF might be allowed by its class loader to load the `File` class,
//! but only with certain path arguments, as determined by the security
//! manager."*
//!
//! JSM's model: a UDF runs under a [`PermissionSet`]; every host call the
//! UDF attempts is checked against it (least privilege, \[SS75\]). Path-
//! scoped file permissions reproduce the paper's `File`-class example.
//! Unlike the 1998 JVM the paper criticises for "lack of auditing
//! capabilities", every denial is recorded in an audit log attributable to
//! the offending UDF.

use std::fmt;

use jaguar_common::error::{JaguarError, Result};
use parking_lot::Mutex;

/// One grantable capability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Permission {
    /// Call back into the database server (the §4.2 "callback" channel).
    Callback,
    /// Invoke the named host function.
    HostCall(String),
    /// Read files whose path starts with the given prefix.
    FileRead(String),
    /// Write files whose path starts with the given prefix.
    FileWrite(String),
    /// Spawn additional VM threads (thread-group analogue).
    SpawnThread,
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Permission::Callback => write!(f, "callback"),
            Permission::HostCall(n) => write!(f, "hostcall({n})"),
            Permission::FileRead(p) => write!(f, "file-read({p}*)"),
            Permission::FileWrite(p) => write!(f, "file-write({p}*)"),
            Permission::SpawnThread => write!(f, "spawn-thread"),
        }
    }
}

/// An audit-log entry: which principal attempted what, and the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    pub principal: String,
    pub action: String,
    pub allowed: bool,
}

/// A least-privilege permission set with an audit trail.
///
/// Deny-by-default: a fresh set grants nothing, mirroring how the paper
/// wants untrusted web users treated.
#[derive(Debug, Default)]
pub struct PermissionSet {
    principal: String,
    grants: Vec<Permission>,
    audit: Mutex<Vec<AuditEvent>>,
}

impl PermissionSet {
    /// An empty (deny-everything) set for the named principal (UDF).
    pub fn deny_all(principal: impl Into<String>) -> PermissionSet {
        PermissionSet {
            principal: principal.into(),
            grants: Vec::new(),
            audit: Mutex::new(Vec::new()),
        }
    }

    /// Grant a permission (builder style).
    pub fn grant(mut self, p: Permission) -> PermissionSet {
        self.grants.push(p);
        self
    }

    /// The typical grant for a database UDF: callbacks only.
    pub fn udf_default(principal: impl Into<String>) -> PermissionSet {
        PermissionSet::deny_all(principal).grant(Permission::Callback)
    }

    pub fn principal(&self) -> &str {
        &self.principal
    }

    /// Check whether `requested` is covered by some grant. Records the
    /// decision in the audit log either way.
    pub fn check(&self, requested: &Permission) -> Result<()> {
        let allowed = self.grants.iter().any(|g| covers(g, requested));
        self.audit.lock().push(AuditEvent {
            principal: self.principal.clone(),
            action: requested.to_string(),
            allowed,
        });
        if allowed {
            Ok(())
        } else {
            Err(JaguarError::SecurityViolation(format!(
                "udf '{}' denied: {requested}",
                self.principal
            )))
        }
    }

    /// Snapshot of the audit trail.
    pub fn audit_log(&self) -> Vec<AuditEvent> {
        self.audit.lock().clone()
    }

    /// Denied attempts only — what an operator would page through after an
    /// incident (the auditing capability the paper says Java lacked).
    pub fn violations(&self) -> Vec<AuditEvent> {
        self.audit
            .lock()
            .iter()
            .filter(|e| !e.allowed)
            .cloned()
            .collect()
    }
}

/// Does grant `g` cover request `r`? Exact match except for path-prefix
/// file permissions.
fn covers(g: &Permission, r: &Permission) -> bool {
    match (g, r) {
        (Permission::Callback, Permission::Callback) => true,
        (Permission::SpawnThread, Permission::SpawnThread) => true,
        (Permission::HostCall(a), Permission::HostCall(b)) => a == b,
        (Permission::FileRead(prefix), Permission::FileRead(path)) => path.starts_with(prefix),
        (Permission::FileWrite(prefix), Permission::FileWrite(path)) => path.starts_with(prefix),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_by_default() {
        let s = PermissionSet::deny_all("udf1");
        assert!(s.check(&Permission::Callback).is_err());
        assert!(s.check(&Permission::SpawnThread).is_err());
        assert_eq!(s.violations().len(), 2);
    }

    #[test]
    fn grants_allow() {
        let s = PermissionSet::deny_all("udf1")
            .grant(Permission::Callback)
            .grant(Permission::HostCall("clip".into()));
        s.check(&Permission::Callback).unwrap();
        s.check(&Permission::HostCall("clip".into())).unwrap();
        assert!(s
            .check(&Permission::HostCall("delete_everything".into()))
            .is_err());
    }

    #[test]
    fn file_prefix_scoping() {
        let s = PermissionSet::deny_all("udf1").grant(Permission::FileRead("/data/images/".into()));
        s.check(&Permission::FileRead("/data/images/sunset.png".into()))
            .unwrap();
        assert!(s
            .check(&Permission::FileRead("/etc/passwd".into()))
            .is_err());
        // Read grant does not imply write.
        assert!(s
            .check(&Permission::FileWrite("/data/images/x".into()))
            .is_err());
    }

    #[test]
    fn audit_log_attributes_principal() {
        let s = PermissionSet::udf_default("investval");
        let _ = s.check(&Permission::Callback);
        let _ = s.check(&Permission::SpawnThread);
        let log = s.audit_log();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|e| e.principal == "investval"));
        assert!(log[0].allowed);
        assert!(!log[1].allowed);
    }

    #[test]
    fn violation_message_names_udf_and_action() {
        let s = PermissionSet::deny_all("evil");
        let e = s
            .check(&Permission::FileWrite("/db/files".into()))
            .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("evil"), "{msg}");
        assert!(msg.contains("file-write"), "{msg}");
    }
}
