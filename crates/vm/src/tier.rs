//! Tiered execution: a template compiler for hot JagScript functions.
//!
//! The paper's JVM "included a JIT compiler" in every measured
//! configuration; JSM's `ExecMode::Jit` superinstruction fuser only
//! approximates that. This module finishes the job with a classic
//! **tier-up template compiler**: after a function has been invoked
//! [`crate::interp::Interpreter`]-side `tier_up_after` times, its whole
//! module is compiled — once, basic-block at a time — into a register
//! program of pre-resolved operations that executes without per-opcode
//! decode or operand-stack traffic.
//!
//! Three invariants make the compiled tier *observationally identical* to
//! [`crate::interp::ExecMode::Baseline`]:
//!
//! 1. **Safety checks stay inline.** Every array access still goes through
//!    the [`Arena`] bounds checks, every host call through the security
//!    manager, every recursion through the call-depth limit. The compiler
//!    removes *dispatch*, never *policing*.
//! 2. **Fuel accounting is instruction-exact.** Infallible runs of source
//!    instructions are charged in one batch at the next *charge point*
//!    (any fallible op or block exit), so `usage.instructions` on success
//!    — and the "fuel exhausted after N instructions" message on
//!    exhaustion — match the baseline interpreter to the instruction.
//! 3. **Fallback is total.** Any function the compiler cannot prove out
//!    (or whose call graph escapes the compiled set) simply keeps running
//!    in the interpreter; `vm.tier.fallbacks` counts how often.
//!
//! Compiled plans are cached **per module** behind an `Arc` (the
//! [`ModulePlan`]), so pooled workers and per-statement instantiation
//! share one compilation and one set of hotness counters. The same cache
//! also holds the pre-decoded/fused interpreter plans, fixing the old
//! per-`Interpreter::new` re-fuse.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use jaguar_common::cancel::CancelToken;
use jaguar_common::error::{JaguarError, Result, VmTrap};
use jaguar_common::obs;

use crate::arena::{Arena, BytesRef};
use crate::interp::{
    fuse, EncodedFn, FusedOp, HostEnv, Interpreter, VmValue, CANCEL_CHECK_INTERVAL,
};
use crate::isa::{Insn, VType};
use crate::module::VerifiedModule;
use crate::resources::ResourceUsage;
use crate::security::Permission;

/// Default number of interpreted invocations before a function tiers up.
/// Low enough that per-statement UDFs over a few hundred rows promote
/// almost immediately; high enough that one-shot administrative calls
/// never pay compilation.
pub const DEFAULT_TIER_UP_AFTER: u64 = 64;

// ---------------------------------------------------------------------------
// Per-module execution plan + cache
// ---------------------------------------------------------------------------

/// Everything derived from a module's code, built lazily and shared by
/// every `Interpreter` over the same `Arc<VerifiedModule>`: the baseline
/// byte encoding, the fused (JIT-mode) plan, the compiled tier, and the
/// per-function hotness counters that drive promotion.
pub struct ModulePlan {
    encoded: OnceLock<Vec<EncodedFn>>,
    fused: OnceLock<Vec<Vec<FusedOp>>>,
    compiled: OnceLock<CompiledModule>,
    hot: Vec<AtomicU64>,
}

impl ModulePlan {
    fn new(nfuncs: usize) -> ModulePlan {
        ModulePlan {
            encoded: OnceLock::new(),
            fused: OnceLock::new(),
            compiled: OnceLock::new(),
            hot: (0..nfuncs).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn encoded(&self, module: &VerifiedModule) -> &[EncodedFn] {
        self.encoded
            .get_or_init(|| module.functions().iter().map(EncodedFn::of).collect())
    }

    pub(crate) fn fused(&self, module: &VerifiedModule) -> &[Vec<FusedOp>] {
        self.fused
            .get_or_init(|| module.functions().iter().map(|f| fuse(&f.code)).collect())
    }

    pub(crate) fn compiled(&self, module: &VerifiedModule) -> &CompiledModule {
        self.compiled.get_or_init(|| CompiledModule::build(module))
    }

    /// The promotion counter for one function.
    pub(crate) fn hot(&self, fidx: u32) -> &AtomicU64 {
        &self.hot[fidx as usize]
    }
}

/// Process-wide plan cache: one [`ModulePlan`] per live `Arc<VerifiedModule>`,
/// keyed by pointer identity and held weakly so dropping the last module
/// reference releases its plans. Pointer keys can be reused after a free
/// (ABA), so a hit must also upgrade + `Arc::ptr_eq` before trusting it.
type PlanCacheEntry = (usize, Weak<VerifiedModule>, Arc<ModulePlan>);
static PLAN_CACHE: Mutex<Vec<PlanCacheEntry>> = Mutex::new(Vec::new());

pub(crate) fn plan_for(module: &Arc<VerifiedModule>) -> Arc<ModulePlan> {
    let key = Arc::as_ptr(module) as usize;
    let mut cache = PLAN_CACHE.lock().unwrap_or_else(|p| p.into_inner());
    for (k, weak, plan) in cache.iter() {
        if *k == key {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, module) {
                    return Arc::clone(plan);
                }
            }
        }
    }
    // Miss (or a dead/ABA entry under this key): sweep and insert fresh.
    cache.retain(|(k, weak, _)| *k != key && weak.strong_count() > 0);
    let plan = Arc::new(ModulePlan::new(module.functions().len()));
    cache.push((key, Arc::downgrade(module), Arc::clone(&plan)));
    plan
}

/// Tier telemetry, resolved once from the global registry.
pub(crate) struct TierMetrics {
    pub promotions: Arc<obs::Counter>,
    pub compiled_hits: Arc<obs::Counter>,
    pub fallbacks: Arc<obs::Counter>,
}

pub(crate) fn metrics() -> &'static TierMetrics {
    static METRICS: OnceLock<TierMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::global();
        TierMetrics {
            promotions: registry.counter("vm.tier.promotions"),
            compiled_hits: registry.counter("vm.tier.compiled_hits"),
            fallbacks: registry.counter("vm.tier.fallbacks"),
        }
    })
}

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// An operand source: a register index.
///
/// Registers are raw 64-bit values: the verifier proved every operand's
/// static type, so the compiled tier stores `i64` bits directly, `f64`
/// via `to_bits`, and byte-array handles zero-extended — no runtime
/// tags, no runtime type checks. Constants occupy dedicated registers
/// past the scratch slot, filled once at frame creation, so an operand
/// read is always a single indexed load.
type Src = u16;

#[derive(Debug, Clone, Copy)]
enum IBinKind {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

#[derive(Debug, Clone, Copy)]
enum FBinKind {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, Copy)]
enum CmpIKind {
    Eq,
    Lt,
    Le,
}

#[derive(Debug, Clone, Copy)]
enum CmpFKind {
    Eq,
    Lt,
    Le,
}

/// One compiled operation. Infallible ops carry no fuel charge — their
/// cost accumulates into the next charge point. Fallible ops are charge
/// points: `charge` is the number of source instructions retired since
/// the previous charge point, *including* the op itself, charged before
/// the op executes (exactly where the interpreter would charge them).
#[derive(Debug, Clone)]
enum Op {
    Copy {
        dst: u16,
        src: Src,
    },
    IBin {
        kind: IBinKind,
        dst: u16,
        a: Src,
        b: Src,
    },
    FBin {
        kind: FBinKind,
        dst: u16,
        a: Src,
        b: Src,
    },
    NegI {
        dst: u16,
        src: Src,
    },
    NegF {
        dst: u16,
        src: Src,
    },
    NotI {
        dst: u16,
        src: Src,
    },
    I2F {
        dst: u16,
        src: Src,
    },
    F2I {
        dst: u16,
        src: Src,
    },
    /// Two integer binops with the intermediate kept virtual:
    /// `t = a1 k1 b1; dst = t_left ? t k2 c : c k2 t`. Emitted when one
    /// binop's sole consumer is the next (e.g. `acc*31 + i`), which the
    /// symbolic stack proves by construction.
    IBin2 {
        k1: IBinKind,
        a1: Src,
        b1: Src,
        k2: IBinKind,
        c: Src,
        t_left: bool,
        dst: u16,
    },
    CmpI {
        kind: CmpIKind,
        dst: u16,
        a: Src,
        b: Src,
    },
    CmpF {
        kind: CmpFKind,
        dst: u16,
        a: Src,
        b: Src,
    },
    DivI {
        rem: bool,
        dst: u16,
        a: Src,
        b: Src,
        charge: u64,
    },
    NewArr {
        dst: u16,
        len: Src,
        charge: u64,
    },
    ALoad {
        dst: u16,
        arr: Src,
        idx: Src,
        charge: u64,
    },
    /// An array load whose sole consumer is the next integer binop
    /// (`acc + data[j]`): `t = arr[idx]; dst = t_left ? t k2 c : c k2 t`.
    /// Charged like the `ALoad` it contains; the binop itself cannot trap.
    ALoadIBin {
        arr: Src,
        idx: Src,
        k2: IBinKind,
        c: Src,
        t_left: bool,
        dst: u16,
        charge: u64,
    },
    AStore {
        arr: Src,
        idx: Src,
        val: Src,
        charge: u64,
    },
    ALen {
        dst: u16,
        arr: Src,
        charge: u64,
    },
    Call {
        fidx: u32,
        args: Vec<Src>,
        dst: Option<u16>,
        charge: u64,
    },
    HostCall {
        iidx: u16,
        args: Vec<Src>,
        dst: Option<u16>,
        charge: u64,
    },
}

impl Op {
    /// The destination register, for the store-retarget peephole.
    fn dst_mut(&mut self) -> Option<&mut u16> {
        match self {
            Op::Copy { dst, .. }
            | Op::IBin { dst, .. }
            | Op::IBin2 { dst, .. }
            | Op::FBin { dst, .. }
            | Op::NegI { dst, .. }
            | Op::NegF { dst, .. }
            | Op::NotI { dst, .. }
            | Op::I2F { dst, .. }
            | Op::F2I { dst, .. }
            | Op::CmpI { dst, .. }
            | Op::CmpF { dst, .. }
            | Op::DivI { dst, .. }
            | Op::NewArr { dst, .. }
            | Op::ALoad { dst, .. }
            | Op::ALoadIBin { dst, .. }
            | Op::ALen { dst, .. } => Some(dst),
            Op::Call { dst, .. } | Op::HostCall { dst, .. } => dst.as_mut(),
            Op::AStore { .. } => None,
        }
    }
}

/// Block terminator. Always a charge point for the instructions retired
/// since the last one (a fall-through exit has no instruction of its own,
/// so its charge is just the residue).
#[derive(Debug, Clone)]
enum Exit {
    Jmp {
        target: u32,
        charge: u64,
    },
    Branch {
        cond: Src,
        if_true: u32,
        if_false: u32,
        charge: u64,
    },
    /// A compare whose sole consumer is the branch, fused so loop heads
    /// need no materialized flag register.
    BranchCmpI {
        kind: CmpIKind,
        a: Src,
        b: Src,
        if_true: u32,
        if_false: u32,
        charge: u64,
    },
    /// A trailing integer binop carried into the compare-branch (the
    /// classic loop-closing `i = i + 1; branch i < n`). Pure op motion:
    /// the write to `d` happens first, then the (post-write) compare —
    /// byte-for-byte the unfused execution order.
    IBinBranchCmpI {
        k0: IBinKind,
        a0: Src,
        b0: Src,
        d: u16,
        kind: CmpIKind,
        a: Src,
        b: Src,
        if_true: u32,
        if_false: u32,
        charge: u64,
    },
    Ret {
        src: Option<Src>,
        charge: u64,
    },
    Trap {
        code: u32,
        charge: u64,
    },
}

impl Exit {
    fn charge_mut(&mut self) -> &mut u64 {
        match self {
            Exit::Jmp { charge, .. }
            | Exit::Branch { charge, .. }
            | Exit::BranchCmpI { charge, .. }
            | Exit::IBinBranchCmpI { charge, .. }
            | Exit::Ret { charge, .. }
            | Exit::Trap { charge, .. } => charge,
        }
    }
}

#[derive(Debug)]
struct Block {
    ops: Vec<Op>,
    exit: Exit,
}

/// One compiled function: a register program over `nregs` slots —
/// locals first, then the canonical operand-stack slots, then one
/// scratch register for `Swap`, then the function's constant pool
/// (written once per frame, never a destination).
pub(crate) struct CompiledFn {
    nregs: usize,
    consts: Vec<u64>,
    blocks: Vec<Block>,
}

/// The whole-module compilation result. `funcs[i]` is `None` when the
/// template compiler bailed on function `i`; `runnable[i]` additionally
/// requires every transitively callable function to be compiled, so a
/// compiled caller never needs to re-enter the interpreter mid-frame.
pub struct CompiledModule {
    funcs: Vec<Option<CompiledFn>>,
    runnable: Vec<bool>,
}

impl CompiledModule {
    fn build(module: &VerifiedModule) -> CompiledModule {
        let functions = module.functions();
        let imports = module.imports();
        let funcs: Vec<Option<CompiledFn>> = functions
            .iter()
            .map(|f| compile_fn(f, functions, imports))
            .collect();

        // Direct call edges from the original code.
        let callees: Vec<Vec<u32>> = functions
            .iter()
            .map(|f| {
                let mut out: Vec<u32> = f
                    .code
                    .iter()
                    .filter_map(|i| match i {
                        Insn::Call(t) => Some(*t),
                        _ => None,
                    })
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        // runnable: compiled AND all transitive callees compiled
        // (fixpoint: only ever removes, so it converges).
        let mut runnable: Vec<bool> = funcs.iter().map(|f| f.is_some()).collect();
        loop {
            let mut changed = false;
            for i in 0..runnable.len() {
                if runnable[i]
                    && !callees[i]
                        .iter()
                        .all(|c| runnable.get(*c as usize).copied().unwrap_or(false))
                {
                    runnable[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        CompiledModule { funcs, runnable }
    }

    /// May `fidx` be entered through the compiled tier?
    pub(crate) fn entry_runnable(&self, fidx: u32) -> bool {
        self.runnable.get(fidx as usize).copied().unwrap_or(false)
    }
}

// ---------------------------------------------------------------------------
// The template compiler
// ---------------------------------------------------------------------------

/// Net stack effect of one instruction: (pops, pushes).
fn stack_effect(
    insn: &Insn,
    functions: &[crate::module::Function],
    imports: &[crate::module::HostImport],
) -> Option<(usize, usize)> {
    Some(match insn {
        Insn::ConstI(_) | Insn::ConstF(_) | Insn::Load(_) => (0, 1),
        Insn::Store(_) | Insn::Pop | Insn::JmpIf(_) | Insn::JmpIfNot(_) => (1, 0),
        Insn::Dup => (1, 2),
        Insn::Swap => (2, 2),
        Insn::AddI
        | Insn::SubI
        | Insn::MulI
        | Insn::DivI
        | Insn::RemI
        | Insn::AddF
        | Insn::SubF
        | Insn::MulF
        | Insn::DivF
        | Insn::And
        | Insn::Or
        | Insn::Xor
        | Insn::Shl
        | Insn::Shr
        | Insn::EqI
        | Insn::LtI
        | Insn::LeI
        | Insn::EqF
        | Insn::LtF
        | Insn::LeF
        | Insn::ALoad => (2, 1),
        Insn::NegI | Insn::NegF | Insn::Not | Insn::I2F | Insn::F2I | Insn::NewArr | Insn::ALen => {
            (1, 1)
        }
        Insn::AStore => (3, 0),
        Insn::Jmp(_) | Insn::Trap(_) => (0, 0),
        Insn::Call(f) => {
            let sig = &functions.get(*f as usize)?.sig;
            (sig.params.len(), usize::from(sig.ret.is_some()))
        }
        Insn::HostCall(i) => {
            let sig = &imports.get(*i as usize)?.sig;
            (sig.params.len(), usize::from(sig.ret.is_some()))
        }
        Insn::Ret => (0, 0), // return value handled by the terminator itself
    })
}

/// A symbolic operand-stack entry during block compilation. `Slot` means
/// "the value already lives in its canonical register" (canonical slot
/// for stack position `p` is register `nlocals + p`); the others are
/// deferred and materialize only when consumed or at a block boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Sym {
    Slot,
    Local(u16),
    CI(i64),
    CF(f64),
}

/// Compile one function to a register program, or `None` if any shape the
/// template compiler does not support appears (the caller then keeps
/// interpreting this function — fallback, never failure).
fn compile_fn(
    f: &crate::module::Function,
    functions: &[crate::module::Function],
    imports: &[crate::module::HostImport],
) -> Option<CompiledFn> {
    let code = &f.code;
    if code.is_empty() {
        return None;
    }
    let nlocals = f.total_locals();

    // --- Block discovery: leaders are insn 0, every jump target, and the
    // instruction after every terminator.
    let mut leader = vec![false; code.len()];
    leader[0] = true;
    for (i, insn) in code.iter().enumerate() {
        match insn {
            Insn::Jmp(t) | Insn::JmpIf(t) | Insn::JmpIfNot(t) => {
                let t = *t as usize;
                if t >= code.len() {
                    return None;
                }
                leader[t] = true;
                if i + 1 < code.len() {
                    leader[i + 1] = true;
                }
            }
            Insn::Ret | Insn::Trap(_) if i + 1 < code.len() => leader[i + 1] = true,
            _ => {}
        }
    }
    let starts: Vec<usize> = (0..code.len()).filter(|i| leader[*i]).collect();
    let block_of: HashMap<usize, u32> = starts
        .iter()
        .enumerate()
        .map(|(b, s)| (*s, b as u32))
        .collect();
    let range_of = |b: usize| -> (usize, usize) {
        let start = starts[b];
        let end = starts.get(b + 1).copied().unwrap_or(code.len());
        (start, end)
    };

    // --- Phase 1: entry stack depth per block (worklist dataflow), plus
    // the maximum operand-stack depth anywhere in the function.
    let mut entry_depth: Vec<Option<usize>> = vec![None; starts.len()];
    entry_depth[0] = Some(0);
    let mut max_depth = 0usize;
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        let (start, end) = range_of(b);
        let mut depth = entry_depth[b]?;
        max_depth = max_depth.max(depth);
        let mut merge = |target: u32, depth: usize, work: &mut Vec<usize>| -> Option<()> {
            let t = target as usize;
            match entry_depth[t] {
                None => {
                    entry_depth[t] = Some(depth);
                    work.push(t);
                }
                Some(d) if d != depth => return None, // inconsistent: bail
                Some(_) => {}
            }
            Some(())
        };
        let mut terminated = false;
        for (i, insn) in code.iter().enumerate().take(end).skip(start) {
            let (pops, pushes) = stack_effect(insn, functions, imports)?;
            if depth < pops {
                return None;
            }
            depth = depth - pops + pushes;
            max_depth = max_depth.max(depth);
            match insn {
                Insn::Jmp(t) => {
                    merge(*block_of.get(&(*t as usize))?, depth, &mut work)?;
                    terminated = true;
                }
                Insn::JmpIf(t) | Insn::JmpIfNot(t) => {
                    merge(*block_of.get(&(*t as usize))?, depth, &mut work)?;
                    merge(*block_of.get(&(i + 1))?, depth, &mut work)?;
                    terminated = true;
                }
                Insn::Ret => {
                    if f.sig.ret.is_some() && depth < 1 {
                        return None;
                    }
                    terminated = true;
                }
                Insn::Trap(_) => terminated = true,
                _ => {}
            }
        }
        if !terminated {
            // Fall-through into the next block; falling off the end of the
            // function is unreachable in verified code — bail if seen.
            let next = *block_of.get(&end)?;
            merge(next, depth, &mut work)?;
        }
    }

    // Constant pool: every distinct literal gets a dedicated register past
    // the scratch slot, written once per frame — operand reads are then
    // always plain indexed loads, never tagged immediates.
    let mut consts: Vec<u64> = Vec::new();
    let mut cmap: HashMap<u64, u16> = HashMap::new();
    for insn in code {
        let bits = match insn {
            Insn::ConstI(v) => *v as u64,
            Insn::ConstF(v) => v.to_bits(),
            _ => continue,
        };
        cmap.entry(bits).or_insert_with(|| {
            consts.push(bits);
            (consts.len() - 1) as u16
        });
    }

    let base = nlocals + max_depth + 1; // +1 scratch for Swap
    let nregs = base + consts.len();
    if nregs > u16::MAX as usize {
        return None;
    }
    let canon = |p: usize| -> u16 { (nlocals + p) as u16 };
    let scratch = (base - 1) as u16;
    let cr = |bits: u64| -> u16 { (base + cmap[&bits] as usize) as u16 };

    // --- Phase 2: compile each reachable block.
    let mut blocks = Vec::with_capacity(starts.len());
    for (b, entry) in entry_depth.iter().enumerate() {
        let Some(depth0) = *entry else {
            // Unreachable block: emit a defensive dead-end (never entered).
            blocks.push(Block {
                ops: Vec::new(),
                exit: Exit::Trap {
                    code: u32::MAX,
                    charge: 0,
                },
            });
            continue;
        };
        let (start, end) = range_of(b);
        let mut ss: Vec<Sym> = vec![Sym::Slot; depth0];
        let mut ops: Vec<Op> = Vec::new();
        let mut pend: u64 = 0;

        // Read a symbolic entry as an operand source, given its position.
        let src_of = |sym: Sym, pos: usize| -> Src {
            match sym {
                Sym::Slot => canon(pos),
                Sym::Local(i) => i,
                Sym::CI(v) => cr(v as u64),
                Sym::CF(v) => cr(v.to_bits()),
            }
        };
        // Materialize every deferred entry into its canonical register
        // (positions are absolute — always pass the full stack).
        let materialize_all = |ss: &mut Vec<Sym>, ops: &mut Vec<Op>| {
            for (pos, sym) in ss.iter_mut().enumerate() {
                if *sym != Sym::Slot {
                    ops.push(Op::Copy {
                        dst: canon(pos),
                        src: src_of(*sym, pos),
                    });
                    *sym = Sym::Slot;
                }
            }
        };

        let mut exit: Option<Exit> = None;
        for i in start..end {
            let insn = code[i];
            pend += 1;
            match insn {
                Insn::ConstI(v) => ss.push(Sym::CI(v)),
                Insn::ConstF(v) => ss.push(Sym::CF(v)),
                Insn::Load(l) => {
                    if l as usize >= nlocals {
                        return None;
                    }
                    ss.push(Sym::Local(l));
                }
                Insn::Store(l) => {
                    if l as usize >= nlocals {
                        return None;
                    }
                    let v = ss.pop()?;
                    // Entries still referring to the old value of local
                    // `l` must capture it before the overwrite.
                    for (pos, sym) in ss.iter_mut().enumerate() {
                        if *sym == Sym::Local(l) {
                            ops.push(Op::Copy {
                                dst: canon(pos),
                                src: l,
                            });
                            *sym = Sym::Slot;
                        }
                    }
                    match v {
                        Sym::Slot => {
                            let from = canon(ss.len());
                            // Peephole: retarget the op that produced the
                            // top-of-stack straight into the local.
                            if let Some(dst) = ops.last_mut().and_then(|op| op.dst_mut()) {
                                if *dst == from {
                                    *dst = l;
                                    continue;
                                }
                            }
                            ops.push(Op::Copy { dst: l, src: from });
                        }
                        Sym::Local(j) => {
                            if j != l {
                                ops.push(Op::Copy { dst: l, src: j });
                            }
                        }
                        Sym::CI(c) => ops.push(Op::Copy {
                            dst: l,
                            src: cr(c as u64),
                        }),
                        Sym::CF(c) => ops.push(Op::Copy {
                            dst: l,
                            src: cr(c.to_bits()),
                        }),
                    }
                }
                Insn::Pop => {
                    ss.pop()?;
                }
                Insn::Dup => {
                    let top = *ss.last()?;
                    match top {
                        Sym::Slot => {
                            let p = ss.len();
                            ops.push(Op::Copy {
                                dst: canon(p),
                                src: canon(p - 1),
                            });
                            ss.push(Sym::Slot);
                        }
                        other => ss.push(other),
                    }
                }
                Insn::Swap => {
                    let len = ss.len();
                    if len < 2 {
                        return None;
                    }
                    if ss[len - 1] == Sym::Slot || ss[len - 2] == Sym::Slot {
                        for (pos, sym) in ss.iter_mut().enumerate().skip(len - 2) {
                            if *sym != Sym::Slot {
                                ops.push(Op::Copy {
                                    dst: canon(pos),
                                    src: src_of(*sym, pos),
                                });
                                *sym = Sym::Slot;
                            }
                        }
                        let (a, b) = (canon(len - 2), canon(len - 1));
                        ops.push(Op::Copy {
                            dst: scratch,
                            src: a,
                        });
                        ops.push(Op::Copy { dst: a, src: b });
                        ops.push(Op::Copy {
                            dst: b,
                            src: scratch,
                        });
                    } else {
                        ss.swap(len - 1, len - 2);
                    }
                }
                Insn::AddI
                | Insn::SubI
                | Insn::MulI
                | Insn::And
                | Insn::Or
                | Insn::Xor
                | Insn::Shl
                | Insn::Shr => {
                    let kind = match insn {
                        Insn::AddI => IBinKind::Add,
                        Insn::SubI => IBinKind::Sub,
                        Insn::MulI => IBinKind::Mul,
                        Insn::And => IBinKind::And,
                        Insn::Or => IBinKind::Or,
                        Insn::Xor => IBinKind::Xor,
                        Insn::Shl => IBinKind::Shl,
                        _ => IBinKind::Shr,
                    };
                    let b2 = ss.pop()?;
                    let a2 = ss.pop()?;
                    let p = ss.len();
                    let a = src_of(a2, p);
                    let b = src_of(b2, p + 1);
                    // Peephole: when the previous op's result slot was
                    // just popped here it has no other reader (canonical
                    // slots are only referenced from their own stack
                    // position), so the pair fuses with the intermediate
                    // kept virtual. `feed` reports which operand consumes
                    // it and hands back the other one.
                    let feed = |d0: u16| -> Option<(Src, bool)> {
                        if (d0 as usize) < nlocals {
                            None
                        } else if a == d0 {
                            Some((b, true))
                        } else if b == d0 {
                            Some((a, false))
                        } else {
                            None
                        }
                    };
                    let replacement = match ops.last() {
                        Some(&Op::IBin {
                            kind: k1,
                            dst: d0,
                            a: a1,
                            b: b1,
                        }) => feed(d0).map(|(c, t_left)| Op::IBin2 {
                            k1,
                            a1,
                            b1,
                            k2: kind,
                            c,
                            t_left,
                            dst: canon(p),
                        }),
                        Some(&Op::ALoad {
                            dst: d0,
                            arr,
                            idx,
                            charge,
                        }) => feed(d0).map(|(c, t_left)| Op::ALoadIBin {
                            arr,
                            idx,
                            k2: kind,
                            c,
                            t_left,
                            dst: canon(p),
                            charge,
                        }),
                        _ => None,
                    };
                    match replacement {
                        Some(op) => {
                            ops.pop();
                            ops.push(op);
                        }
                        None => ops.push(Op::IBin {
                            kind,
                            dst: canon(p),
                            a,
                            b,
                        }),
                    }
                    ss.push(Sym::Slot);
                }
                Insn::DivI | Insn::RemI => {
                    let b2 = ss.pop()?;
                    let a2 = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::DivI {
                        rem: matches!(insn, Insn::RemI),
                        dst: canon(p),
                        a: src_of(a2, p),
                        b: src_of(b2, p + 1),
                        charge: std::mem::take(&mut pend),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::AddF | Insn::SubF | Insn::MulF | Insn::DivF => {
                    let kind = match insn {
                        Insn::AddF => FBinKind::Add,
                        Insn::SubF => FBinKind::Sub,
                        Insn::MulF => FBinKind::Mul,
                        _ => FBinKind::Div,
                    };
                    let b2 = ss.pop()?;
                    let a2 = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::FBin {
                        kind,
                        dst: canon(p),
                        a: src_of(a2, p),
                        b: src_of(b2, p + 1),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::NegI | Insn::NegF | Insn::Not | Insn::I2F | Insn::F2I => {
                    let v = ss.pop()?;
                    let p = ss.len();
                    let src = src_of(v, p);
                    let dst = canon(p);
                    ops.push(match insn {
                        Insn::NegI => Op::NegI { dst, src },
                        Insn::NegF => Op::NegF { dst, src },
                        Insn::Not => Op::NotI { dst, src },
                        Insn::I2F => Op::I2F { dst, src },
                        _ => Op::F2I { dst, src },
                    });
                    ss.push(Sym::Slot);
                }
                Insn::EqI | Insn::LtI | Insn::LeI => {
                    let kind = match insn {
                        Insn::EqI => CmpIKind::Eq,
                        Insn::LtI => CmpIKind::Lt,
                        _ => CmpIKind::Le,
                    };
                    let b2 = ss.pop()?;
                    let a2 = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::CmpI {
                        kind,
                        dst: canon(p),
                        a: src_of(a2, p),
                        b: src_of(b2, p + 1),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::EqF | Insn::LtF | Insn::LeF => {
                    let kind = match insn {
                        Insn::EqF => CmpFKind::Eq,
                        Insn::LtF => CmpFKind::Lt,
                        _ => CmpFKind::Le,
                    };
                    let b2 = ss.pop()?;
                    let a2 = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::CmpF {
                        kind,
                        dst: canon(p),
                        a: src_of(a2, p),
                        b: src_of(b2, p + 1),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::Jmp(t) => {
                    materialize_all(&mut ss, &mut ops);
                    exit = Some(Exit::Jmp {
                        target: *block_of.get(&(t as usize))?,
                        charge: std::mem::take(&mut pend),
                    });
                    break;
                }
                Insn::JmpIf(t) | Insn::JmpIfNot(t) => {
                    let cond_sym = ss.pop()?;
                    let cond = src_of(cond_sym, ss.len());
                    materialize_all(&mut ss, &mut ops);
                    let taken = *block_of.get(&(t as usize))?;
                    let fall = *block_of.get(&(i + 1))?;
                    let (if_true, if_false) = match insn {
                        Insn::JmpIf(_) => (taken, fall),
                        _ => (fall, taken),
                    };
                    // Peephole: fuse `cmp; branch` when the flag lives in
                    // the compare's just-popped canonical slot (dead past
                    // this exit — successors only read slots below their
                    // entry depth).
                    let fused = match ops.last() {
                        Some(&Op::CmpI { kind, dst, a, b })
                            if dst == cond && (cond as usize) >= nlocals =>
                        {
                            Some((kind, a, b))
                        }
                        _ => None,
                    };
                    exit = Some(match fused {
                        Some((kind, a, b)) => {
                            ops.pop();
                            Exit::BranchCmpI {
                                kind,
                                a,
                                b,
                                if_true,
                                if_false,
                                charge: std::mem::take(&mut pend),
                            }
                        }
                        None => Exit::Branch {
                            cond,
                            if_true,
                            if_false,
                            charge: std::mem::take(&mut pend),
                        },
                    });
                    break;
                }
                Insn::Call(fidx) => {
                    let callee = functions.get(fidx as usize)?;
                    let argc = callee.sig.params.len();
                    if ss.len() < argc {
                        return None;
                    }
                    let arg_syms = ss.split_off(ss.len() - argc);
                    let base = ss.len();
                    let args: Vec<Src> = arg_syms
                        .iter()
                        .enumerate()
                        .map(|(k, s)| src_of(*s, base + k))
                        .collect();
                    let dst = callee.sig.ret.map(|_| canon(ss.len()));
                    ops.push(Op::Call {
                        fidx,
                        args,
                        dst,
                        charge: std::mem::take(&mut pend),
                    });
                    if dst.is_some() {
                        ss.push(Sym::Slot);
                    }
                }
                Insn::HostCall(iidx) => {
                    let import = imports.get(iidx as usize)?;
                    let argc = import.sig.params.len();
                    if ss.len() < argc {
                        return None;
                    }
                    let arg_syms = ss.split_off(ss.len() - argc);
                    let base = ss.len();
                    let args: Vec<Src> = arg_syms
                        .iter()
                        .enumerate()
                        .map(|(k, s)| src_of(*s, base + k))
                        .collect();
                    let dst = import.sig.ret.map(|_| canon(ss.len()));
                    ops.push(Op::HostCall {
                        iidx,
                        args,
                        dst,
                        charge: std::mem::take(&mut pend),
                    });
                    if dst.is_some() {
                        ss.push(Sym::Slot);
                    }
                }
                Insn::Ret => {
                    let src = match f.sig.ret {
                        Some(_) => {
                            let v = ss.pop()?;
                            Some(src_of(v, ss.len()))
                        }
                        None => None,
                    };
                    exit = Some(Exit::Ret {
                        src,
                        charge: std::mem::take(&mut pend),
                    });
                    break;
                }
                Insn::NewArr => {
                    let v = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::NewArr {
                        dst: canon(p),
                        len: src_of(v, p),
                        charge: std::mem::take(&mut pend),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::ALoad => {
                    let idx = ss.pop()?;
                    let arr = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::ALoad {
                        dst: canon(p),
                        arr: src_of(arr, p),
                        idx: src_of(idx, p + 1),
                        charge: std::mem::take(&mut pend),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::AStore => {
                    let val = ss.pop()?;
                    let idx = ss.pop()?;
                    let arr = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::AStore {
                        arr: src_of(arr, p),
                        idx: src_of(idx, p + 1),
                        val: src_of(val, p + 2),
                        charge: std::mem::take(&mut pend),
                    });
                }
                Insn::ALen => {
                    let v = ss.pop()?;
                    let p = ss.len();
                    ops.push(Op::ALen {
                        dst: canon(p),
                        arr: src_of(v, p),
                        charge: std::mem::take(&mut pend),
                    });
                    ss.push(Sym::Slot);
                }
                Insn::Trap(code) => {
                    exit = Some(Exit::Trap {
                        code,
                        charge: std::mem::take(&mut pend),
                    });
                    break;
                }
            }
        }
        let exit = match exit {
            Some(e) => e,
            None => {
                // Implicit fall-through into the next block.
                materialize_all(&mut ss, &mut ops);
                let next = *block_of.get(&end)?;
                Exit::Jmp {
                    target: next,
                    charge: std::mem::take(&mut pend),
                }
            }
        };
        blocks.push(Block { ops, exit });
    }

    // --- Phase 3: thread `Jmp` exits through empty blocks, folding the
    // bypassed exit's charge into the jump's (check-then-charge fuel makes
    // consecutive charges with no intervening effect associative, so the
    // exhaustion report is unchanged). Loop rotation falls out: a body's
    // back-edge lands straight on the head's fused compare-branch instead
    // of dispatching an empty block first.
    for b in 0..blocks.len() {
        for _ in 0..8 {
            let (target, charge) = match &blocks[b].exit {
                Exit::Jmp { target, charge } => (*target as usize, *charge),
                _ => break,
            };
            if target == b || !blocks[target].ops.is_empty() {
                break;
            }
            let mut threaded = blocks[target].exit.clone();
            *threaded.charge_mut() += charge;
            blocks[b].exit = threaded;
        }
    }

    // --- Phase 4: carry a trailing integer binop into a fused
    // compare-branch exit (the loop-closing `i = i + 1; branch i < n`
    // back-edge threading just created). Pure op motion — the write still
    // precedes the compare — so it is unconditionally safe.
    for blk in &mut blocks {
        if let Exit::BranchCmpI {
            kind,
            a,
            b,
            if_true,
            if_false,
            charge,
        } = blk.exit
        {
            if let Some(&Op::IBin {
                kind: k0,
                dst: d,
                a: a0,
                b: b0,
            }) = blk.ops.last()
            {
                blk.ops.pop();
                blk.exit = Exit::IBinBranchCmpI {
                    k0,
                    a0,
                    b0,
                    d,
                    kind,
                    a,
                    b,
                    if_true,
                    if_false,
                    charge,
                };
            }
        }
    }

    Some(CompiledFn {
        nregs,
        consts,
        blocks,
    })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Fuel, cancellation, and usage accounting for a compiled run. The
/// charge discipline reproduces the interpreter's observable behaviour:
/// on success `usage.instructions` equals the retired-instruction count;
/// on exhaustion the reported count is `initial_fuel + 1`, exactly what
/// the per-instruction interpreter reports.
struct Meter<'a> {
    usage: ResourceUsage,
    fuel: Option<u64>,
    /// Starting fuel; meaningful only when `fuel` is `Some`. Lets the
    /// retired count be derived (`fuel_initial - fuel_left`) instead of
    /// accumulated on every charge.
    fuel_initial: u64,
    /// Retired-instruction accumulator for unfuelled runs.
    acc: u64,
    cancel: Option<&'a CancelToken>,
    cancel_left: u64,
}

impl Meter<'_> {
    #[inline]
    fn charge(&mut self, cost: u64) -> Result<()> {
        if cost == 0 {
            return Ok(());
        }
        if let Some(left) = self.fuel.as_mut() {
            if *left < cost {
                // Retired-so-far (fuel_initial - left) + remaining + 1,
                // i.e. the count at which the per-instruction interpreter
                // discovers exhaustion.
                self.usage.instructions = self.fuel_initial + 1;
                return Err(JaguarError::ResourceLimit(format!(
                    "fuel exhausted after {} instructions",
                    self.usage.instructions
                )));
            }
            *left -= cost;
        } else {
            self.acc += cost;
        }
        if let Some(token) = self.cancel {
            self.cancel_left = self.cancel_left.saturating_sub(cost);
            if self.cancel_left == 0 {
                token.check()?;
                self.cancel_left = CANCEL_CHECK_INTERVAL;
            }
        }
        Ok(())
    }

    #[inline]
    fn retired(&self) -> u64 {
        match self.fuel {
            Some(left) => self.fuel_initial - left,
            None => self.acc,
        }
    }
}

/// Read an operand as raw bits. Register indices are `< nregs` by
/// construction (`canon` never exceeds `nlocals + max_depth`, constant
/// registers are bounded by the pool length, frames are sized to
/// `nregs`), so plain indexing suffices.
#[inline(always)]
fn rdv(regs: &[u64], s: Src) -> u64 {
    regs[s as usize]
}

/// Encode a typed value into its register bits.
#[inline]
fn enc(v: VmValue) -> u64 {
    match v {
        VmValue::I64(x) => x as u64,
        VmValue::F64(x) => x.to_bits(),
        VmValue::Bytes(b) => b.0 as u64,
    }
}

/// Decode register bits back into the typed value the verifier proved
/// they hold.
#[inline]
fn dec(t: VType, bits: u64) -> VmValue {
    match t {
        VType::I64 => VmValue::I64(bits as i64),
        VType::F64 => VmValue::F64(f64::from_bits(bits)),
        VType::Bytes => VmValue::Bytes(BytesRef(bits as u32)),
    }
}

#[inline(always)]
fn ibin(kind: IBinKind, a: i64, b: i64) -> i64 {
    match kind {
        IBinKind::Add => a.wrapping_add(b),
        IBinKind::Sub => a.wrapping_sub(b),
        IBinKind::Mul => a.wrapping_mul(b),
        IBinKind::And => a & b,
        IBinKind::Or => a | b,
        IBinKind::Xor => a ^ b,
        IBinKind::Shl => a.wrapping_shl(b as u32 & 63),
        IBinKind::Shr => a.wrapping_shr(b as u32 & 63),
    }
}

#[inline(always)]
fn cmp_i(kind: CmpIKind, a: i64, b: i64) -> bool {
    match kind {
        CmpIKind::Eq => a == b,
        CmpIKind::Lt => a < b,
        CmpIKind::Le => a <= b,
    }
}

fn default_local_bits(
    t: VType,
    arena: &mut Arena,
    empty_ref: &mut Option<BytesRef>,
) -> Result<u64> {
    Ok(match t {
        VType::I64 | VType::F64 => 0, // 0.0f64 is all-zero bits too
        VType::Bytes => {
            if empty_ref.is_none() {
                *empty_ref = Some(arena.alloc_zeroed(0)?);
            }
            empty_ref.expect("just set").0 as u64
        }
    })
}

/// Run `entry` through the compiled tier. Argument arity/types were
/// validated by the caller ([`Interpreter::invoke_resolved`]), identically
/// to the interpreted path.
///
/// Calls use heap-allocated frames (like the interpreter), never native
/// recursion, so the configured `max_call_depth` — however deep — cannot
/// overflow the host stack.
pub(crate) fn run_compiled(
    interp: &Interpreter,
    cm: &CompiledModule,
    entry: u32,
    args: Vec<VmValue>,
    arena: &mut Arena,
    host: &mut dyn HostEnv,
) -> Result<(Option<VmValue>, ResourceUsage)> {
    let mut m = Meter {
        usage: ResourceUsage {
            max_depth_seen: 1,
            ..ResourceUsage::default()
        },
        fuel: interp.limits().fuel,
        fuel_initial: interp.limits().fuel.unwrap_or(0),
        acc: 0,
        cancel: interp.cancel_ref(),
        cancel_left: CANCEL_CHECK_INTERVAL,
    };
    let mut empty_ref: Option<BytesRef> = None;
    let functions = interp.module().functions();
    let imports = interp.module().imports();
    let limits = interp.limits();

    // Build a frame: argument registers, then typed local defaults, then
    // zeroed stack/scratch registers (before any fuel is charged for the
    // callee, exactly like the interpreter's `make_locals`).
    let make_frame = |fidx: u32,
                      ret_dst: Option<u16>,
                      args: Vec<u64>,
                      arena: &mut Arena,
                      empty_ref: &mut Option<BytesRef>|
     -> Result<CFrame> {
        let cf = cm.funcs[fidx as usize]
            .as_ref()
            .ok_or(JaguarError::VmTrap(VmTrap::BadCall(fidx)))?;
        let f = &functions[fidx as usize];
        let mut regs: Vec<u64> = Vec::with_capacity(cf.nregs);
        regs.extend(args);
        for t in &f.local_types {
            regs.push(default_local_bits(*t, arena, empty_ref)?);
        }
        regs.resize(cf.nregs - cf.consts.len(), 0);
        regs.extend_from_slice(&cf.consts);
        Ok(CFrame {
            fidx,
            block: 0,
            op: 0,
            regs,
            ret_dst,
        })
    };

    let entry_args: Vec<u64> = args.into_iter().map(enc).collect();
    let mut frames: Vec<CFrame> = Vec::with_capacity(8);
    frames.push(make_frame(entry, None, entry_args, arena, &mut empty_ref)?);

    /// What ends a frame-execution burst.
    enum Transfer {
        Push {
            fidx: u32,
            args: Vec<u64>,
            ret_dst: Option<u16>,
        },
        Return(Option<u64>),
    }

    'vm: loop {
        let depth = frames.len();
        let transfer: Transfer = {
            let frame = frames.last_mut().expect("at least one frame");
            let cf = cm.funcs[frame.fidx as usize]
                .as_ref()
                .ok_or(JaguarError::VmTrap(VmTrap::BadCall(frame.fidx)))?;
            let mut block = frame.block;
            let mut start = frame.op;
            'burst: loop {
                let blk = &cf.blocks[block];
                let mut i = start;
                start = 0;
                // Self-loop fast path: a single-op block whose exit is a
                // fused compare-branch back to itself is a counted source
                // loop. Running it in a dedicated tight loop keeps every
                // operand index in a local, so the optimizer hoists the
                // register bounds checks that the generic dispatch below
                // re-proves on every op. Op order, charge points, and trap
                // behaviour are exactly those of the generic arms.
                'fast: {
                    if i != 0 || blk.ops.len() != 1 {
                        break 'fast;
                    }
                    let &Exit::IBinBranchCmpI {
                        k0,
                        a0,
                        b0,
                        d,
                        kind,
                        a,
                        b,
                        if_true,
                        if_false,
                        charge,
                    } = &blk.exit
                    else {
                        break 'fast;
                    };
                    if if_true as usize != block {
                        break 'fast;
                    }
                    let regs = &mut frame.regs[..];
                    match blk.ops[0] {
                        Op::IBin2 {
                            k1,
                            a1,
                            b1,
                            k2,
                            c,
                            t_left,
                            dst,
                        } => loop {
                            let t = ibin(k1, regs[a1 as usize] as i64, regs[b1 as usize] as i64);
                            let cv = regs[c as usize] as i64;
                            let r = if t_left {
                                ibin(k2, t, cv)
                            } else {
                                ibin(k2, cv, t)
                            };
                            regs[dst as usize] = r as u64;
                            let v = ibin(k0, regs[a0 as usize] as i64, regs[b0 as usize] as i64);
                            regs[d as usize] = v as u64;
                            m.charge(charge)?;
                            if !cmp_i(kind, regs[a as usize] as i64, regs[b as usize] as i64) {
                                block = if_false as usize;
                                continue 'burst;
                            }
                        },
                        Op::ALoadIBin {
                            arr,
                            idx,
                            k2,
                            c,
                            t_left,
                            dst,
                            charge: lcharge,
                        } => loop {
                            m.charge(lcharge)?;
                            let ix = regs[idx as usize] as i64;
                            let r = BytesRef(regs[arr as usize] as u32);
                            let t = arena.load(r, ix)? as i64;
                            let cv = regs[c as usize] as i64;
                            let v = if t_left {
                                ibin(k2, t, cv)
                            } else {
                                ibin(k2, cv, t)
                            };
                            regs[dst as usize] = v as u64;
                            let v2 = ibin(k0, regs[a0 as usize] as i64, regs[b0 as usize] as i64);
                            regs[d as usize] = v2 as u64;
                            m.charge(charge)?;
                            if !cmp_i(kind, regs[a as usize] as i64, regs[b as usize] as i64) {
                                block = if_false as usize;
                                continue 'burst;
                            }
                        },
                        _ => {}
                    }
                }
                while i < blk.ops.len() {
                    let regs = &mut frame.regs[..];
                    match &blk.ops[i] {
                        Op::Copy { dst, src } => {
                            regs[*dst as usize] = rdv(regs, *src);
                        }
                        Op::IBin { kind, dst, a, b } => {
                            let r = ibin(*kind, rdv(regs, *a) as i64, rdv(regs, *b) as i64);
                            regs[*dst as usize] = r as u64;
                        }
                        Op::IBin2 {
                            k1,
                            a1,
                            b1,
                            k2,
                            c,
                            t_left,
                            dst,
                        } => {
                            let t = ibin(*k1, rdv(regs, *a1) as i64, rdv(regs, *b1) as i64);
                            let cv = rdv(regs, *c) as i64;
                            let r = if *t_left {
                                ibin(*k2, t, cv)
                            } else {
                                ibin(*k2, cv, t)
                            };
                            regs[*dst as usize] = r as u64;
                        }
                        Op::FBin { kind, dst, a, b } => {
                            let av = f64::from_bits(rdv(regs, *a));
                            let bv = f64::from_bits(rdv(regs, *b));
                            let r = match kind {
                                FBinKind::Add => av + bv,
                                FBinKind::Sub => av - bv,
                                FBinKind::Mul => av * bv,
                                FBinKind::Div => av / bv,
                            };
                            regs[*dst as usize] = r.to_bits();
                        }
                        Op::NegI { dst, src } => {
                            regs[*dst as usize] = (rdv(regs, *src) as i64).wrapping_neg() as u64;
                        }
                        Op::NegF { dst, src } => {
                            regs[*dst as usize] = (-f64::from_bits(rdv(regs, *src))).to_bits();
                        }
                        Op::NotI { dst, src } => {
                            regs[*dst as usize] = !(rdv(regs, *src) as i64) as u64;
                        }
                        Op::I2F { dst, src } => {
                            regs[*dst as usize] = ((rdv(regs, *src) as i64) as f64).to_bits();
                        }
                        Op::F2I { dst, src } => {
                            regs[*dst as usize] = (f64::from_bits(rdv(regs, *src)) as i64) as u64;
                        }
                        Op::CmpI { kind, dst, a, b } => {
                            let r = cmp_i(*kind, rdv(regs, *a) as i64, rdv(regs, *b) as i64);
                            regs[*dst as usize] = r as u64;
                        }
                        Op::CmpF { kind, dst, a, b } => {
                            let av = f64::from_bits(rdv(regs, *a));
                            let bv = f64::from_bits(rdv(regs, *b));
                            let r = match kind {
                                CmpFKind::Eq => av == bv,
                                CmpFKind::Lt => av < bv,
                                CmpFKind::Le => av <= bv,
                            };
                            regs[*dst as usize] = r as u64;
                        }
                        Op::DivI {
                            rem,
                            dst,
                            a,
                            b,
                            charge,
                        } => {
                            m.charge(*charge)?;
                            let av = rdv(regs, *a) as i64;
                            let bv = rdv(regs, *b) as i64;
                            if bv == 0 {
                                return Err(JaguarError::VmTrap(VmTrap::DivideByZero));
                            }
                            let r = if *rem {
                                av.wrapping_rem(bv)
                            } else {
                                av.wrapping_div(bv)
                            };
                            regs[*dst as usize] = r as u64;
                        }
                        Op::NewArr { dst, len, charge } => {
                            m.charge(*charge)?;
                            let len = rdv(regs, *len) as i64;
                            if len < 0 {
                                return Err(JaguarError::VmTrap(VmTrap::Bounds {
                                    index: len,
                                    len: 0,
                                }));
                            }
                            let r = arena.alloc_zeroed(len as usize)?;
                            regs[*dst as usize] = r.0 as u64;
                        }
                        Op::ALoad {
                            dst,
                            arr,
                            idx,
                            charge,
                        } => {
                            m.charge(*charge)?;
                            let idx = rdv(regs, *idx) as i64;
                            let r = BytesRef(rdv(regs, *arr) as u32);
                            regs[*dst as usize] = arena.load(r, idx)? as u64;
                        }
                        Op::ALoadIBin {
                            arr,
                            idx,
                            k2,
                            c,
                            t_left,
                            dst,
                            charge,
                        } => {
                            m.charge(*charge)?;
                            let idx = rdv(regs, *idx) as i64;
                            let r = BytesRef(rdv(regs, *arr) as u32);
                            let t = arena.load(r, idx)? as i64;
                            let cv = rdv(regs, *c) as i64;
                            let v = if *t_left {
                                ibin(*k2, t, cv)
                            } else {
                                ibin(*k2, cv, t)
                            };
                            regs[*dst as usize] = v as u64;
                        }
                        Op::AStore {
                            arr,
                            idx,
                            val,
                            charge,
                        } => {
                            m.charge(*charge)?;
                            let val = rdv(regs, *val) as i64;
                            let idx = rdv(regs, *idx) as i64;
                            let r = BytesRef(rdv(regs, *arr) as u32);
                            arena.store(r, idx, val as u8)?;
                        }
                        Op::ALen { dst, arr, charge } => {
                            m.charge(*charge)?;
                            let r = BytesRef(rdv(regs, *arr) as u32);
                            regs[*dst as usize] = arena.len(r)? as u64;
                        }
                        Op::Call {
                            fidx,
                            args,
                            dst,
                            charge,
                        } => {
                            m.charge(*charge)?;
                            if depth >= limits.max_call_depth {
                                return Err(JaguarError::ResourceLimit(format!(
                                    "call depth limit {} exceeded",
                                    limits.max_call_depth
                                )));
                            }
                            let argv: Vec<u64> = args.iter().map(|s| rdv(regs, *s)).collect();
                            frame.block = block;
                            frame.op = i + 1;
                            break 'burst Transfer::Push {
                                fidx: *fidx,
                                args: argv,
                                ret_dst: *dst,
                            };
                        }
                        Op::HostCall {
                            iidx,
                            args,
                            dst,
                            charge,
                        } => {
                            m.charge(*charge)?;
                            let import = imports
                                .get(*iidx as usize)
                                .ok_or(JaguarError::VmTrap(VmTrap::BadCall(*iidx as u32)))?;
                            if let Some(sec) = interp.security_ref() {
                                sec.check(&Permission::HostCall(import.name.clone()))?;
                            }
                            let argv: Vec<VmValue> = args
                                .iter()
                                .zip(&import.sig.params)
                                .map(|(s, t)| dec(*t, rdv(regs, *s)))
                                .collect();
                            m.usage.host_calls += 1;
                            let ret = host.host_call(&import.name, &argv, arena)?;
                            let regs = &mut frame.regs;
                            match (ret, import.sig.ret) {
                                (Some(v), Some(t)) if v.vtype() == t => {
                                    if let Some(dst) = dst {
                                        regs[*dst as usize] = enc(v);
                                    }
                                }
                                (None, None) => {}
                                (got, want) => {
                                    return Err(JaguarError::VmTrap(VmTrap::Host(format!(
                                        "host '{}' returned {:?}, import declares {:?}",
                                        import.name,
                                        got.map(|v| v.vtype()),
                                        want
                                    ))))
                                }
                            }
                        }
                    }
                    i += 1;
                }
                match &blk.exit {
                    Exit::Jmp { target, charge } => {
                        m.charge(*charge)?;
                        block = *target as usize;
                    }
                    Exit::Branch {
                        cond,
                        if_true,
                        if_false,
                        charge,
                    } => {
                        m.charge(*charge)?;
                        let c = rdv(&frame.regs, *cond) as i64;
                        block = if c != 0 { *if_true } else { *if_false } as usize;
                    }
                    Exit::BranchCmpI {
                        kind,
                        a,
                        b,
                        if_true,
                        if_false,
                        charge,
                    } => {
                        m.charge(*charge)?;
                        let regs = &frame.regs[..];
                        let holds = cmp_i(*kind, rdv(regs, *a) as i64, rdv(regs, *b) as i64);
                        block = if holds { *if_true } else { *if_false } as usize;
                    }
                    Exit::IBinBranchCmpI {
                        k0,
                        a0,
                        b0,
                        d,
                        kind,
                        a,
                        b,
                        if_true,
                        if_false,
                        charge,
                    } => {
                        let regs = &mut frame.regs[..];
                        let v = ibin(*k0, rdv(regs, *a0) as i64, rdv(regs, *b0) as i64);
                        regs[*d as usize] = v as u64;
                        m.charge(*charge)?;
                        let holds = cmp_i(*kind, rdv(regs, *a) as i64, rdv(regs, *b) as i64);
                        block = if holds { *if_true } else { *if_false } as usize;
                    }
                    Exit::Ret { src, charge } => {
                        m.charge(*charge)?;
                        let v = (*src).map(|s| rdv(&frame.regs, s));
                        break 'burst Transfer::Return(v);
                    }
                    Exit::Trap { code, charge } => {
                        m.charge(*charge)?;
                        return Err(JaguarError::VmTrap(VmTrap::Explicit(*code)));
                    }
                }
            }
        };
        match transfer {
            Transfer::Push {
                fidx,
                args,
                ret_dst,
            } => {
                frames.push(make_frame(fidx, ret_dst, args, arena, &mut empty_ref)?);
                m.usage.max_depth_seen = m.usage.max_depth_seen.max(frames.len());
            }
            Transfer::Return(v) => {
                frames.pop().expect("frame");
                match frames.last_mut() {
                    None => {
                        m.usage.instructions = m.retired();
                        m.usage.bytes_allocated = arena.allocated();
                        let ret = match (v, functions[entry as usize].sig.ret) {
                            (Some(bits), Some(t)) => Some(dec(t, bits)),
                            _ => None,
                        };
                        return Ok((ret, m.usage));
                    }
                    Some(caller) => {
                        if let Some(dst) = caller.ret_dst.take() {
                            let v = v.ok_or(JaguarError::VmTrap(VmTrap::Type(
                                "call returned no value",
                            )))?;
                            caller.regs[dst as usize] = v;
                        }
                    }
                }
            }
        }
        continue 'vm;
    }
}

/// One compiled call frame. `ret_dst` is where the *next* callee's result
/// lands in this frame's registers (set at `Call`, consumed at return).
struct CFrame {
    fidx: u32,
    block: usize,
    op: usize,
    regs: Vec<u64>,
    ret_dst: Option<u16>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{ArgValue, ExecMode, NoHost};
    use crate::isa::VType;
    use crate::module::{FuncSig, Function, HostImport, Module};
    use crate::resources::ResourceLimits;

    fn sum_loop_module() -> Arc<VerifiedModule> {
        let src = "module m\nfunc main(bytes, i64) -> i64\nlocals i64, i64\n\
                   top:\n  load 2\n  load 1\n  lti\n  jmpifnot done\n\
                   load 3\n  load 0\n  load 2\n  aload\n  addi\n  store 3\n\
                   load 2\n  consti 1\n  addi\n  store 2\n  jmp top\n\
                   done:\n  load 3\n  ret\nend\n";
        Arc::new(crate::asm::assemble(src).unwrap().verify().unwrap())
    }

    /// Satellite bugfix: two interpreters over one module share one plan —
    /// the fuser/encoder/compiler run once per module, not per statement.
    #[test]
    fn interpreters_share_one_plan_per_module() {
        let m = sum_loop_module();
        let a = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit);
        let b = Interpreter::new(
            Arc::clone(&m),
            ResourceLimits::default(),
            ExecMode::Baseline,
        );
        assert!(
            Arc::ptr_eq(a.plan(), b.plan()),
            "same module Arc must map to the same ModulePlan"
        );
        let other = sum_loop_module();
        let c = Interpreter::new(other, ResourceLimits::default(), ExecMode::Jit);
        assert!(
            !Arc::ptr_eq(a.plan(), c.plan()),
            "distinct module Arcs keep distinct plans"
        );
    }

    /// The compiled tier and both interpreter modes agree on results AND
    /// fuel, over a loop that exercises arrays, compares, and branches.
    #[test]
    fn compiled_tier_matches_interpreter_exactly() {
        let m = sum_loop_module();
        let data: Vec<u8> = (0..200u8).collect();
        let args = [
            ArgValue::Bytes(data.clone()),
            ArgValue::I64(data.len() as i64),
        ];
        let base = Interpreter::new(
            Arc::clone(&m),
            ResourceLimits::default(),
            ExecMode::Baseline,
        );
        let tier = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit)
            .with_tier_up(Some(0));
        let (rb, ub, _) = base.invoke("main", &args, &mut NoHost).unwrap();
        let (rt, ut, _) = tier.invoke("main", &args, &mut NoHost).unwrap();
        assert_eq!(rb, rt);
        assert_eq!(ub, ut, "usage must be identical across tiers");
        assert!(metrics().compiled_hits.get() > 0);
    }

    /// Fuel exhaustion reports the same instruction count and text in the
    /// compiled tier as in the baseline interpreter, for every budget.
    #[test]
    fn fuel_exhaustion_is_tier_independent() {
        let m = sum_loop_module();
        let data: Vec<u8> = (0..50u8).collect();
        for fuel in [1u64, 2, 3, 7, 50, 113, 200] {
            let limits = ResourceLimits::tight(fuel, 1 << 20);
            let args = [
                ArgValue::Bytes(data.clone()),
                ArgValue::I64(data.len() as i64),
            ];
            let base = Interpreter::new(Arc::clone(&m), limits, ExecMode::Baseline);
            let jit = Interpreter::new(Arc::clone(&m), limits, ExecMode::Jit);
            let tier =
                Interpreter::new(Arc::clone(&m), limits, ExecMode::Jit).with_tier_up(Some(0));
            let eb = base.invoke("main", &args, &mut NoHost).unwrap_err();
            let ej = jit.invoke("main", &args, &mut NoHost).unwrap_err();
            let et = tier.invoke("main", &args, &mut NoHost).unwrap_err();
            assert_eq!(eb.to_string(), ej.to_string(), "fuel={fuel}");
            assert_eq!(eb.to_string(), et.to_string(), "fuel={fuel}");
        }
    }

    /// A pre-cancelled token stops the compiled tier like the interpreter.
    #[test]
    fn compiled_tier_honours_cancellation() {
        let src = "module m\nfunc main() -> i64\n\
                   top:\n  jmp top\n  consti 0\n  ret\nend\n";
        let m = Arc::new(crate::asm::assemble(src).unwrap().verify().unwrap());
        let limits = ResourceLimits {
            fuel: None,
            memory: Some(1 << 20),
            max_call_depth: 8,
        };
        let mut interp = Interpreter::new(m, limits, ExecMode::Jit).with_tier_up(Some(0));
        let token = CancelToken::unbounded();
        token.cancel();
        interp.set_cancel(token);
        let e = interp.invoke("main", &[], &mut NoHost).unwrap_err();
        assert!(matches!(e, JaguarError::Cancelled(_)), "{e}");
    }

    /// Promotion hotness: below the threshold the interpreter runs; the
    /// call after the threshold takes the compiled tier.
    #[test]
    fn promotion_respects_threshold() {
        let m = sum_loop_module();
        let interp = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit)
            .with_tier_up(Some(3));
        let args = [ArgValue::Bytes(vec![1, 2, 3]), ArgValue::I64(3)];
        let before = metrics().compiled_hits.get();
        for _ in 0..3 {
            interp.invoke("main", &args, &mut NoHost).unwrap();
        }
        assert_eq!(
            metrics().compiled_hits.get(),
            before,
            "first N calls stay interpreted"
        );
        interp.invoke("main", &args, &mut NoHost).unwrap();
        assert_eq!(
            metrics().compiled_hits.get(),
            before + 1,
            "call N+1 must run compiled"
        );
    }

    /// Recursion: the compiled tier enforces the same call-depth limit
    /// with the same error text as the interpreter. Compiled frames live
    /// on the heap, so even infinite recursion is limit-bounded, never a
    /// native stack overflow.
    #[test]
    fn compiled_recursion_depth_matches_interpreter() {
        let f = Function {
            name: "main".into(),
            sig: FuncSig::new(vec![], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::Call(0), Insn::Ret],
        };
        let m = Arc::new(
            Module {
                name: "t".into(),
                imports: vec![],
                functions: vec![f],
            }
            .verify()
            .unwrap(),
        );
        let base = Interpreter::new(
            Arc::clone(&m),
            ResourceLimits::default(),
            ExecMode::Baseline,
        );
        let tier = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit)
            .with_tier_up(Some(0));
        let eb = base.invoke("main", &[], &mut NoHost).unwrap_err();
        let et = tier.invoke("main", &[], &mut NoHost).unwrap_err();
        assert_eq!(eb.to_string(), et.to_string());
        assert!(eb.to_string().contains("call depth limit"));
        assert!(tier.plan().compiled(&m).entry_runnable(0));
    }

    /// Host calls work from the compiled tier: security checked, counted,
    /// and return-validated exactly like the interpreter.
    #[test]
    fn compiled_host_calls_match_interpreter() {
        struct Doubler;
        impl HostEnv for Doubler {
            fn host_call(
                &mut self,
                name: &str,
                args: &[VmValue],
                _arena: &mut Arena,
            ) -> Result<Option<VmValue>> {
                assert_eq!(name, "double");
                Ok(Some(VmValue::I64(args[0].as_i64()? * 2)))
            }
        }
        let m = Arc::new(
            Module {
                name: "t".into(),
                imports: vec![HostImport {
                    name: "double".into(),
                    sig: FuncSig::new(vec![VType::I64], Some(VType::I64)),
                }],
                functions: vec![Function {
                    name: "main".into(),
                    sig: FuncSig::new(vec![], Some(VType::I64)),
                    local_types: vec![],
                    code: vec![Insn::ConstI(21), Insn::HostCall(0), Insn::Ret],
                }],
            }
            .verify()
            .unwrap(),
        );
        let base = Interpreter::new(
            Arc::clone(&m),
            ResourceLimits::default(),
            ExecMode::Baseline,
        );
        let tier = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit)
            .with_tier_up(Some(0));
        let (rb, ub, _) = base.invoke("main", &[], &mut Doubler).unwrap();
        let (rt, ut, _) = tier.invoke("main", &[], &mut Doubler).unwrap();
        assert_eq!(rb, rt);
        assert_eq!(ub, ut);
        assert_eq!(ut.host_calls, 1);

        // And the security manager still gates compiled host calls.
        let perms = Arc::new(crate::security::PermissionSet::deny_all("udf"));
        let gated = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit)
            .with_tier_up(Some(0))
            .with_security(perms);
        let e = gated.invoke("main", &[], &mut Doubler).unwrap_err();
        assert!(matches!(e, JaguarError::SecurityViolation(_)), "{e}");
    }

    /// Traps surface identically from the compiled tier: bounds, divide
    /// by zero, explicit traps, negative allocation.
    #[test]
    fn compiled_traps_match_interpreter() {
        let cases: Vec<Vec<Insn>> = vec![
            vec![Insn::ConstI(1), Insn::ConstI(0), Insn::DivI, Insn::Ret],
            vec![Insn::ConstI(-5), Insn::NewArr, Insn::ALen, Insn::Ret],
            vec![Insn::Trap(7)],
            vec![
                Insn::ConstI(3),
                Insn::NewArr,
                Insn::ConstI(99),
                Insn::ALoad,
                Insn::Ret,
            ],
        ];
        for code in cases {
            let mk = || {
                Arc::new(
                    Module {
                        name: "t".into(),
                        imports: vec![],
                        functions: vec![Function {
                            name: "main".into(),
                            sig: FuncSig::new(vec![], Some(VType::I64)),
                            local_types: vec![],
                            code: code.clone(),
                        }],
                    }
                    .verify()
                    .unwrap(),
                )
            };
            let m = mk();
            let base = Interpreter::new(
                Arc::clone(&m),
                ResourceLimits::default(),
                ExecMode::Baseline,
            );
            let tier = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit)
                .with_tier_up(Some(0));
            let eb = base.invoke("main", &[], &mut NoHost).unwrap_err();
            let et = tier.invoke("main", &[], &mut NoHost).unwrap_err();
            assert_eq!(eb.to_string(), et.to_string(), "{code:?}");
        }
    }

    /// Dropping the last module Arc releases its cache entry (no leak of
    /// plans for dead modules).
    #[test]
    fn plan_cache_entries_die_with_their_module() {
        let m = sum_loop_module();
        let plan = plan_for(&m);
        let weak_plan = Arc::downgrade(&plan);
        drop(plan);
        {
            let _keep = Interpreter::new(Arc::clone(&m), ResourceLimits::default(), ExecMode::Jit);
        }
        drop(m);
        // Trigger a sweep by inserting another module.
        let other = sum_loop_module();
        let _ = plan_for(&other);
        let _ = plan_for(&other);
        assert!(
            weak_plan.upgrade().is_none() || PLAN_CACHE.lock().unwrap().len() < 64,
            "dead modules must not accumulate plans"
        );
    }
}
