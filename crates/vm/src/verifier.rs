//! The JSM bytecode verifier.
//!
//! The analogue of the JVM's class-file verifier (§6.1: "the bytecode
//! verifier ... ensur\[es\] the proper format of loaded class files and the
//! well-typedness of their code"). Verification runs once at load time;
//! the interpreter then trusts the types, so the only *runtime* checks left
//! are the ones Java also pays for at runtime — array bounds, division by
//! zero, resource limits — which is exactly the cost model the paper's
//! Figure 7 measures.
//!
//! The algorithm is abstract interpretation over the operand stack:
//! a worklist propagates the stack *type* state through the control-flow
//! graph; merge points require identical states (JSM has no subtyping, so
//! equality is the join). A function verifies iff:
//!
//! * every instruction is structurally sound (local indices in range,
//!   jump targets inside the function, call targets existing),
//! * no path underflows the stack or exceeds [`MAX_STACK`],
//! * every operand has the exact type its instruction requires,
//! * control cannot fall off the end of the code,
//! * every `ret` leaves exactly the declared return value on the stack.

use jaguar_common::error::{JaguarError, Result};

use crate::isa::{Insn, VType};
use crate::module::{Function, Module, VerifiedModule};

/// Maximum verified operand-stack depth.
pub const MAX_STACK: usize = 4096;
/// Maximum local slots per function.
pub const MAX_LOCALS: usize = 65_535;

/// Verify a module, producing the only token the interpreter accepts.
pub fn verify(module: Module) -> Result<VerifiedModule> {
    // Duplicate function names would make name-based dispatch ambiguous.
    for (i, f) in module.functions.iter().enumerate() {
        if module.functions[..i].iter().any(|g| g.name == f.name) {
            return Err(err(&f.name, 0, "duplicate function name"));
        }
    }
    for f in &module.functions {
        verify_function(&module, f)?;
    }
    Ok(VerifiedModule::new_unchecked(module))
}

fn err(func: &str, pc: usize, msg: impl std::fmt::Display) -> JaguarError {
    JaguarError::Verification(format!("function '{func}' @{pc}: {msg}"))
}

fn verify_function(module: &Module, f: &Function) -> Result<()> {
    if f.total_locals() > MAX_LOCALS {
        return Err(err(&f.name, 0, "too many locals"));
    }
    if f.code.is_empty() {
        return Err(err(&f.name, 0, "empty code: control falls off the end"));
    }

    // Pass 1: structural checks on every instruction, reachable or not.
    for (pc, insn) in f.code.iter().enumerate() {
        match *insn {
            Insn::Load(i) | Insn::Store(i) if (i as usize) >= f.total_locals() => {
                return Err(err(&f.name, pc, format!("local {i} out of range")));
            }
            Insn::Jmp(t) | Insn::JmpIf(t) | Insn::JmpIfNot(t) if (t as usize) >= f.code.len() => {
                return Err(err(&f.name, pc, format!("jump target {t} out of range")));
            }
            Insn::Call(idx) if (idx as usize) >= module.functions.len() => {
                return Err(err(&f.name, pc, format!("call target {idx} undefined")));
            }
            Insn::HostCall(idx) if (idx as usize) >= module.imports.len() => {
                return Err(err(&f.name, pc, format!("host import {idx} undeclared")));
            }
            _ => {}
        }
    }

    // Pass 2: dataflow over the reachable CFG.
    let mut states: Vec<Option<Vec<VType>>> = vec![None; f.code.len()];
    let mut worklist: Vec<(usize, Vec<VType>)> = vec![(0, Vec::new())];

    while let Some((pc, stack)) = worklist.pop() {
        match &states[pc] {
            Some(existing) => {
                if *existing != stack {
                    return Err(err(
                        &f.name,
                        pc,
                        format!("inconsistent stack at merge point: {existing:?} vs {stack:?}"),
                    ));
                }
                continue; // already analysed with this state
            }
            None => states[pc] = Some(stack.clone()),
        }

        let mut s = stack;
        let insn = f.code[pc];
        // Helper closures for pops/pushes with typed errors.
        macro_rules! pop {
            ($want:expr) => {{
                let got = s.pop().ok_or_else(|| err(&f.name, pc, "stack underflow"))?;
                if got != $want {
                    return Err(err(
                        &f.name,
                        pc,
                        format!("expected {} on stack, found {}", $want.name(), got.name()),
                    ));
                }
            }};
        }
        macro_rules! pop_any {
            () => {{
                s.pop().ok_or_else(|| err(&f.name, pc, "stack underflow"))?
            }};
        }
        macro_rules! push {
            ($t:expr) => {{
                if s.len() >= MAX_STACK {
                    return Err(err(&f.name, pc, "operand stack too deep"));
                }
                s.push($t);
            }};
        }

        // `succ` collects the (target, state) pairs this insn flows into.
        let mut next: Vec<(usize, Vec<VType>)> = Vec::with_capacity(2);
        let mut fallthrough = true;

        match insn {
            Insn::ConstI(_) => push!(VType::I64),
            Insn::ConstF(_) => push!(VType::F64),
            Insn::Load(i) => {
                let t = f.local_type(i as usize).expect("checked in pass 1");
                push!(t);
            }
            Insn::Store(i) => {
                let t = f.local_type(i as usize).expect("checked in pass 1");
                pop!(t);
            }
            Insn::Pop => {
                pop_any!();
            }
            Insn::Dup => {
                let t = *s
                    .last()
                    .ok_or_else(|| err(&f.name, pc, "stack underflow"))?;
                push!(t);
            }
            Insn::Swap => {
                let a = pop_any!();
                let b = pop_any!();
                push!(a);
                push!(b);
            }
            Insn::AddI | Insn::SubI | Insn::MulI | Insn::DivI | Insn::RemI => {
                pop!(VType::I64);
                pop!(VType::I64);
                push!(VType::I64);
            }
            Insn::NegI | Insn::Not => {
                pop!(VType::I64);
                push!(VType::I64);
            }
            Insn::AddF | Insn::SubF | Insn::MulF | Insn::DivF => {
                pop!(VType::F64);
                pop!(VType::F64);
                push!(VType::F64);
            }
            Insn::NegF => {
                pop!(VType::F64);
                push!(VType::F64);
            }
            Insn::And | Insn::Or | Insn::Xor | Insn::Shl | Insn::Shr => {
                pop!(VType::I64);
                pop!(VType::I64);
                push!(VType::I64);
            }
            Insn::I2F => {
                pop!(VType::I64);
                push!(VType::F64);
            }
            Insn::F2I => {
                pop!(VType::F64);
                push!(VType::I64);
            }
            Insn::EqI | Insn::LtI | Insn::LeI => {
                pop!(VType::I64);
                pop!(VType::I64);
                push!(VType::I64);
            }
            Insn::EqF | Insn::LtF | Insn::LeF => {
                pop!(VType::F64);
                pop!(VType::F64);
                push!(VType::I64);
            }
            Insn::Jmp(t) => {
                next.push((t as usize, s.clone()));
                fallthrough = false;
            }
            Insn::JmpIf(t) | Insn::JmpIfNot(t) => {
                pop!(VType::I64);
                next.push((t as usize, s.clone()));
            }
            Insn::Call(idx) => {
                let callee = &module.functions[idx as usize].sig;
                for p in callee.params.iter().rev() {
                    pop!(*p);
                }
                if let Some(r) = callee.ret {
                    push!(r);
                }
            }
            Insn::HostCall(idx) => {
                let sig = &module.imports[idx as usize].sig;
                for p in sig.params.iter().rev() {
                    pop!(*p);
                }
                if let Some(r) = sig.ret {
                    push!(r);
                }
            }
            Insn::Ret => {
                if let Some(t) = f.sig.ret {
                    pop!(t);
                }
                if !s.is_empty() {
                    return Err(err(
                        &f.name,
                        pc,
                        format!("{} residual stack values at return", s.len()),
                    ));
                }
                fallthrough = false;
            }
            Insn::NewArr => {
                pop!(VType::I64);
                push!(VType::Bytes);
            }
            Insn::ALoad => {
                pop!(VType::I64);
                pop!(VType::Bytes);
                push!(VType::I64);
            }
            Insn::AStore => {
                pop!(VType::I64); // value
                pop!(VType::I64); // index
                pop!(VType::Bytes); // ref
            }
            Insn::ALen => {
                pop!(VType::Bytes);
                push!(VType::I64);
            }
            Insn::Trap(_) => {
                fallthrough = false;
            }
        }

        if fallthrough {
            if pc + 1 >= f.code.len() {
                return Err(err(&f.name, pc, "control falls off the end of the code"));
            }
            next.push((pc + 1, s));
        }
        worklist.extend(next);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FuncSig;

    fn module_with(f: Function) -> Module {
        Module {
            name: "t".into(),
            imports: vec![],
            functions: vec![f],
        }
    }

    fn func(sig: FuncSig, locals: Vec<VType>, code: Vec<Insn>) -> Function {
        Function {
            name: "main".into(),
            sig,
            local_types: locals,
            code,
        }
    }

    fn ok(code: Vec<Insn>) -> Result<VerifiedModule> {
        verify(module_with(func(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![],
            code,
        )))
    }

    #[test]
    fn trivial_function_verifies() {
        ok(vec![Insn::ConstI(1), Insn::Ret]).unwrap();
    }

    #[test]
    fn stack_underflow_rejected() {
        let e = ok(vec![Insn::AddI, Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("underflow"), "{e}");
    }

    #[test]
    fn type_mismatch_rejected() {
        let e = ok(vec![
            Insn::ConstF(1.0),
            Insn::ConstI(1),
            Insn::AddI,
            Insn::Ret,
        ])
        .unwrap_err();
        assert!(e.to_string().contains("expected i64"), "{e}");
    }

    #[test]
    fn wrong_return_type_rejected() {
        let e = ok(vec![Insn::ConstF(1.0), Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("expected i64"), "{e}");
    }

    #[test]
    fn residual_stack_at_return_rejected() {
        let e = ok(vec![Insn::ConstI(1), Insn::ConstI(2), Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("residual"), "{e}");
    }

    #[test]
    fn falling_off_the_end_rejected() {
        let e = ok(vec![Insn::ConstI(1)]).unwrap_err();
        assert!(e.to_string().contains("falls off"), "{e}");
    }

    #[test]
    fn empty_function_rejected() {
        let e = ok(vec![]).unwrap_err();
        assert!(e.to_string().contains("empty code"), "{e}");
    }

    #[test]
    fn bad_jump_target_rejected() {
        let e = ok(vec![Insn::Jmp(99), Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("jump target"), "{e}");
    }

    #[test]
    fn bad_local_rejected() {
        let e = ok(vec![Insn::Load(3), Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("local 3 out of range"), "{e}");
    }

    #[test]
    fn undefined_call_rejected() {
        let e = ok(vec![Insn::Call(7), Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("call target"), "{e}");
    }

    #[test]
    fn undeclared_host_import_rejected() {
        let e = ok(vec![Insn::HostCall(0), Insn::Ret]).unwrap_err();
        assert!(e.to_string().contains("host import"), "{e}");
    }

    #[test]
    fn branch_merge_with_consistent_stack_verifies() {
        // if (p0) r = 1 else r = 2; return r
        let f = func(
            FuncSig::new(vec![VType::I64], Some(VType::I64)),
            vec![],
            vec![
                Insn::Load(0),     // 0
                Insn::JmpIfNot(4), // 1
                Insn::ConstI(1),   // 2
                Insn::Jmp(5),      // 3
                Insn::ConstI(2),   // 4
                Insn::Ret,         // 5
            ],
        );
        verify(module_with(f)).unwrap();
    }

    #[test]
    fn branch_merge_with_inconsistent_stack_rejected() {
        // One arm pushes i64, the other f64, merging at Ret.
        let f = func(
            FuncSig::new(vec![VType::I64], Some(VType::I64)),
            vec![],
            vec![
                Insn::Load(0),     // 0
                Insn::JmpIfNot(4), // 1
                Insn::ConstI(1),   // 2
                Insn::Jmp(5),      // 3
                Insn::ConstF(2.0), // 4
                Insn::Ret,         // 5
            ],
        );
        let e = verify(module_with(f)).unwrap_err();
        assert!(e.to_string().contains("inconsistent stack"), "{e}");
    }

    #[test]
    fn loop_verifies() {
        // i = 10; while (i) { i = i - 1 } ; return 0
        let f = func(
            FuncSig::new(vec![], Some(VType::I64)),
            vec![VType::I64],
            vec![
                Insn::ConstI(10),  // 0
                Insn::Store(0),    // 1
                Insn::Load(0),     // 2  loop head
                Insn::JmpIfNot(8), // 3
                Insn::Load(0),     // 4
                Insn::ConstI(1),   // 5
                Insn::SubI,        // 6
                Insn::Store(0),    // 7 → falls to 8? no: loop back
                Insn::ConstI(0),   // 8
                Insn::Ret,         // 9
            ],
        );
        // fix: insert the back jump
        let mut f = f;
        f.code[7] = Insn::Store(0);
        f.code.insert(8, Insn::Jmp(2));
        // re-point the exit branch (target 8 is now 9)
        f.code[3] = Insn::JmpIfNot(9);
        verify(module_with(f)).unwrap();
    }

    #[test]
    fn array_ops_verify_and_type_check() {
        // return len(newarr(5))
        ok(vec![Insn::ConstI(5), Insn::NewArr, Insn::ALen, Insn::Ret]).unwrap();
        // aload on an i64 must fail
        let e = ok(vec![
            Insn::ConstI(5),
            Insn::ConstI(0),
            Insn::ALoad,
            Insn::Ret,
        ])
        .unwrap_err();
        assert!(e.to_string().contains("expected bytes"), "{e}");
    }

    #[test]
    fn call_signature_enforced() {
        let callee = Function {
            name: "callee".into(),
            sig: FuncSig::new(vec![VType::I64, VType::F64], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::ConstI(0), Insn::Ret],
        };
        let good = Function {
            name: "main".into(),
            sig: FuncSig::new(vec![], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::ConstI(1), Insn::ConstF(2.0), Insn::Call(0), Insn::Ret],
        };
        verify(Module {
            name: "t".into(),
            imports: vec![],
            functions: vec![callee.clone(), good],
        })
        .unwrap();

        let bad = Function {
            name: "main".into(),
            sig: FuncSig::new(vec![], Some(VType::I64)),
            local_types: vec![],
            code: vec![Insn::ConstF(2.0), Insn::ConstI(1), Insn::Call(0), Insn::Ret],
        };
        let e = verify(Module {
            name: "t".into(),
            imports: vec![],
            functions: vec![callee, bad],
        })
        .unwrap_err();
        assert!(e.to_string().contains("expected f64"), "{e}");
    }

    #[test]
    fn trap_is_terminal() {
        // Code after an unconditional trap need not be reachable-valid,
        // but the function must not fall off the end on the live path.
        ok(vec![Insn::Trap(1)]).unwrap();
    }

    #[test]
    fn dead_code_still_structurally_checked() {
        // The jump target 99 is in dead code but must still be rejected.
        let e = ok(vec![Insn::Trap(0), Insn::Jmp(99)]).unwrap_err();
        assert!(e.to_string().contains("jump target"), "{e}");
    }

    #[test]
    fn duplicate_function_names_rejected() {
        let f1 = func(FuncSig::new(vec![], None), vec![], vec![Insn::Ret]);
        let mut f2 = f1.clone();
        f2.code = vec![Insn::Ret];
        let e = verify(Module {
            name: "t".into(),
            imports: vec![],
            functions: vec![f1, f2],
        })
        .unwrap_err();
        assert!(e.to_string().contains("duplicate function"), "{e}");
    }

    #[test]
    fn void_function_with_clean_stack_verifies() {
        let f = func(FuncSig::new(vec![], None), vec![], vec![Insn::Ret]);
        verify(module_with(f)).unwrap();
    }

    #[test]
    fn swap_and_dup_typing() {
        // swap(i64, f64) leaves (f64, i64): add them as ints must fail.
        let e = ok(vec![
            Insn::ConstI(1),
            Insn::ConstF(2.0),
            Insn::Swap, // now stack: f64, i64 (top)
            Insn::AddI, // pops i64 then expects i64, finds f64 → error
            Insn::Ret,
        ])
        .unwrap_err();
        assert!(e.to_string().contains("expected i64"), "{e}");

        ok(vec![Insn::ConstI(1), Insn::Dup, Insn::AddI, Insn::Ret]).unwrap();
    }
}
