//! Fault injection for crash-recovery testing.
//!
//! A *crash point* is a named place in the commit path where a test can ask
//! the process to die abruptly (`abort`, no destructors, no buffered-write
//! flushing — as close to a power cut as a live process gets). Arming is by
//! environment variable so a harness can re-exec itself as the victim:
//!
//! ```text
//! JAGUAR_CRASH_POINT=wal.before_commit  → abort() when that point is hit
//! JAGUAR_TORN_TAIL=1                    → the next commit record is half-
//!                                         written (then abort), simulating
//!                                         a torn sector on the log tail
//! ```
//!
//! In production neither variable is set and every check is one cached
//! `Option<String>` comparison.

use std::sync::OnceLock;

/// Environment variable naming the crash point to arm.
pub const CRASH_POINT_ENV: &str = "JAGUAR_CRASH_POINT";
/// Environment variable arming torn-tail simulation on the next commit.
pub const TORN_TAIL_ENV: &str = "JAGUAR_TORN_TAIL";

/// Every named crash point in the commit path, in execution order. The
/// crash-recovery harness iterates this list; keep it in sync with the
/// `crash_point` call sites.
pub const CRASH_POINTS: &[&str] = &[
    // After the Begin record is appended, before any page image.
    "wal.after_begin",
    // After the first page image, with later images still unwritten.
    "wal.mid_images",
    // All page images written, Commit record not yet written.
    "wal.before_commit",
    // Commit record written but not yet fsynced.
    "wal.after_commit_write",
    // Commit record fsynced — the transaction must survive recovery.
    "wal.after_commit_sync",
];

fn armed() -> Option<&'static str> {
    static ARMED: OnceLock<Option<String>> = OnceLock::new();
    ARMED
        .get_or_init(|| std::env::var(CRASH_POINT_ENV).ok())
        .as_deref()
}

/// Die here if this crash point is armed.
pub fn crash_point(name: &str) {
    if armed() == Some(name) {
        // abort(), not exit(): no atexit handlers, no Drop, no flush.
        eprintln!("jaguar-wal: crash point '{name}' armed, aborting");
        std::process::abort();
    }
}

/// Is torn-tail simulation armed? (Checked once per process.)
pub fn torn_tail_armed() -> bool {
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| std::env::var(TORN_TAIL_ENV).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_point_is_a_noop() {
        // The test process has no JAGUAR_CRASH_POINT set; surviving this
        // call is the assertion.
        for p in CRASH_POINTS {
            crash_point(p);
        }
        crash_point("not.a.point");
    }

    #[test]
    fn crash_points_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for p in CRASH_POINTS {
            assert!(p.starts_with("wal."), "{p}");
            assert!(seen.insert(p), "duplicate crash point {p}");
        }
    }
}
