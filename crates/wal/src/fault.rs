//! Fault injection for crash-recovery testing.
//!
//! The generic machinery — env-armed named crash points and in-process
//! fault sites — lives in [`jaguar_common::fault`] (it grew out of this
//! module and is now shared by `ipc` and `net` chaos tests). This module
//! keeps the WAL-specific pieces: the canonical crash-point list the
//! recovery harness iterates, and torn-tail simulation:
//!
//! ```text
//! JAGUAR_CRASH_POINT=wal.before_commit  → abort() when that point is hit
//! JAGUAR_TORN_TAIL=1                    → the next commit record is half-
//!                                         written (then abort), simulating
//!                                         a torn sector on the log tail
//! ```
//!
//! In production neither variable is set and every check is one cached
//! comparison.

use std::sync::OnceLock;

pub use jaguar_common::fault::{crash_point, CRASH_POINT_ENV};

/// Environment variable arming torn-tail simulation on the next commit.
pub const TORN_TAIL_ENV: &str = "JAGUAR_TORN_TAIL";

/// Every named crash point in the commit path, in execution order. The
/// crash-recovery harness iterates this list; keep it in sync with the
/// `crash_point` call sites.
pub const CRASH_POINTS: &[&str] = &[
    // After the Begin record is appended, before any page image.
    "wal.after_begin",
    // After the first page image, with later images still unwritten.
    "wal.mid_images",
    // All page images written, Commit record not yet written.
    "wal.before_commit",
    // Commit record written but not yet fsynced.
    "wal.after_commit_write",
    // Commit record fsynced — the transaction must survive recovery.
    "wal.after_commit_sync",
];

/// Is torn-tail simulation armed? (Checked once per process.)
pub fn torn_tail_armed() -> bool {
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| std::env::var(TORN_TAIL_ENV).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_crash_point_is_a_noop() {
        // The test process has no JAGUAR_CRASH_POINT set; surviving this
        // call is the assertion.
        for p in CRASH_POINTS {
            crash_point(p);
        }
        crash_point("not.a.point");
    }

    #[test]
    fn crash_points_are_unique_and_namespaced() {
        let mut seen = std::collections::HashSet::new();
        for p in CRASH_POINTS {
            assert!(p.starts_with("wal."), "{p}");
            assert!(seen.insert(p), "duplicate crash point {p}");
        }
    }
}
