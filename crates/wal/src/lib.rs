//! # jaguar-wal — write-ahead logging, checkpointing, crash recovery
//!
//! PREDATOR inherited durability from the Shore storage manager; this crate
//! is the equivalent substrate for `jaguar-storage`. It implements an
//! ARIES-lite, redo-only protocol:
//!
//! - **Physical redo.** Each committed statement logs the full after-image
//!   of every page it touched ([`record::WalRecord::PageImage`]), bracketed
//!   by `Begin`/`Commit` markers. Recovery replays images of *committed*
//!   transactions in LSN order and discards the rest.
//! - **No-steal, so no undo.** The buffer pool refuses to evict a dirty
//!   page whose latest mutation has not been logged (see
//!   [`jaguar_storage::WalHook`] and the unlogged-page tracking in
//!   `BufferPool`), so uncommitted data never reaches a data file and an
//!   undo pass is unnecessary. Pages keep that protection for the whole
//!   commit window: the commit path snapshots the unlogged set and retires
//!   it only after the `Commit` record is durable, so a concurrent query
//!   can never evict a mid-commit page.
//! - **WAL-before-data.** Before any dirty page is written back, the hook
//!   makes the log durable up to that page's LSN ([`Wal::barrier_durable`]);
//!   the barrier syncs in every mode except [`SyncMode::Off`].
//! - **Group commit.** Under [`SyncMode::Full`] concurrent committers share
//!   one `fdatasync`: the first becomes the leader and syncs, the rest wait
//!   on a condvar and are released together.
//! - **Checkpoint = flush + truncate.** A checkpoint syncs the log, flushes
//!   and syncs every data file, then truncates the log to a single
//!   `Checkpoint` record — bounding both log size and recovery time.
//!
//! The log format and torn-tail-tolerant reader live in [`record`]; named
//! crash points and torn-write simulation for the recovery harness live in
//! [`fault`]; the redo pass lives in [`recover`].

pub mod fault;
pub mod record;
pub mod recover;

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jaguar_common::config::{Config, SyncMode};
use jaguar_common::error::{JaguarError, Result};
use jaguar_common::obs;
use jaguar_common::retry::{self, RetryPolicy};
use jaguar_sec::PageCipher;
use jaguar_storage::page::set_page_lsn;
use jaguar_storage::{BufferPool, DiskManager, WalHook};
use parking_lot::{Condvar, Mutex, RwLock};

use record::{encode_frame, WalRecord};
pub use recover::RecoveryStats;

/// Name of the log file inside a database directory.
pub const WAL_FILE: &str = "wal.log";

struct WalInner {
    file: File,
    next_lsn: u64,
    log_bytes: u64,
    commits_since_checkpoint: u64,
}

struct SyncState {
    /// Highest LSN known to be on stable storage.
    durable_lsn: u64,
    /// A leader is currently running `fdatasync`.
    syncing: bool,
}

/// The write-ahead log of one database directory.
pub struct Wal {
    path: PathBuf,
    sync_mode: SyncMode,
    segment_bytes: u64,
    checkpoint_every: u64,
    inner: Mutex<WalInner>,
    /// Duplicated fd for fsync, so group commit never blocks appenders.
    sync_file: File,
    /// Highest LSN fully handed to the OS (readable without `inner`).
    appended_lsn: AtomicU64,
    sync_state: Mutex<SyncState>,
    sync_cv: Condvar,
    /// Commits hold this shared; checkpoint truncation holds it exclusive,
    /// so a log truncation can never delete half of an in-flight txn.
    txn_gate: RwLock<()>,
    next_txn: AtomicU64,
    /// When set, logged page images are transformed into their on-disk
    /// sealed (encrypted) form before hitting the log, so the log never
    /// carries plaintext row data and recovery can replay the bytes
    /// verbatim without the key.
    cipher: Option<Arc<dyn PageCipher>>,
}

impl Wal {
    /// Open the log for `dir`, first running crash recovery: committed page
    /// images in the existing log are replayed into the data files, the
    /// data files are synced, and the log is truncated. Returns the live
    /// log plus what recovery did (also mirrored to `wal.*` metrics).
    pub fn open(dir: &Path, config: &Config) -> Result<(Arc<Wal>, RecoveryStats)> {
        Wal::open_with_cipher(dir, config, None)
    }

    /// [`Wal::open`] for an encrypted database: future page images are
    /// sealed with `cipher` before being logged. Recovery itself needs no
    /// key — replayed images are already in on-disk form.
    pub fn open_with_cipher(
        dir: &Path,
        config: &Config,
        cipher: Option<Arc<dyn PageCipher>>,
    ) -> Result<(Arc<Wal>, RecoveryStats)> {
        let stats = recover::replay(dir, config.page_size)?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let sync_file = file.try_clone()?;
        let wal = Arc::new(Wal {
            path,
            sync_mode: config.sync_mode,
            segment_bytes: config.wal_segment_bytes,
            checkpoint_every: config.checkpoint_every,
            inner: Mutex::new(WalInner {
                file,
                next_lsn: stats.max_lsn + 1,
                log_bytes: 0,
                commits_since_checkpoint: 0,
            }),
            sync_file,
            appended_lsn: AtomicU64::new(stats.max_lsn),
            sync_state: Mutex::new(SyncState {
                durable_lsn: stats.max_lsn,
                syncing: false,
            }),
            sync_cv: Condvar::new(),
            txn_gate: RwLock::new(()),
            next_txn: AtomicU64::new(0),
            cipher,
        });
        // Everything replayed is in synced data files: start from an empty
        // log (plus a Checkpoint marker) rather than replaying again.
        wal.truncate_log()?;
        let reg = obs::global();
        reg.counter("wal.recovered_txns").add(stats.recovered_txns);
        reg.counter("wal.replayed_pages").add(stats.replayed_pages);
        Ok((wal, stats))
    }

    /// Path of the log file (used by tests to corrupt the tail).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Register this log as the buffer pool's WAL-before-data hook and
    /// enable unlogged-page tracking (no-steal) on the pool.
    pub fn attach(self: &Arc<Self>, pool: &BufferPool) {
        pool.set_wal_hook(Arc::new(PoolHook(Arc::clone(self))));
    }

    /// Current log size in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log_bytes
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.sync_state.lock().durable_lsn
    }

    /// Append one framed record under the append lock; returns its LSN.
    /// `stamp` runs with the LSN before the frame is encoded, letting the
    /// commit path write the LSN into the page image it is about to log.
    fn append_with(&self, make: impl FnOnce(u64) -> Result<WalRecord>) -> Result<u64> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        let rec = make(lsn)?;
        let frame = encode_frame(lsn, &rec);
        // The injected fault fires *before* any byte reaches the file, so a
        // failed append leaves no torn frame: the LSN is not consumed and
        // the log is byte-identical to before the call. Real `write_all`
        // errors are never retried — the frame may be partially on disk,
        // and re-driving it would interleave two copies (the torn-tail
        // reader in `record` then stops at the first bad frame anyway).
        RetryPolicy::storage().run("wal.append", retry::is_transient_storage, || {
            if jaguar_common::fault::should_fail("wal.append") {
                return Err(JaguarError::Io(std::io::Error::other(
                    "injected fault at wal.append",
                )));
            }
            inner.file.write_all(&frame).map_err(JaguarError::from)
        })?;
        inner.next_lsn = lsn + 1;
        inner.log_bytes += frame.len() as u64;
        if matches!(rec, WalRecord::Commit { .. }) {
            inner.commits_since_checkpoint += 1;
        }
        drop(inner);
        self.appended_lsn.fetch_max(lsn, Ordering::AcqRel);
        obs::global().counter("wal.bytes").add(frame.len() as u64);
        Ok(lsn)
    }

    /// Append a Commit record, honouring torn-tail simulation: when armed,
    /// only half the frame reaches the file before the process aborts —
    /// recovery must then treat the transaction as uncommitted.
    fn append_commit(&self, txn: u64) -> Result<u64> {
        if fault::torn_tail_armed() {
            let mut inner = self.inner.lock();
            let lsn = inner.next_lsn;
            let frame = encode_frame(lsn, &WalRecord::Commit { txn });
            inner.file.write_all(&frame[..frame.len() / 2])?;
            inner.file.sync_data()?;
            eprintln!("jaguar-wal: torn tail simulated, aborting");
            std::process::abort();
        }
        self.append_with(|_| Ok(WalRecord::Commit { txn }))
    }

    /// Log and commit every unlogged dirty page of `pool` as one
    /// transaction attributed to data file `file`. Returns the commit LSN,
    /// or `None` when there was nothing to commit.
    ///
    /// This is the WAL half of a statement commit: snapshot the pool's
    /// unlogged set, stamp each page with its record's LSN, append the
    /// images between `Begin`/`Commit` markers, make the commit durable
    /// per the configured [`SyncMode`], and only then retire the snapshot.
    /// The pages stay in the unlogged set — and therefore keep their
    /// no-steal protection — for the whole commit window, so a concurrent
    /// query can never evict one of them to a data file before the commit
    /// record is on stable storage.
    pub fn commit_table(&self, file: &str, pool: &Arc<BufferPool>) -> Result<Option<u64>> {
        let _gate = self.txn_gate.read();
        let pages = pool.snapshot_unlogged();
        if pages.is_empty() {
            return Ok(None);
        }
        let reg = obs::global();
        let span = obs::SpanTimer::new(reg.histogram("wal.commit_latency_us"));
        let result = (|| {
            let txn = self.next_txn.fetch_add(1, Ordering::Relaxed) + 1;
            self.append_with(|_| Ok(WalRecord::Begin { txn }))?;
            fault::crash_point("wal.after_begin");
            for (i, (pid, _gen)) in pages.iter().enumerate() {
                let handle = pool.fetch(*pid)?;
                let file = file.to_string();
                self.append_with(|lsn| {
                    let mut guard = handle.write_nolog();
                    set_page_lsn(&mut guard, lsn);
                    // The pool frame stays plaintext; only the logged copy
                    // is sealed, matching what write_page would persist so
                    // replay writes it verbatim.
                    let mut data = guard.clone();
                    if let Some(cipher) = &self.cipher {
                        DiskManager::seal_for_disk(cipher.as_ref(), *pid, &mut data);
                    }
                    Ok(WalRecord::PageImage {
                        txn,
                        file,
                        page: pid.0,
                        data,
                    })
                })?;
                if i == 0 {
                    fault::crash_point("wal.mid_images");
                }
            }
            fault::crash_point("wal.before_commit");
            let lsn = self.append_commit(txn)?;
            fault::crash_point("wal.after_commit_write");
            self.ensure_durable(lsn)?;
            fault::crash_point("wal.after_commit_sync");
            reg.counter("wal.commits").inc();
            Ok(lsn)
        })();
        drop(span);
        match result {
            Ok(lsn) => {
                // With the commit durable, the pages may give up their
                // no-steal protection. A page mutated since its image was
                // logged keeps it (its generation moved on) and is logged
                // again by the next commit.
                pool.commit_unlogged(&pages);
                Ok(Some(lsn))
            }
            // The pages never left the unlogged set, so their no-steal
            // protection is intact; nothing to restore.
            Err(e) => Err(e),
        }
    }

    /// Block until the log is durable at least up to `lsn` (group commit:
    /// one leader syncs for every waiter that arrived meanwhile). A no-op
    /// unless [`SyncMode::Full`] is configured — commits under `Normal`
    /// are left to the OS, to checkpoints, and to the write-back barrier.
    pub fn ensure_durable(&self, lsn: u64) -> Result<()> {
        if self.sync_mode != SyncMode::Full {
            return Ok(());
        }
        self.sync_to(lsn)
    }

    /// The WAL-before-data barrier: block until the log is durable at
    /// least up to `lsn` before a page stamped with that LSN may be
    /// written to its data file. Unlike the commit-path
    /// [`Wal::ensure_durable`], this syncs under [`SyncMode::Normal`] too —
    /// otherwise an evicted page could reach the data file while its log
    /// records still sit in OS buffers, and a power cut would persist
    /// effects that redo-only recovery cannot undo. Only the explicitly
    /// unsafe [`SyncMode::Off`] skips it.
    pub fn barrier_durable(&self, lsn: u64) -> Result<()> {
        if self.sync_mode == SyncMode::Off {
            return Ok(());
        }
        self.sync_to(lsn)
    }

    /// Group-commit sync loop shared by the commit path and the barrier.
    fn sync_to(&self, lsn: u64) -> Result<()> {
        let mut st = self.sync_state.lock();
        while st.durable_lsn < lsn {
            if st.syncing {
                self.sync_cv.wait(&mut st);
                continue;
            }
            st.syncing = true;
            drop(st);
            // Everything appended before this load rides along.
            let target = self.appended_lsn.load(Ordering::Acquire);
            // Fault-injectable group-commit fsync. The site is consulted on
            // every attempt: armed with a count, it models a transient
            // glitch the retry recovers from (the commit succeeds); armed
            // always-on, retries exhaust and the commit fails cleanly —
            // `durable_lsn` is not advanced, `syncing` is reset below, and
            // the next commit elects a fresh leader and succeeds.
            let res = RetryPolicy::storage().run("wal.fsync", retry::is_transient_storage, || {
                if jaguar_common::fault::should_fail("wal.fsync") {
                    return Err(JaguarError::Io(std::io::Error::other(
                        "injected fault at wal.fsync",
                    )));
                }
                self.sync_file.sync_data().map_err(JaguarError::from)
            });
            obs::global().counter("wal.fsyncs").inc();
            st = self.sync_state.lock();
            st.syncing = false;
            if res.is_ok() && target > st.durable_lsn {
                st.durable_lsn = target;
            }
            self.sync_cv.notify_all();
            res?;
        }
        Ok(())
    }

    /// Should the caller run a checkpoint? True once the log outgrows the
    /// configured segment size or enough commits have accumulated.
    pub fn should_checkpoint(&self) -> bool {
        let inner = self.inner.lock();
        inner.log_bytes >= self.segment_bytes
            || inner.commits_since_checkpoint >= self.checkpoint_every
    }

    /// Checkpoint: make the log durable, have `flush` write and sync every
    /// data file, then truncate the log. `flush` runs with new transactions
    /// excluded, so truncation can never orphan half a commit.
    pub fn checkpoint(&self, flush: impl FnOnce() -> Result<()>) -> Result<()> {
        let _gate = self.txn_gate.write();
        if self.sync_mode != SyncMode::Off {
            self.sync_file.sync_data()?;
            obs::global().counter("wal.fsyncs").inc();
        }
        flush()?;
        self.truncate_log()?;
        obs::global().counter("wal.checkpoints").inc();
        Ok(())
    }

    /// Reset the log to a single Checkpoint record.
    fn truncate_log(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.file.set_len(0)?;
        inner.file.seek(SeekFrom::Start(0))?;
        let lsn = inner.next_lsn;
        inner.next_lsn = lsn + 1;
        let frame = encode_frame(lsn, &WalRecord::Checkpoint);
        inner.file.write_all(&frame)?;
        inner.log_bytes = frame.len() as u64;
        inner.commits_since_checkpoint = 0;
        if self.sync_mode != SyncMode::Off {
            inner.file.sync_data()?;
        }
        drop(inner);
        self.appended_lsn.fetch_max(lsn, Ordering::AcqRel);
        self.sync_state.lock().durable_lsn = lsn;
        Ok(())
    }
}

/// Adapter giving the buffer pool WAL-before-data enforcement.
struct PoolHook(Arc<Wal>);

impl WalHook for PoolHook {
    fn before_page_write(&self, page_lsn: u64) -> Result<()> {
        self.0.barrier_durable(page_lsn)
    }
}

/// Validate a file id recorded in a page image: it must be a plain file
/// name inside the database directory, never a path that could escape it.
pub(crate) fn validate_file_id(file: &str) -> Result<()> {
    if file.is_empty()
        || file.contains('/')
        || file.contains('\\')
        || file.contains("..")
        || file.contains('\0')
    {
        return Err(JaguarError::Corruption(format!(
            "wal page image names suspicious file {file:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jaguar_common::ids::PageId;
    use jaguar_storage::DiskManager;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("jaguar-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Fault sites are process-global; tests that arm them (or append/sync,
    /// which consult them) run serialized.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn injected_transient_fsync_recovers_within_commit() {
        let _g = serial();
        let dir = tmpdir("fsync-transient");
        let mut config = cfg();
        config.sync_mode = SyncMode::Full;
        let (wal, _) = Wal::open(&dir, &config).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 8));
        wal.attach(&pool);
        let h = pool.allocate().unwrap();
        h.write()[10] = 1;
        drop(h);
        jaguar_common::fault::arm("wal.fsync", 1);
        // One injected fsync failure; the retry recovers and the commit
        // lands durably.
        let lsn = wal.commit_table("t.jag", &pool).unwrap().unwrap();
        jaguar_common::fault::disarm("wal.fsync");
        assert!(wal.durable_lsn() >= lsn);
    }

    #[test]
    fn injected_permanent_fsync_fails_commit_cleanly_then_next_succeeds() {
        let _g = serial();
        let dir = tmpdir("fsync-permanent");
        let mut config = cfg();
        config.sync_mode = SyncMode::Full;
        let (wal, _) = Wal::open(&dir, &config).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 8));
        wal.attach(&pool);
        let h = pool.allocate().unwrap();
        h.write()[10] = 2;
        drop(h);
        jaguar_common::fault::arm("wal.fsync", jaguar_common::fault::ALWAYS);
        let err = wal.commit_table("t.jag", &pool).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        jaguar_common::fault::disarm("wal.fsync");
        // Clean failure: the page kept its no-steal protection and the next
        // commit elects a fresh sync leader and succeeds.
        assert_eq!(pool.snapshot_unlogged().len(), 1);
        wal.commit_table("t.jag", &pool).unwrap().unwrap();
        // The log is consistent: a reopen-with-replay sees committed txns.
        drop(wal);
        let (_wal, stats) = Wal::open(&dir, &cfg()).unwrap();
        assert!(stats.recovered_txns >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_fault_leaves_log_untorn() {
        let _g = serial();
        let dir = tmpdir("append-fault");
        let (wal, _) = Wal::open(&dir, &cfg()).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 8));
        wal.attach(&pool);
        let h = pool.allocate().unwrap();
        h.write()[10] = 3;
        drop(h);
        let bytes_before = wal.log_bytes();
        jaguar_common::fault::arm("wal.append", jaguar_common::fault::ALWAYS);
        assert!(wal.commit_table("t.jag", &pool).is_err());
        jaguar_common::fault::disarm("wal.append");
        // The fault fires before any byte reaches the file: no torn frame.
        assert_eq!(wal.log_bytes(), bytes_before);
        wal.commit_table("t.jag", &pool).unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn cfg() -> Config {
        Config::default().with_page_size(256)
    }

    #[test]
    fn commit_and_replay_roundtrip() {
        let _g = serial();
        let dir = tmpdir("roundtrip");
        {
            let (wal, stats) = Wal::open(&dir, &cfg()).unwrap();
            assert_eq!(stats.recovered_txns, 0);
            let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
            let pool = Arc::new(BufferPool::new(disk, 8));
            wal.attach(&pool);
            let h = pool.allocate().unwrap();
            h.write()[64] = 42;
            drop(h);
            wal.commit_table("t.jag", &pool).unwrap().unwrap();
            // Simulate a crash: data file never flushed, log survives...
            // except the log was just truncated? No — commit appends after
            // open's truncation, so the images are present.
            assert!(wal.log_bytes() > 0);
        }
        // Wipe the data file to prove replay reconstructs it from the log.
        std::fs::write(dir.join("t.jag"), b"").unwrap();
        let (_wal, stats) = Wal::open(&dir, &cfg()).unwrap();
        assert_eq!(stats.recovered_txns, 1);
        assert!(stats.replayed_pages >= 1);
        let disk = DiskManager::open(&dir.join("t.jag"), 256).unwrap();
        let mut buf = vec![0u8; 256];
        disk.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[64], 42);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_txn_not_replayed() {
        let _g = serial();
        let dir = tmpdir("uncommitted");
        {
            let (wal, _) = Wal::open(&dir, &cfg()).unwrap();
            // Hand-write a Begin + PageImage with no Commit.
            let mut inner = wal.inner.lock();
            let mut page = vec![0u8; 256];
            page[100] = 9;
            for rec in [
                WalRecord::Begin { txn: 50 },
                WalRecord::PageImage {
                    txn: 50,
                    file: "u.jag".into(),
                    page: 0,
                    data: page,
                },
            ] {
                let lsn = inner.next_lsn;
                inner.next_lsn += 1;
                let frame = encode_frame(lsn, &rec);
                inner.file.write_all(&frame).unwrap();
                inner.log_bytes += frame.len() as u64;
            }
        }
        let (_wal, stats) = Wal::open(&dir, &cfg()).unwrap();
        assert_eq!(stats.recovered_txns, 0);
        assert_eq!(stats.replayed_pages, 0);
        assert!(
            !dir.join("u.jag").exists() || {
                let dm = DiskManager::open(&dir.join("u.jag"), 256).unwrap();
                dm.page_count() == 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_log() {
        let _g = serial();
        let dir = tmpdir("ckpt");
        let (wal, _) = Wal::open(&dir, &cfg()).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 8));
        wal.attach(&pool);
        for _ in 0..5 {
            let h = pool.allocate().unwrap();
            h.write()[10] = 1;
            drop(h);
            wal.commit_table("t.jag", &pool).unwrap();
        }
        let before = wal.log_bytes();
        wal.checkpoint(|| {
            pool.flush_all()?;
            disk.sync()
        })
        .unwrap();
        assert!(wal.log_bytes() < before);
        // Replays nothing: data already synced, log truncated.
        drop(wal);
        let (_wal, stats) = Wal::open(&dir, &cfg()).unwrap();
        assert_eq!(stats.replayed_pages, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn should_checkpoint_by_commit_count() {
        let _g = serial();
        let dir = tmpdir("every");
        let mut config = cfg();
        config.checkpoint_every = 2;
        let (wal, _) = Wal::open(&dir, &config).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 8));
        wal.attach(&pool);
        assert!(!wal.should_checkpoint());
        for _ in 0..2 {
            let h = pool.allocate().unwrap();
            h.write()[10] = 1;
            drop(h);
            wal.commit_table("t.jag", &pool).unwrap();
        }
        assert!(wal.should_checkpoint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_under_concurrency() {
        let _g = serial();
        let dir = tmpdir("group");
        let mut config = cfg();
        config.sync_mode = SyncMode::Full;
        let (wal, _) = Wal::open(&dir, &config).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 64));
        wal.attach(&pool);
        let mut threads = Vec::new();
        for _ in 0..4 {
            let wal = Arc::clone(&wal);
            let pool = Arc::clone(&pool);
            threads.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let h = pool.allocate().unwrap();
                    h.write()[10] = 7;
                    drop(h);
                    wal.commit_table("t.jag", &pool).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        // With batching, fsyncs can be far fewer than commits; correctness
        // here is that every commit survives a reopen-with-replay.
        drop(wal);
        let (_wal, stats) = Wal::open(&dir, &cfg()).unwrap();
        assert_eq!(stats.recovered_txns, 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn barrier_syncs_in_normal_mode() {
        let _g = serial();
        let dir = tmpdir("barrier");
        let mut config = cfg();
        config.sync_mode = SyncMode::Normal;
        let (wal, _) = Wal::open(&dir, &config).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 8));
        wal.attach(&pool);
        let h = pool.allocate().unwrap();
        h.write()[10] = 3;
        drop(h);
        let lsn = wal.commit_table("t.jag", &pool).unwrap().unwrap();
        // Normal mode: the commit itself does not fsync…
        assert!(wal.durable_lsn() < lsn, "commit must not sync in Normal");
        // …but the write-back barrier must, or an evicted page could hit
        // the data file ahead of its (still OS-buffered) log records.
        wal.barrier_durable(lsn).unwrap();
        assert!(wal.durable_lsn() >= lsn, "barrier must sync in Normal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_failure_keeps_no_steal_protection() {
        let _g = serial();
        let dir = tmpdir("failkeep");
        let (wal, _) = Wal::open(&dir, &cfg()).unwrap();
        let disk = Arc::new(DiskManager::open(&dir.join("t.jag"), 256).unwrap());
        let pool = Arc::new(BufferPool::new(disk, 8));
        wal.attach(&pool);
        let h = pool.allocate().unwrap();
        h.write()[10] = 1;
        drop(h);
        // Snapshot-based commit leaves the set intact until durability;
        // a successful commit retires it.
        assert_eq!(pool.snapshot_unlogged().len(), 1);
        wal.commit_table("t.jag", &pool).unwrap().unwrap();
        assert!(pool.snapshot_unlogged().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_id_validation() {
        assert!(validate_file_id("events.jag").is_ok());
        for bad in ["", "../x.jag", "a/b.jag", "a\\b.jag", "nul\0.jag"] {
            assert!(validate_file_id(bad).is_err(), "{bad:?}");
        }
    }
}
