//! Log record framing.
//!
//! The log is a flat sequence of frames:
//!
//! ```text
//! [u32 crc32][u32 len][payload: u64 lsn | u8 kind | body]
//! ```
//!
//! `crc32` (IEEE polynomial) covers the payload only; `len` is the payload
//! length. A reader walks frames from the start and stops at the first one
//! that is short, oversized, fails the CRC, or does not parse — everything
//! before that point is trusted, everything from it on is treated as a torn
//! tail from an interrupted write and ignored. This is what makes an
//! `abort()` (or power cut) mid-append safe: the tail simply does not exist.

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::stream::{read_blob, read_str, read_u32, read_u64, read_u8};
use jaguar_common::stream::{write_blob, write_str, write_u32, write_u64, write_u8};

/// Frames longer than this are treated as torn garbage rather than records;
/// a real payload is bounded by one page image plus small framing.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Bytes of framing preceding each payload (crc + len).
pub const FRAME_HEADER: usize = 8;

/// One logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction started.
    Begin { txn: u64 },
    /// A transaction's page images are all in the log; it is now committed.
    Commit { txn: u64 },
    /// Full after-image of one page of a table file (physical redo).
    PageImage {
        txn: u64,
        /// File name relative to the database directory (e.g. `events.jag`).
        /// Table ids are reassigned on restart, so the file name is the
        /// stable identity.
        file: String,
        page: u32,
        data: Vec<u8>,
    },
    /// All prior records are reflected in synced data files; written as the
    /// first record of a freshly truncated log.
    Checkpoint,
}

const KIND_BEGIN: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_PAGE_IMAGE: u8 = 3;
const KIND_CHECKPOINT: u8 = 4;

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Encode a record payload (lsn + kind + body), without framing.
pub fn encode_payload(lsn: u64, rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    // Writes to a Vec cannot fail.
    write_u64(&mut buf, lsn).expect("vec write");
    match rec {
        WalRecord::Begin { txn } => {
            write_u8(&mut buf, KIND_BEGIN).expect("vec write");
            write_u64(&mut buf, *txn).expect("vec write");
        }
        WalRecord::Commit { txn } => {
            write_u8(&mut buf, KIND_COMMIT).expect("vec write");
            write_u64(&mut buf, *txn).expect("vec write");
        }
        WalRecord::PageImage {
            txn,
            file,
            page,
            data,
        } => {
            write_u8(&mut buf, KIND_PAGE_IMAGE).expect("vec write");
            write_u64(&mut buf, *txn).expect("vec write");
            write_str(&mut buf, file).expect("vec write");
            write_u32(&mut buf, *page).expect("vec write");
            write_blob(&mut buf, data).expect("vec write");
        }
        WalRecord::Checkpoint => {
            write_u8(&mut buf, KIND_CHECKPOINT).expect("vec write");
        }
    }
    buf
}

/// Decode one payload produced by [`encode_payload`].
pub fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord)> {
    let mut r = payload;
    let lsn = read_u64(&mut r)?;
    let kind = read_u8(&mut r)?;
    let rec = match kind {
        KIND_BEGIN => WalRecord::Begin {
            txn: read_u64(&mut r)?,
        },
        KIND_COMMIT => WalRecord::Commit {
            txn: read_u64(&mut r)?,
        },
        KIND_PAGE_IMAGE => WalRecord::PageImage {
            txn: read_u64(&mut r)?,
            file: read_str(&mut r)?,
            page: read_u32(&mut r)?,
            data: read_blob(&mut r)?,
        },
        KIND_CHECKPOINT => WalRecord::Checkpoint,
        other => {
            return Err(JaguarError::Corruption(format!(
                "unknown wal record kind {other}"
            )))
        }
    };
    if !r.is_empty() {
        return Err(JaguarError::Corruption(format!(
            "wal record has {} trailing bytes",
            r.len()
        )));
    }
    Ok((lsn, rec))
}

/// Frame a record for appending: crc + len + payload.
pub fn encode_frame(lsn: u64, rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(lsn, rec);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Result of scanning a raw log image.
pub struct LogScan {
    /// Decoded records in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// Offset of the first byte *not* covered by a valid frame; everything
    /// from here to the end of the input is a torn tail (0 bytes if clean).
    pub valid_len: usize,
}

/// Walk frames from the start of `raw`, tolerating a torn tail: the scan
/// stops cleanly at the first short, oversized, CRC-failing, or unparsable
/// frame and never reads past the end of the input.
pub fn scan_log(raw: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut off = 0usize;
    while raw.len() - off >= FRAME_HEADER {
        let crc = u32::from_le_bytes(raw[off..off + 4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(raw[off + 4..off + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            break; // garbage length: torn or corrupt tail
        }
        let len = len as usize;
        let start = off + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= raw.len()) else {
            break; // frame extends past the file: torn tail
        };
        let payload = &raw[start..end];
        if crc32(payload) != crc {
            break; // bit flip or partial write
        }
        let Ok((lsn, rec)) = decode_payload(payload) else {
            break; // CRC matched but body malformed — treat as tail
        };
        records.push((lsn, rec));
        off = end;
    }
    LogScan {
        records,
        valid_len: off,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: 7 },
            WalRecord::PageImage {
                txn: 7,
                file: "events.jag".into(),
                page: 3,
                data: vec![0xAB; 256],
            },
            WalRecord::Commit { txn: 7 },
            WalRecord::Checkpoint,
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let mut log = Vec::new();
        for (i, rec) in sample_records().iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64 + 1, rec));
        }
        let scan = scan_log(&log);
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.records[1].0, 2);
        assert_eq!(scan.records[1].1, sample_records()[1]);
    }

    #[test]
    fn truncated_tail_stops_cleanly() {
        let mut log = Vec::new();
        for (i, rec) in sample_records().iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64, rec));
        }
        let full = log.len();
        // Chop bytes off the end one at a time: the scan must never panic
        // and must return only whole valid records.
        for cut in 1..=full.min(80) {
            let scan = scan_log(&log[..full - cut]);
            assert!(scan.records.len() <= 4);
            assert!(scan.valid_len <= full - cut);
        }
    }

    #[test]
    fn bit_flip_in_tail_record_drops_it() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(1, &WalRecord::Begin { txn: 1 }));
        let keep = log.len();
        log.extend_from_slice(&encode_frame(2, &WalRecord::Commit { txn: 1 }));
        log[keep + FRAME_HEADER + 2] ^= 0x40; // corrupt second payload
        let scan = scan_log(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
    }

    #[test]
    fn absurd_length_does_not_overread() {
        let mut log = encode_frame(1, &WalRecord::Checkpoint);
        // Forge a frame header declaring a huge payload.
        let keep = log.len();
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 16]);
        let scan = scan_log(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
    }

    #[test]
    fn unknown_kind_is_torn_tail() {
        let mut payload = encode_payload(5, &WalRecord::Checkpoint);
        *payload.last_mut().unwrap() = 99; // invalid kind, fix CRC to match
        let mut log = Vec::new();
        log.extend_from_slice(&crc32(&payload).to_le_bytes());
        log.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        log.extend_from_slice(&payload);
        let scan = scan_log(&log);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(scan_log(&[]).records.is_empty());
        assert!(scan_log(&[1, 2, 3]).records.is_empty());
        assert_eq!(scan_log(&[0u8; 7]).valid_len, 0);
    }
}
