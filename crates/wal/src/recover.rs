//! The redo pass.
//!
//! Recovery scans the log with the torn-tolerant reader, collects the set
//! of committed transactions, and replays their page images — in LSN order
//! — straight through [`DiskManager`] into the data files, extending files
//! as needed. Uncommitted transactions (no `Commit` record inside the valid
//! prefix) are discarded, which together with the pool's no-steal policy
//! yields statement atomicity without an undo pass.
//!
//! Replaying unconditionally (no page-LSN comparison) is correct because
//! every checkpoint truncates the log only after the data files are synced:
//! any image still in the log is at least as new as the corresponding data
//! page could legitimately be, and replaying in LSN order lands every page
//! on its final committed state. It also means recovery never needs to
//! *read* a data page — important, because a torn data-page write would
//! fail its checksum on read, but is simply overwritten here.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use jaguar_common::error::{JaguarError, Result};
use jaguar_common::ids::PageId;
use jaguar_storage::DiskManager;

use crate::record::{scan_log, WalRecord};
use crate::{validate_file_id, WAL_FILE};

/// What one recovery pass did.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Committed transactions whose effects were replayed.
    pub recovered_txns: u64,
    /// Page images written back into data files.
    pub replayed_pages: u64,
    /// Valid records scanned from the log (all kinds).
    pub scanned_records: u64,
    /// Bytes of torn/corrupt tail discarded.
    pub torn_bytes: u64,
    /// Highest LSN seen in the valid prefix (0 for an empty log).
    pub max_lsn: u64,
}

/// Replay the log under `dir` into its data files. Missing log = fresh
/// database = all-zero stats. Data files touched are synced before return.
pub fn replay(dir: &Path, page_size: usize) -> Result<RecoveryStats> {
    let mut stats = RecoveryStats::default();
    let Ok(raw) = std::fs::read(dir.join(WAL_FILE)) else {
        return Ok(stats);
    };
    let scan = scan_log(&raw);
    stats.scanned_records = scan.records.len() as u64;
    stats.torn_bytes = (raw.len() - scan.valid_len) as u64;
    stats.max_lsn = scan.records.iter().map(|(lsn, _)| *lsn).max().unwrap_or(0);

    let committed: HashSet<u64> = scan
        .records
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut replayed_txns: HashSet<u64> = HashSet::new();

    let mut disks: HashMap<String, Arc<DiskManager>> = HashMap::new();
    for (_lsn, rec) in &scan.records {
        let WalRecord::PageImage {
            txn,
            file,
            page,
            data,
        } = rec
        else {
            continue;
        };
        if !committed.contains(txn) {
            continue;
        }
        validate_file_id(file)?;
        if data.len() != page_size {
            return Err(JaguarError::Corruption(format!(
                "wal image for {file} page {page} is {} bytes but the \
                 configured page size is {page_size}",
                data.len()
            )));
        }
        let disk = match disks.get(file) {
            Some(d) => Arc::clone(d),
            None => {
                let d = Arc::new(DiskManager::open(&dir.join(file), page_size)?);
                disks.insert(file.clone(), Arc::clone(&d));
                d
            }
        };
        // The image may lie past the current end of a file whose extension
        // never reached disk; re-extend first.
        while disk.page_count() <= *page {
            disk.allocate_page()?;
        }
        let mut buf = data.clone();
        disk.write_page(PageId(*page), &mut buf)?;
        stats.replayed_pages += 1;
        replayed_txns.insert(*txn);
    }
    for disk in disks.values() {
        disk.sync()?;
    }
    stats.recovered_txns = replayed_txns.len() as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode_frame;
    use std::io::Write;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("jaguar-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_log(dir: &Path, records: &[(u64, WalRecord)]) {
        let mut f = std::fs::File::create(dir.join(WAL_FILE)).unwrap();
        for (lsn, rec) in records {
            f.write_all(&encode_frame(*lsn, rec)).unwrap();
        }
    }

    fn image(txn: u64, file: &str, page: u32, fill: u8, size: usize) -> WalRecord {
        let mut data = vec![0u8; size];
        data[64] = fill;
        WalRecord::PageImage {
            txn,
            file: file.into(),
            page,
            data,
        }
    }

    #[test]
    fn missing_log_is_fresh() {
        let dir = tmpdir("fresh");
        let stats = replay(&dir, 256).unwrap();
        assert_eq!(stats.scanned_records, 0);
        assert_eq!(stats.max_lsn, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_image_wins() {
        let dir = tmpdir("order");
        write_log(
            &dir,
            &[
                (1, WalRecord::Begin { txn: 1 }),
                (2, image(1, "t.jag", 0, 11, 256)),
                (3, WalRecord::Commit { txn: 1 }),
                (4, WalRecord::Begin { txn: 2 }),
                (5, image(2, "t.jag", 0, 22, 256)),
                (6, WalRecord::Commit { txn: 2 }),
            ],
        );
        let stats = replay(&dir, 256).unwrap();
        assert_eq!(stats.recovered_txns, 2);
        assert_eq!(stats.replayed_pages, 2);
        assert_eq!(stats.max_lsn, 6);
        let dm = DiskManager::open(&dir.join("t.jag"), 256).unwrap();
        let mut buf = vec![0u8; 256];
        dm.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[64], 22);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn page_size_mismatch_is_corruption() {
        let dir = tmpdir("size");
        write_log(
            &dir,
            &[
                (1, image(1, "t.jag", 0, 1, 128)),
                (2, WalRecord::Commit { txn: 1 }),
            ],
        );
        assert!(replay(&dir, 256).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_file_id_rejected() {
        let dir = tmpdir("hostile");
        write_log(
            &dir,
            &[
                (1, image(1, "../escape.jag", 0, 1, 256)),
                (2, WalRecord::Commit { txn: 1 }),
            ],
        );
        assert!(replay(&dir, 256).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_counted_and_ignored() {
        let dir = tmpdir("torn");
        write_log(
            &dir,
            &[
                (1, WalRecord::Begin { txn: 1 }),
                (2, image(1, "t.jag", 0, 5, 256)),
                (3, WalRecord::Commit { txn: 1 }),
            ],
        );
        // Append garbage simulating a torn write.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        let stats = replay(&dir, 256).unwrap();
        assert_eq!(stats.recovered_txns, 1);
        assert_eq!(stats.torn_bytes, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
