//! Property tests for the WAL record codec and the torn-tail-tolerant
//! reader: encode/decode round-trips for arbitrary records, and — the part
//! that matters for recovery — `scan_log` must stop cleanly at the last
//! valid record on truncated or bit-flipped input, never panic, never
//! over-read, never surface a record it cannot trust.

use jaguar_wal::record::{decode_payload, encode_frame, encode_payload, scan_log, WalRecord};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        any::<u64>().prop_map(|txn| WalRecord::Begin { txn }),
        any::<u64>().prop_map(|txn| WalRecord::Commit { txn }),
        Just(WalRecord::Checkpoint),
        (
            any::<u64>(),
            // The codec must round-trip any file string, including ones
            // recovery would later reject as hostile.
            ".{0,16}",
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..300),
        )
            .prop_map(|(txn, file, page, data)| WalRecord::PageImage {
                txn,
                file,
                page,
                data,
            }),
    ]
}

proptest! {
    #[test]
    fn payload_roundtrips(lsn in any::<u64>(), rec in arb_record()) {
        let payload = encode_payload(lsn, &rec);
        let (lsn2, rec2) = decode_payload(&payload).unwrap();
        prop_assert_eq!(lsn, lsn2);
        prop_assert_eq!(rec, rec2);
    }

    #[test]
    fn scan_recovers_all_records_of_a_clean_log(
        recs in proptest::collection::vec(arb_record(), 0..12),
    ) {
        let mut log = Vec::new();
        for (i, rec) in recs.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64, rec));
        }
        let scan = scan_log(&log);
        prop_assert_eq!(scan.valid_len, log.len());
        prop_assert_eq!(scan.records.len(), recs.len());
        for (i, (lsn, rec)) in scan.records.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64);
            prop_assert_eq!(rec, &recs[i]);
        }
    }

    #[test]
    fn truncated_tail_keeps_every_whole_frame(
        recs in proptest::collection::vec(arb_record(), 1..8),
        keep_frames in any::<u64>(),
        cut in any::<u64>(),
    ) {
        // A log of N frames, truncated somewhere inside frame K: the scan
        // must return exactly the K complete frames before the cut.
        let mut log = Vec::new();
        let mut offsets = vec![0usize];
        for (i, rec) in recs.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64, rec));
            offsets.push(log.len());
        }
        let whole = (keep_frames as usize) % recs.len();
        let frame_len = offsets[whole + 1] - offsets[whole];
        // Cut strictly inside frame `whole` (losing at least one byte).
        let cut_at = offsets[whole] + (cut as usize) % frame_len;
        let scan = scan_log(&log[..cut_at]);
        prop_assert_eq!(scan.records.len(), whole);
        prop_assert_eq!(scan.valid_len, offsets[whole]);
        for (i, (lsn, rec)) in scan.records.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64);
            prop_assert_eq!(rec, &recs[i]);
        }
    }

    #[test]
    fn bit_flip_never_panics_and_never_grows_the_scan(
        recs in proptest::collection::vec(arb_record(), 1..8),
        byte_pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut log = Vec::new();
        for (i, rec) in recs.iter().enumerate() {
            log.extend_from_slice(&encode_frame(i as u64, rec));
        }
        let pos = (byte_pos as usize) % log.len();
        log[pos] ^= 1 << bit;
        // Must not panic; must not read past the buffer; must not return
        // more records than were written; and every record *before* the
        // flipped byte is unaffected.
        let scan = scan_log(&log);
        prop_assert!(scan.valid_len <= log.len());
        prop_assert!(scan.records.len() <= recs.len());
        let mut offset = 0usize;
        for (i, (lsn, rec)) in scan.records.iter().enumerate() {
            let frame = encode_frame(i as u64, &recs[i]);
            if offset + frame.len() <= pos {
                prop_assert_eq!(*lsn, i as u64);
                prop_assert_eq!(rec, &recs[i]);
            }
            offset += frame.len();
        }
    }

    #[test]
    fn scan_is_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let scan = scan_log(&bytes);
        prop_assert!(scan.valid_len <= bytes.len());
        // Whatever survived must itself rescan identically (idempotence).
        let again = scan_log(&bytes[..scan.valid_len]);
        prop_assert_eq!(again.valid_len, scan.valid_len);
        prop_assert_eq!(again.records, scan.records);
    }

    #[test]
    fn decode_is_total_on_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Errors are fine; panics are not.
        let _ = decode_payload(&payload);
    }
}
