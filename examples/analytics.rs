//! Analytics tour: the SQL surface beyond the paper's benchmark —
//! aggregates, GROUP BY/HAVING/ORDER BY, DML, a B+Tree index, and a
//! sandboxed UDF feeding an aggregate.
//!
//! ```sh
//! cargo run --example analytics
//! ```

use jaguar_core::{ByteArray, DataType, Database, Tuple, UdfDesign, UdfSignature, Value};

fn main() -> jaguar_core::Result<()> {
    let db = Database::in_memory();
    db.execute(
        "CREATE TABLE requests (id INT, region VARCHAR, latency_us INT, payload BYTEARRAY)",
    )?;

    // Load a synthetic request log.
    let table = db.catalog().table("requests")?;
    let regions = ["us-east", "eu-west", "ap-south"];
    let mut rng = 0x5EEDu64;
    for i in 0..5_000i64 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let region = regions[(rng % 3) as usize];
        let latency = 100 + (rng % 900) as i64 + if region == "ap-south" { 400 } else { 0 };
        table.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Str(region.to_string()),
            Value::Int(latency),
            Value::Bytes(ByteArray::patterned(64, rng)),
        ]))?;
    }

    // An index turns the id point/range lookups into B+Tree probes.
    db.execute("CREATE INDEX requests_id ON requests (id)")?;
    println!(
        "point lookup plan:\n{}",
        db.explain("SELECT latency_us FROM requests WHERE id = 4321")?
    );

    // A sandboxed UDF scoring each payload, feeding a grouped aggregate.
    db.register_jagscript_udf(
        "entropyish",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        r#"
            fn main(b: bytes) -> i64 {
                // count byte-to-byte transitions as a cheap variety score
                let n: i64 = len(b);
                if n < 2 { return 0; }
                let changes: i64 = 0;
                let i: i64 = 1;
                while i < n {
                    if b[i] != b[i - 1] { changes = changes + 1; }
                    i = i + 1;
                }
                return (changes * 100) / (n - 1);
            }
        "#,
        UdfDesign::Sandboxed,
    )?;

    let report = db.execute(
        "SELECT region, COUNT(*) AS n, AVG(latency_us) AS avg_lat, \
                MAX(latency_us) AS worst, AVG(entropyish(payload)) AS variety \
         FROM requests \
         WHERE latency_us > 150 \
         GROUP BY region \
         HAVING n > 100 \
         ORDER BY avg_lat DESC",
    )?;
    println!("per-region latency report (slowest first):");
    for row in &report.rows {
        println!(
            "  {:8}  n={:5}  avg={:7.1}µs  worst={:4}µs  variety={:5.1}",
            row.get(0)?.as_str()?,
            row.get(1)?.as_int()?,
            row.get(2)?.as_float()?,
            row.get(3)?.as_int()?,
            row.get(4)?.as_float()?,
        );
    }
    println!(
        "  (sandboxed UDF ran {} times, {} VM instructions metered)",
        report.stats.udf_invocations, report.stats.vm_instructions
    );

    // DML: archive the slow region, then show the survivors.
    let deleted = db.execute("DELETE FROM requests WHERE region = 'ap-south'")?;
    db.execute("UPDATE requests SET latency_us = latency_us - 100 WHERE latency_us > 900")?;
    let left = db.execute("SELECT COUNT(*) FROM requests")?;
    println!(
        "archived {} ap-south rows; {} remain after latency adjustment",
        deleted.affected,
        left.rows[0].get(0)?.as_int()?
    );
    Ok(())
}
