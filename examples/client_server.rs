//! Two-tier deployment (paper §2.1 + §6.4): a server thread, a TCP client
//! that uploads a locally compiled UDF, queries through it, and finally
//! downloads the same bytecode to run it client-side.
//!
//! ```sh
//! cargo run --example client_server
//! ```

use jaguar_core::{Client, DataType, Database, UdfSignature, Value};

fn main() -> jaguar_core::Result<()> {
    // ---- server side ---------------------------------------------------
    let db = Database::in_memory();
    db.execute("CREATE TABLE sensors (id INT, trace BYTEARRAY)")?;
    db.execute(
        "INSERT INTO sensors VALUES \
         (1, X'0102030405'), (2, X'646464'), (3, X'FF00FF00')",
    )?;
    let server = db.serve("127.0.0.1:0")?;
    println!("server listening on {}", server.addr());

    // ---- client side ---------------------------------------------------
    let mut client = Client::connect(server.addr())?;
    client.ping()?;

    // Develop the UDF "at the client": compile JagScript locally, smoke
    // test the bytecode locally, then ship it. (§6.4: "define new Java
    // UDFs, test them at the client, and migrate them to the server".)
    let source = r#"
        fn main(trace: bytes) -> i64 {
            let peak: i64 = 0;
            let i: i64 = 0;
            while i < len(trace) {
                if trace[i] > peak { peak = trace[i]; }
                i = i + 1;
            }
            return peak;
        }
    "#;
    let sig = UdfSignature::new(vec![DataType::Bytes], DataType::Int);
    client.compile_and_register(
        "peak",
        &sig,
        source,
        Some(&[Value::Bytes(jaguar_core::ByteArray::new(vec![1, 9, 3]))]),
    )?;
    println!("UDF 'peak' compiled locally, verified and registered at the server");

    // Query through the uploaded UDF — executed server-side (Design 3).
    let result = client.execute("SELECT id, peak(trace) FROM sensors WHERE peak(trace) > 100")?;
    println!("rows with peak > 100 (server-side execution):");
    for row in &result.rows {
        println!(
            "  id={} peak={}",
            row.get(0)?.as_int()?,
            row.get(1)?.as_int()?
        );
    }
    println!(
        "  ({} UDF invocations at the server)",
        result.stats.udf_invocations
    );

    // Migrate the UDF back: identical bytecode, now running at the client.
    let mut local = client.fetch_udf("peak")?;
    let v = local.invoke(&[Value::Bytes(jaguar_core::ByteArray::new(vec![5, 250, 9]))])?;
    println!("client-side execution of the same bytecode: peak([5,250,9]) = {v}");

    client.quit()?;
    Ok(())
}
