//! Observability tour: `EXPLAIN ANALYZE` a UDF query, then dump the
//! process-wide metrics registry — a live version of the paper's Table 1.
//!
//! ```sh
//! cargo run --example explain_analyze
//! ```

use jaguar_core::{DataType, Database, UdfDesign, UdfSignature};

fn main() -> jaguar_core::Result<()> {
    let db = Database::in_memory();

    db.execute("CREATE TABLE readings (id INT, trace BYTEARRAY)")?;
    for i in 0..1000 {
        db.execute(&format!(
            "INSERT INTO readings VALUES ({i}, X'{:02X}{:02X}')",
            i % 256,
            (i * 7) % 256
        ))?;
    }

    // A sandboxed (Design 3) UDF: the paper's expensive predicate.
    db.register_jagscript_udf(
        "trace_sum",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        r#"
            fn main(trace: bytes) -> i64 {
                let sum: i64 = 0;
                let i: i64 = 0;
                while i < len(trace) { sum = sum + trace[i]; i = i + 1; }
                return sum;
            }
        "#,
        UdfDesign::Sandboxed,
    )?;

    let sql = "SELECT id, trace_sum(trace) FROM readings \
               WHERE trace_sum(trace) > 300 ORDER BY id LIMIT 5";

    println!("=== EXPLAIN ANALYZE {sql}\n");
    println!("{}", db.explain_analyze(sql)?);

    println!("=== Database::metrics() snapshot\n");
    let m = db.metrics();
    print!("{m}");

    // The counters EXPLAIN ANALYZE's per-operator view summarises.
    assert!(m.counter("udf.invocations.jsm") > 0);
    assert!(m.counter("sql.queries") > 0);
    Ok(())
}
