//! The paper's §3.1 example — `REDNESS(I)`, the fraction of red pixels in
//! an image — run under three execution designs, with wall-clock timing:
//!
//! * Design 1 (`C++`)  — trusted native Rust in the server process,
//! * Design 2 (`IC++`) — native code in an isolated worker process,
//! * Design 3 (`JSM`)  — sandboxed bytecode in the server process.
//!
//! ```sql
//! SELECT * FROM Sunsets S WHERE REDNESS(S.picture) > 70 AND S.location = 'fingerlakes'
//! ```
//!
//! Run with `--release` to see the designs' relative costs clearly. The
//! isolated design needs the worker binary: `cargo build -p jaguar-udf`
//! first (the example skips it otherwise).

use std::time::Instant;

use jaguar_core::{
    ByteArray, DataType, Database, Tuple, UdfDef, UdfDesign, UdfImpl, UdfSignature, Value,
};

/// A fake image: a byte per pixel, "red" = value above 200.
fn picture(seed: u64, red_fraction: f64, pixels: usize) -> ByteArray {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(pixels);
    for _ in 0..pixels {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let roll = (state % 1000) as f64 / 1000.0;
        out.push(if roll < red_fraction { 230 } else { 40 });
    }
    ByteArray::new(out)
}

const REDNESS_JAGSCRIPT: &str = r#"
    fn main(picture: bytes) -> i64 {
        let red: i64 = 0;
        let i: i64 = 0;
        let n: i64 = len(picture);
        if n == 0 { return 0; }
        while i < n {
            if picture[i] > 200 { red = red + 1; }
            i = i + 1;
        }
        return (red * 100) / n;
    }
"#;

fn redness_native(
    args: &[Value],
    _cb: &mut dyn jaguar_core::CallbackHandler,
) -> jaguar_core::Result<Value> {
    let pic = args[0].as_bytes()?;
    if pic.is_empty() {
        return Ok(Value::Int(0));
    }
    let red = pic.as_slice().iter().filter(|&&p| p > 200).count() as i64;
    Ok(Value::Int(red * 100 / pic.len() as i64))
}

fn setup() -> jaguar_core::Result<Database> {
    let db = Database::in_memory();
    db.execute("CREATE TABLE sunsets (id INT, location VARCHAR, picture BYTEARRAY)")?;
    let table = db.catalog().table("sunsets")?;
    let locations = ["fingerlakes", "adirondacks", "catskills"];
    for i in 0..300i64 {
        let red = if i % 3 == 0 { 0.8 } else { 0.2 };
        table.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Str(locations[(i % 3) as usize].to_string()),
            Value::Bytes(picture(i as u64, red, 4096)),
        ]))?;
    }
    Ok(db)
}

fn main() -> jaguar_core::Result<()> {
    let db = setup()?;
    let sig = UdfSignature::new(vec![DataType::Bytes], DataType::Int);
    let query = "SELECT id FROM sunsets S \
                 WHERE REDNESS(S.picture) > 70 AND S.location = 'fingerlakes'";

    // Design 1: trusted native.
    db.register_udf(UdfDef::new(
        "redness",
        sig.clone(),
        UdfImpl::Native(jaguar_udf::NativeUdf::new(
            "redness",
            sig.clone(),
            redness_native,
        )),
    ));
    let t = Instant::now();
    let native = db.execute(query)?;
    println!(
        "C++  (Design 1, trusted native):   {:4} matches in {:>9.3?}",
        native.rows.len(),
        t.elapsed()
    );

    // Design 3: sandboxed bytecode.
    db.register_jagscript_udf(
        "redness",
        sig.clone(),
        REDNESS_JAGSCRIPT,
        UdfDesign::Sandboxed,
    )?;
    let t = Instant::now();
    let sandboxed = db.execute(query)?;
    println!(
        "JSM  (Design 3, sandboxed VM):     {:4} matches in {:>9.3?}",
        sandboxed.rows.len(),
        t.elapsed()
    );
    assert_eq!(native.rows, sandboxed.rows, "designs must agree");

    // Design 2: isolated process, if the worker binary is available.
    // (The worker registry ships a generic byte-summing UDF set; REDNESS
    // itself is not baked into the worker, so reuse the VM module under
    // Design 4 instead — bytecode travels, native code does not. That
    // asymmetry is itself a finding of the paper.)
    match db.register_jagscript_udf(
        "redness",
        sig.clone(),
        REDNESS_JAGSCRIPT,
        UdfDesign::SandboxedIsolated,
    ) {
        Ok(()) => match db.execute(query) {
            Ok(isolated) => {
                let t = Instant::now();
                let isolated2 = db.execute(query)?;
                assert_eq!(isolated.rows, isolated2.rows);
                println!(
                    "IJSM (Design 4, isolated VM):      {:4} matches in {:>9.3?}",
                    isolated2.rows.len(),
                    t.elapsed()
                );
            }
            Err(e) => println!("IJSM (Design 4) skipped: {e}"),
        },
        Err(e) => println!("IJSM (Design 4) skipped: {e}"),
    }

    println!(
        "\nplan under the last registration:\n{}",
        db.explain(query)?
    );
    Ok(())
}
