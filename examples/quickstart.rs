//! Quickstart: create a database, load data, register a sandboxed UDF
//! written in JagScript, and query through it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use jaguar_core::{DataType, Database, UdfDesign, UdfSignature};

fn main() -> jaguar_core::Result<()> {
    let db = Database::in_memory();

    db.execute("CREATE TABLE readings (id INT, sensor VARCHAR, trace BYTEARRAY)")?;
    db.execute(
        "INSERT INTO readings VALUES \
         (1, 'north', X'0105090D11'), \
         (2, 'south', X'FFFEFDFC'), \
         (3, 'north', X'00000000'), \
         (4, 'east',  NULL)",
    )?;

    // A UDF authored by an (untrusted) user: the mean of a byte trace.
    // It compiles to verified bytecode and runs inside the sandbox with
    // bounds checks, fuel, and memory limits — the paper's Design 3.
    db.register_jagscript_udf(
        "trace_mean",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        r#"
            fn main(trace: bytes) -> i64 {
                let n: i64 = len(trace);
                if n == 0 { return 0; }
                let sum: i64 = 0;
                let i: i64 = 0;
                while i < n {
                    sum = sum + trace[i];
                    i = i + 1;
                }
                return sum / n;
            }
        "#,
        UdfDesign::Sandboxed,
    )?;

    println!(
        "plan:\n{}",
        db.explain("SELECT id, trace_mean(trace) FROM readings WHERE sensor = 'north'",)?
    );

    let result =
        db.execute("SELECT id, trace_mean(trace) AS mean FROM readings WHERE sensor = 'north'")?;
    println!(
        "columns: {:?}",
        result
            .schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>()
    );
    for row in &result.rows {
        println!("row: {row}");
    }
    println!(
        "stats: scanned {} rows, {} udf invocations",
        result.stats.rows_scanned, result.stats.udf_invocations
    );
    Ok(())
}
