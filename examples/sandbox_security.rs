//! The security story (paper §1 and §6): hostile or buggy UDFs must not
//! crash the server, exhaust its resources, or touch what they were not
//! granted. Each attack below is attempted and contained.
//!
//! ```sh
//! cargo run --example sandbox_security
//! ```

use jaguar_core::{Config, DataType, Database, JaguarError, UdfDesign, UdfSignature};

fn main() -> jaguar_core::Result<()> {
    let db = Database::with_config(Config {
        default_fuel: Some(2_000_000),
        default_vm_memory: Some(8 << 20),
        ..Config::default()
    });
    db.execute("CREATE TABLE t (a INT)")?;
    db.execute("INSERT INTO t VALUES (1), (2), (3)")?;
    let sig = UdfSignature::new(vec![], DataType::Int);

    // Attack 1: denial of service by infinite loop → stopped by fuel.
    db.register_jagscript_udf(
        "spin",
        sig.clone(),
        "fn main() -> i64 { while 1 { } return 0; }",
        UdfDesign::Sandboxed,
    )?;
    report("infinite loop", db.execute("SELECT spin() FROM t"));

    // Attack 2: memory bomb → stopped by the arena budget.
    db.register_jagscript_udf(
        "bomb",
        sig.clone(),
        "fn main() -> i64 {
             let i: i64 = 0;
             while 1 {
                 let waste: bytes = newbytes(1048576);
                 i = i + waste[0];
             }
             return i;
         }",
        UdfDesign::Sandboxed,
    )?;
    report("memory bomb", db.execute("SELECT bomb() FROM t"));

    // Attack 3: wild reads → stopped by bounds checks (Figure 7's cost,
    // §1's payoff: "this is a reasonable price to pay for security").
    db.register_jagscript_udf(
        "wild",
        sig.clone(),
        "fn main() -> i64 { let b: bytes = newbytes(4); return b[123456789]; }",
        UdfDesign::Sandboxed,
    )?;
    report("out-of-bounds read", db.execute("SELECT wild() FROM t"));

    // Attack 4: calling host functionality that was never granted →
    // rejected at *registration* (class-loader-style import gating).
    let denied = db.register_jagscript_udf(
        "exfiltrate",
        sig.clone(),
        "import read_secret_file(i64) -> i64;
         fn main() -> i64 { return read_secret_file(0); }",
        UdfDesign::Sandboxed,
    );
    match denied {
        Err(JaguarError::SecurityViolation(msg)) => {
            println!("unauthorized import    → rejected at load: {msg}")
        }
        other => println!("unauthorized import    → UNEXPECTED: {other:?}"),
    }

    // Attack 5: crash the process (Design 2's containment). The "crash"
    // UDF is native code in the worker binary that calls abort(); the
    // worker dies, the server does not.
    db.register_udf(jaguar_core::UdfDef::new(
        "crashy",
        sig.clone(),
        jaguar_core::UdfImpl::IsolatedNative {
            worker_fn: "crash".into(),
        },
    ));
    match db.execute("SELECT crashy() FROM t") {
        Err(e) => println!("worker process abort   → contained: {e}"),
        Ok(_) => println!("worker process abort   → UNEXPECTED success"),
    }

    // After every attack, the server still works.
    let survivors = db.execute("SELECT a FROM t WHERE a >= 1")?;
    println!(
        "\nserver survived all attacks; control query returned {} rows",
        survivors.rows.len()
    );
    Ok(())
}

fn report(what: &str, outcome: jaguar_core::Result<jaguar_core::QueryResult>) {
    match outcome {
        Err(e) => println!("{what:22} → contained: {e}"),
        Ok(_) => println!("{what:22} → UNEXPECTED success"),
    }
}
