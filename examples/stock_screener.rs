//! The paper's motivating scenario (§1): a stock-market database on the
//! web, where *"a valid user is any amateur investor with a web browser,
//! a credit card, and an investment formula InvestVal"*, running
//!
//! ```sql
//! SELECT * FROM Stocks S WHERE S.type = 'tech' AND InvestVal(S.history) > 5;
//! ```
//!
//! The user's formula arrives as JagScript, compiles to verified bytecode,
//! and runs sandboxed at the server. The example also shows the optimizer
//! placing the cheap `type = 'tech'` predicate before the expensive UDF.
//!
//! ```sh
//! cargo run --example stock_screener
//! ```

use jaguar_core::{ByteArray, DataType, Database, Tuple, UdfDesign, UdfSignature, Value};

/// Synthesise a price history: one byte per day, a noisy trend.
fn history(seed: u64, trend: i64, days: usize) -> ByteArray {
    let mut price: i64 = 100;
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(days);
    for _ in 0..days {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let noise = (state % 7) as i64 - 3;
        price = (price + trend + noise).clamp(1, 255);
        out.push(price as u8);
    }
    ByteArray::new(out)
}

fn main() -> jaguar_core::Result<()> {
    let db = Database::in_memory();
    db.execute("CREATE TABLE stocks (symbol VARCHAR, type VARCHAR, history BYTEARRAY)")?;

    let table = db.catalog().table("stocks")?;
    let rows = [
        ("RUST", "tech", 1),
        ("CPPX", "tech", -1),
        ("JAVA", "tech", 2),
        ("OILY", "energy", 3),
        ("GOLD", "mining", 0),
        ("WEBB", "tech", 1),
    ];
    for (i, (symbol, sector, trend)) in rows.iter().enumerate() {
        table.insert(Tuple::new(vec![
            Value::Str(symbol.to_string()),
            Value::Str(sector.to_string()),
            Value::Bytes(history(i as u64 + 7, *trend, 120)),
        ]))?;
    }

    // The amateur investor's formula: momentum = recent mean − older mean,
    // scaled. Entirely their own code; the server never trusts it.
    let investval = r#"
        fn window_mean(h: bytes, from: i64, to: i64) -> i64 {
            let sum: i64 = 0;
            let i: i64 = from;
            while i < to {
                sum = sum + h[i];
                i = i + 1;
            }
            if to == from { return 0; }
            return sum / (to - from);
        }

        fn main(h: bytes) -> i64 {
            let n: i64 = len(h);
            if n < 20 { return 0; }
            let recent: i64 = window_mean(h, n - 10, n);
            let older: i64 = window_mean(h, 0, 10);
            return recent - older;
        }
    "#;

    db.register_jagscript_udf(
        "InvestVal",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        investval,
        UdfDesign::Sandboxed,
    )?;

    let query = "SELECT symbol, InvestVal(S.history) AS score FROM stocks S \
         WHERE InvestVal(S.history) > 5 AND S.type = 'tech'";

    // The optimizer reorders: the cheap sector predicate runs first, so
    // the sandboxed UDF only sees tech stocks.
    println!("optimized plan:\n{}", db.explain(query)?);

    let result = db.execute(query)?;
    println!("tech stocks with InvestVal > 5:");
    for row in &result.rows {
        println!(
            "  {:6} score={}",
            row.get(0)?.as_str()?,
            row.get(1)?.as_int()?
        );
    }
    println!(
        "(scanned {} rows, ran the UDF {} times)",
        result.stats.rows_scanned, result.stats.udf_invocations
    );
    Ok(())
}
