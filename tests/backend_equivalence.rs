//! Cross-design equivalence: the same UDF, executed under every design of
//! the paper's Table 1, must produce identical results. This is the
//! correctness backbone of the whole performance study — Figures 5-8 only
//! make sense if the designs compute the same function.

use jaguar_core::{ByteArray, Config, Database, JaguarError, Tuple, Value};
use jaguar_ipc::find_worker_binary;
use jaguar_udf::generic::{
    def_isolated, def_isolated_vm, def_native, def_native_bc, def_native_sfi, def_vm,
    GenericParams, IdentityCallbacks,
};
use jaguar_vm::ResourceLimits;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping isolated designs: jaguar-worker not built (cargo build --workspace)");
        false
    } else {
        true
    }
}

fn invoke(def: &jaguar_udf::UdfDef, args: &[Value]) -> Value {
    let mut u = def.instantiate().expect("instantiate");
    let out = u.invoke(args, &mut IdentityCallbacks).expect("invoke");
    u.finish().expect("finish");
    out
}

#[test]
fn all_designs_compute_the_same_generic_udf() {
    let cases = [
        (0usize, GenericParams::default()),
        (
            100,
            GenericParams {
                data_indep_comps: 57,
                data_dep_comps: 2,
                callbacks: 3,
            },
        ),
        (
            1000,
            GenericParams {
                data_indep_comps: 0,
                data_dep_comps: 1,
                callbacks: 0,
            },
        ),
        (
            64,
            GenericParams {
                data_indep_comps: 1,
                data_dep_comps: 0,
                callbacks: 10,
            },
        ),
    ];
    let with_worker = worker_available();
    for (i, (bytes, params)) in cases.into_iter().enumerate() {
        let data = ByteArray::patterned(bytes, i as u64 + 1);
        let args = params.args(data);

        let expected = invoke(&def_native(), &args);
        assert_eq!(invoke(&def_native_bc(), &args), expected, "BC case {i}");
        assert_eq!(invoke(&def_native_sfi(), &args), expected, "SFI case {i}");
        assert_eq!(
            invoke(&def_vm(true, ResourceLimits::default()), &args),
            expected,
            "VM-jit case {i}"
        );
        assert_eq!(
            invoke(&def_vm(false, ResourceLimits::default()), &args),
            expected,
            "VM-baseline case {i}"
        );
        if with_worker {
            assert_eq!(invoke(&def_isolated(), &args), expected, "IC++ case {i}");
            assert_eq!(
                invoke(&def_isolated_vm(true, ResourceLimits::default()), &args),
                expected,
                "IJSM case {i}"
            );
        }
    }
}

#[test]
fn equivalence_on_randomized_parameters() {
    use jaguar_common::rng::SplitMix64;
    let mut rng = SplitMix64::new(2024);
    let with_worker = worker_available();
    for round in 0..8 {
        let bytes = rng.next_below(300) as usize;
        let params = GenericParams {
            data_indep_comps: rng.next_below(200) as i64,
            data_dep_comps: rng.next_below(4) as i64,
            callbacks: rng.next_below(6) as i64,
        };
        let data = ByteArray::patterned(bytes, rng.next_u64());
        let args = params.args(data);
        let expected = invoke(&def_native(), &args);
        assert_eq!(
            invoke(&def_vm(true, ResourceLimits::default()), &args),
            expected,
            "round {round}: vm vs native for {params:?} bytes={bytes}"
        );
        assert_eq!(
            invoke(&def_native_bc(), &args),
            expected,
            "round {round}: bc vs native"
        );
        assert_eq!(
            invoke(&def_native_sfi(), &args),
            expected,
            "round {round}: sfi vs native"
        );
        if with_worker && round % 4 == 0 {
            assert_eq!(
                invoke(&def_isolated(), &args),
                expected,
                "round {round}: isolated vs native"
            );
        }
    }
}

/// A SQL database with `rows` rows and every generic-UDF design
/// registered, configured for the given degree of parallelism.
fn sql_db(dop: usize, rows: usize) -> Database {
    sql_db_batch(dop, rows, Config::default().udf_batch_size)
}

/// Like [`sql_db`], but with an explicit UDF batch size. `1` forces the
/// strict per-tuple path (the pre-vectorization behaviour), which the
/// batched-equivalence tests use as their reference.
fn sql_db_batch(dop: usize, rows: usize, batch: usize) -> Database {
    // Pool size = 4 so a dop=4 team of isolated executors is never
    // clamped — this test is about result equivalence, not saturation.
    let db = Database::with_config(
        Config::default()
            .with_dop(dop)
            .with_pooled_executors(4)
            .with_udf_batch_size(batch),
    );
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.register_udf(def_native());
    db.register_udf(def_vm(true, ResourceLimits::default()));
    db.register_udf(def_isolated());
    db.register_udf(def_isolated_vm(true, ResourceLimits::default()));
    db
}

/// Rows in a canonical order, so serial and parallel result sets can be
/// compared irrespective of output order.
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

/// The cross-design equivalence queries, re-run at the SQL level under
/// dop=1 and dop=4: every design must produce the same (order-normalized)
/// result set at both degrees of parallelism.
#[test]
fn sql_equivalence_holds_at_dop_1_and_4_for_all_designs() {
    let with_worker = worker_available();
    let serial = sql_db(1, 700);
    let parallel = sql_db(4, 700);
    let designs: &[(&str, bool)] = &[
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
        ("generic_ivm", true),
    ];
    for (udf, needs_worker) in designs {
        if *needs_worker && !with_worker {
            continue;
        }
        for shape in [
            format!("SELECT id, {udf}(bytearray, 7, 1, 1) FROM rel WHERE id % 3 <> 1"),
            format!("SELECT id, {udf}(bytearray, 0, 2, 0) AS v FROM rel WHERE id < 500 ORDER BY v, id LIMIT 40"),
            format!("SELECT id % 4 AS k, COUNT({udf}(bytearray, 1, 0, 2)) AS n FROM rel GROUP BY id % 4"),
        ] {
            let a = serial.execute(&shape).unwrap();
            let b = parallel.execute(&shape).unwrap();
            assert_eq!(
                normalized(&a.rows),
                normalized(&b.rows),
                "dop=1 vs dop=4 diverged for {udf}: {shape}"
            );
            assert_eq!(a.stats.udf_invocations, b.stats.udf_invocations, "{shape}");
        }
    }
}

/// A statement deadline that fires mid-Gather must stop every worker
/// thread and leave the engine immediately usable.
#[test]
fn parallel_deadline_aborts_cleanly_across_designs() {
    let db = Database::with_config(
        Config::default()
            .with_dop(4)
            .with_statement_timeout_ms(Some(150)),
    );
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..1000 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.register_udf(def_vm(true, ResourceLimits::default()));
    // 2M data-independent comps per row: the scan cannot finish inside
    // the deadline, so it must abort mid-Gather (sandboxed UDFs notice
    // within a few thousand instructions).
    let err = db
        .execute("SELECT generic_vm(bytearray, 2000000, 0, 0) FROM rel")
        .unwrap_err();
    assert!(
        matches!(err, JaguarError::Timeout(_) | JaguarError::Cancelled(_)),
        "expected deadline abort, got: {err}"
    );
    let r = db.execute("SELECT COUNT(*) FROM rel").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(1000));
}

#[test]
fn isolated_worker_survives_many_invocations() {
    if !worker_available() {
        return;
    }
    let def = def_isolated();
    let mut u = def.instantiate().unwrap();
    let data = ByteArray::patterned(128, 5);
    for i in 0..200i64 {
        let params = GenericParams {
            data_indep_comps: i % 7,
            data_dep_comps: i % 3,
            callbacks: i % 2,
        };
        let out = u
            .invoke(&params.args(data.clone()), &mut IdentityCallbacks)
            .unwrap();
        assert!(matches!(out, Value::Int(_)));
    }
    u.finish().unwrap();
}

/// Tentpole acceptance: vectorized invocation must be byte-identical to
/// per-tuple invocation for every design — same rows in the same order,
/// same public row/invocation statistics. dop=1 on both sides so row
/// order is deterministic and the comparison is exact, not normalized.
#[test]
fn batched_invocation_is_byte_identical_to_per_tuple() {
    let with_worker = worker_available();
    let per_tuple = sql_db_batch(1, 700, 1);
    let batched = sql_db_batch(1, 700, 256);
    let designs: &[(&str, bool)] = &[
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
        ("generic_ivm", true),
    ];
    for (udf, needs_worker) in designs {
        if *needs_worker && !with_worker {
            continue;
        }
        for shape in [
            format!("SELECT id, {udf}(bytearray, 7, 1, 1) FROM rel WHERE id % 3 <> 1"),
            // LIMIT after a SORT still batches: the sort materializes its
            // whole input, so batching cannot over-invoke past the limit.
            format!("SELECT id, {udf}(bytearray, 0, 2, 0) AS v FROM rel WHERE id < 500 ORDER BY v, id LIMIT 40"),
        ] {
            let a = per_tuple.execute(&shape).unwrap();
            let b = batched.execute(&shape).unwrap();
            assert_eq!(a.rows, b.rows, "rows diverged for {udf}: {shape}");
            assert_eq!(
                a.stats.udf_invocations, b.stats.udf_invocations,
                "invocation counts diverged for {udf}: {shape}"
            );
            assert_eq!(
                a.stats.rows_emitted, b.stats.rows_emitted,
                "rows_emitted diverged for {udf}: {shape}"
            );
            assert_eq!(
                a.stats.rows_scanned, b.stats.rows_scanned,
                "rows_scanned diverged for {udf}: {shape}"
            );
        }
    }
}

/// Batched and per-tuple execution must also agree under morsel-driven
/// parallelism (order-normalized: dop=4 output order is nondeterministic).
#[test]
fn batched_invocation_matches_per_tuple_at_dop_4() {
    let with_worker = worker_available();
    let per_tuple = sql_db_batch(4, 700, 1);
    let batched = sql_db_batch(4, 700, 256);
    for (udf, needs_worker) in [
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
    ] {
        if needs_worker && !with_worker {
            continue;
        }
        let shape = format!("SELECT id, {udf}(bytearray, 3, 1, 0) FROM rel WHERE id % 3 <> 1");
        let a = per_tuple.execute(&shape).unwrap();
        let b = batched.execute(&shape).unwrap();
        assert_eq!(
            normalized(&a.rows),
            normalized(&b.rows),
            "dop=4 batched vs per-tuple diverged for {udf}"
        );
        assert_eq!(a.stats.udf_invocations, b.stats.udf_invocations, "{udf}");
    }
}

/// A SQL database with every design registered and the sandboxed designs
/// pinned to one execution tier: `Some(0)` forces the compiled register
/// tier from the first call, `None` with `jit=false` is the Baseline
/// interpreter (the reference the compiled tier must match byte-for-byte).
fn tiered_db(rows: usize, compiled: bool) -> Database {
    let db = Database::with_config(Config::default().with_dop(1).with_pooled_executors(2));
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    use jaguar_udf::generic::{def_isolated_vm_tiered, def_vm_tiered};
    let limits = ResourceLimits::default();
    let (jit, tier) = if compiled {
        (true, Some(0))
    } else {
        (false, None)
    };
    db.register_udf(def_native());
    db.register_udf(def_isolated());
    db.register_udf(def_vm_tiered(jit, limits, tier));
    db.register_udf(def_isolated_vm_tiered(jit, limits, tier));
    db
}

/// Tentpole acceptance: forcing the compiled tier must be byte-identical
/// to the Baseline interpreter at the SQL level, for every design —
/// same rows in the same order, same public statistics. (The native
/// designs never tier; they pin that the knob is a no-op for them.)
#[test]
fn compiled_tier_is_byte_identical_to_baseline_across_designs() {
    let with_worker = worker_available();
    let baseline = tiered_db(500, false);
    let compiled = tiered_db(500, true);
    let designs: &[(&str, bool)] = &[
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
        ("generic_ivm", true),
    ];
    for (udf, needs_worker) in designs {
        if *needs_worker && !with_worker {
            continue;
        }
        for shape in [
            format!("SELECT id, {udf}(bytearray, 7, 1, 1) FROM rel WHERE id % 3 <> 1"),
            format!("SELECT id, {udf}(bytearray, 0, 2, 0) AS v FROM rel WHERE id < 300 ORDER BY v, id LIMIT 40"),
            format!("SELECT id % 4 AS k, COUNT({udf}(bytearray, 1, 0, 2)) AS n FROM rel GROUP BY id % 4"),
        ] {
            let a = baseline.execute(&shape).unwrap();
            let b = compiled.execute(&shape).unwrap();
            assert_eq!(a.rows, b.rows, "rows diverged for {udf}: {shape}");
            assert_eq!(
                a.stats.udf_invocations, b.stats.udf_invocations,
                "invocation counts diverged for {udf}: {shape}"
            );
            assert_eq!(
                a.stats.udf_callbacks, b.stats.udf_callbacks,
                "callback counts diverged for {udf}: {shape}"
            );
        }
    }
}

/// A database whose `edgy` native UDF fails on argument 137 and counts
/// every invocation through the shared counter — the probe for "rows
/// before the failing one still took effect".
fn edgy_db(batch: usize, calls: std::sync::Arc<std::sync::atomic::AtomicU64>) -> Database {
    use jaguar_core::DataType;
    let db = Database::with_config(Config::default().with_dop(1).with_udf_batch_size(batch));
    db.execute("CREATE TABLE t (a INT)").unwrap();
    let t = db.catalog().table("t").unwrap();
    for i in 0..200 {
        t.insert(Tuple::new(vec![Value::Int(i)])).unwrap();
    }
    let sig = jaguar_udf::UdfSignature::new(vec![DataType::Int], DataType::Int);
    let native = jaguar_udf::NativeUdf::new("edgy", sig.clone(), move |args, _| {
        calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let v = args[0].as_int()?;
        if v == 137 {
            return Err(JaguarError::Udf("edgy cannot digest 137".into()));
        }
        Ok(Value::Int(v * 2))
    });
    db.register_udf(
        jaguar_udf::UdfDef::new("edgy", sig, jaguar_udf::UdfImpl::Native(native))
            .with_volatility(jaguar_udf::Volatility::Stable),
    );
    db
}

/// Design 1 (trusted native) is exempt from batching — its crossing is
/// free, so the planner keeps it per-tuple at any configured batch size
/// (`UdfImpl::crossing_is_free`). A mid-relation error must therefore
/// surface identically under batch=1 and batch=256 configs: the same
/// error, after the same number of successful invocations.
#[test]
fn mid_batch_native_error_matches_per_tuple() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let c1 = Arc::new(AtomicU64::new(0));
    let c2 = Arc::new(AtomicU64::new(0));
    let per_tuple = edgy_db(1, Arc::clone(&c1));
    let batched = edgy_db(256, Arc::clone(&c2));
    let e1 = per_tuple.execute("SELECT edgy(a) FROM t").unwrap_err();
    let e2 = batched.execute("SELECT edgy(a) FROM t").unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string(), "error text diverged");
    let (n1, n2) = (c1.load(Ordering::SeqCst), c2.load(Ordering::SeqCst));
    assert_eq!(n1, n2, "rows invoked before the failure diverged");
    assert!(n1 > 1, "failure must come after earlier rows succeeded");
    // Both engines stay usable after the failed statement.
    assert_eq!(
        per_tuple.execute("SELECT COUNT(*) FROM t").unwrap().rows,
        batched.execute("SELECT COUNT(*) FROM t").unwrap().rows,
    );
}

/// A JagScript UDF that traps mid-relation (`data[i]` out of range), run
/// in-process (Design 3) or shipped to a worker (Design 4) depending on
/// `isolated`. Volatility is declared Stable so the planner may batch it.
fn trap_db(batch: usize, isolated: bool) -> Database {
    use jaguar_core::DataType;
    let db = Database::with_config(Config::default().with_dop(1).with_udf_batch_size(batch));
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..100 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Bytes(ByteArray::patterned(8, i as u64)),
        ]))
        .unwrap();
    }
    let module = jaguar_lang::compile(
        "trapper",
        "fn main(data: bytes, i: i64) -> i64 { return data[i]; }",
    )
    .unwrap();
    let spec =
        jaguar_udf::def::vm_spec(module, "main", ResourceLimits::default(), true, None).unwrap();
    let sig = jaguar_udf::UdfSignature::new(vec![DataType::Bytes, DataType::Int], DataType::Int);
    let imp = if isolated {
        jaguar_udf::UdfImpl::IsolatedVm(spec)
    } else {
        jaguar_udf::UdfImpl::Vm(spec)
    };
    db.register_udf(
        jaguar_udf::UdfDef::new("trapper", sig, imp)
            .with_volatility(jaguar_udf::Volatility::Stable),
    );
    db
}

/// Mid-batch sandbox trap, Design 3: rows 0..7 index in range, row 8
/// traps. Batched execution must report the identical trap.
#[test]
fn mid_batch_vm_trap_matches_per_tuple() {
    let per_tuple = trap_db(1, false);
    let batched = trap_db(256, false);
    let q = "SELECT trapper(bytearray, id) FROM rel";
    let e1 = per_tuple.execute(q).unwrap_err();
    let e2 = batched.execute(q).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string(), "trap text diverged");
    // In-range prefix still computes identically.
    let q_ok = "SELECT trapper(bytearray, id) FROM rel WHERE id < 8";
    assert_eq!(
        per_tuple.execute(q_ok).unwrap().rows,
        batched.execute(q_ok).unwrap().rows
    );
}

/// Mid-batch sandbox trap, Design 4: the same module runs in a worker
/// process; the trap crosses the IPC boundary with its row position and
/// must read the same as the per-tuple reply.
#[test]
fn mid_batch_isolated_vm_trap_matches_per_tuple() {
    if !worker_available() {
        return;
    }
    let per_tuple = trap_db(1, true);
    let batched = trap_db(256, true);
    let q = "SELECT trapper(bytearray, id) FROM rel";
    let e1 = per_tuple.execute(q).unwrap_err();
    let e2 = batched.execute(q).unwrap_err();
    assert!(
        matches!(e1, JaguarError::Worker(_)),
        "expected a worker-reported trap, got: {e1}"
    );
    assert_eq!(e1.to_string(), e2.to_string(), "trap text diverged");
    let q_ok = "SELECT trapper(bytearray, id) FROM rel WHERE id < 8";
    assert_eq!(
        per_tuple.execute(q_ok).unwrap().rows,
        batched.execute(q_ok).unwrap().rows
    );
}

/// A statement deadline that expires mid-batch must abort the query the
/// same way the per-tuple path does (cancellation keeps its per-row
/// cadence inside a batch), and leave the engine immediately usable.
#[test]
fn mid_batch_deadline_aborts_and_engine_survives() {
    let db = Database::with_config(
        Config::default()
            .with_dop(1)
            .with_udf_batch_size(256)
            .with_statement_timeout_ms(Some(150)),
    );
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..1000 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.register_udf(def_vm(true, ResourceLimits::default()));
    // 2M data-independent comps per row: the first batch alone cannot
    // finish inside the deadline, so the abort fires mid-batch.
    let err = db
        .execute("SELECT generic_vm(bytearray, 2000000, 0, 0) FROM rel")
        .unwrap_err();
    assert!(
        matches!(err, JaguarError::Timeout(_) | JaguarError::Cancelled(_)),
        "expected mid-batch deadline abort, got: {err}"
    );
    let r = db.execute("SELECT COUNT(*) FROM rel").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(1000));
}

/// A SQL database with every generic design registered at the given
/// volatility and memo budget — the grid axes of the optimization matrix.
/// Payloads repeat every 23 rows so memoization (when enabled) actually
/// serves hits rather than degenerating into a miss-only cache.
fn opt_matrix_db(
    dop: usize,
    rows: usize,
    memo_bytes: usize,
    vol: jaguar_udf::Volatility,
) -> Database {
    let db = Database::with_config(
        Config::default()
            .with_dop(dop)
            .with_pooled_executors(4)
            .with_udf_memo_bytes(memo_bytes),
    );
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Bytes(ByteArray::patterned(100, i as u64 % 23)),
        ]))
        .unwrap();
    }
    let limits = ResourceLimits::default;
    db.register_udf(def_native().with_volatility(vol));
    db.register_udf(def_vm(true, limits()).with_volatility(vol));
    db.register_udf(def_isolated().with_volatility(vol));
    db.register_udf(def_isolated_vm(true, limits()).with_volatility(vol));
    db
}

/// Satellite acceptance: the optimizer must be invisible in results.
/// 4 designs × {memo on, memo off} × dop ∈ {1, 4}, each compared
/// (order-normalized) against a fully unoptimized reference — Volatile
/// registration pins written order and opts out of memoization, and a
/// zero byte budget disables the cache outright.
#[test]
fn optimization_matrix_matches_unoptimized_reference() {
    let with_worker = worker_available();
    let reference = opt_matrix_db(1, 400, 0, jaguar_udf::Volatility::Volatile);
    let designs: &[(&str, bool)] = &[
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
        ("generic_ivm", true),
    ];
    for dop in [1usize, 4] {
        for memo_bytes in [0usize, 1 << 20] {
            let optimized = opt_matrix_db(dop, 400, memo_bytes, jaguar_udf::Volatility::Immutable);
            for (udf, needs_worker) in designs {
                if *needs_worker && !with_worker {
                    continue;
                }
                for shape in [
                    format!("SELECT id, {udf}(bytearray, 5, 1, 0) FROM rel WHERE id % 3 <> 1"),
                    format!(
                        "SELECT id, {udf}(bytearray, 0, 2, 0) AS v FROM rel WHERE id < 300 ORDER BY v, id LIMIT 40"
                    ),
                ] {
                    let a = reference.execute(&shape).unwrap();
                    let b = optimized.execute(&shape).unwrap();
                    assert_eq!(
                        normalized(&a.rows),
                        normalized(&b.rows),
                        "optimized rows diverged for {udf} at dop={dop} memo={memo_bytes}: {shape}"
                    );
                }
            }
        }
    }
}

/// A multi-tenant variant of [`sql_db_batch`]: rows carry a tenant column
/// and the table a row label, every generic design registered.
fn labeled_db(dop: usize, rows: usize, batch: usize) -> Database {
    let db = Database::with_config(
        Config::default()
            .with_dop(dop)
            .with_pooled_executors(4)
            .with_udf_batch_size(batch),
    );
    db.execute("CREATE TABLE rel (id INT, tenant VARCHAR, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        let tenant = if i % 2 == 0 { "tech" } else { "energy" };
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Str(tenant.into()),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.set_table_label(
        "rel",
        Some("tenant = session.tenant OR session.role = 'admin'"),
    )
    .unwrap();
    db.register_udf(def_native());
    db.register_udf(def_vm(true, ResourceLimits::default()));
    db.register_udf(def_isolated());
    db.register_udf(def_isolated_vm(true, ResourceLimits::default()));
    db
}

/// Satellite acceptance: a label-filtered query must produce the same
/// result set as its manually-filtered twin run by the system principal,
/// for every trust design × dop ∈ {1, 4} × batching on/off. The twin
/// carries the tenant predicate the rewrite injects, so any divergence
/// means the label filter ran in the wrong place (or not at all).
#[test]
fn label_filtered_queries_agree_across_designs_dop_and_batching() {
    use jaguar_core::SessionContext;
    let with_worker = worker_available();
    let tech = SessionContext::new("alice")
        .with_attr("tenant", "tech")
        .with_attr("role", "member");
    let designs: &[(&str, bool)] = &[
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
        ("generic_ivm", true),
    ];
    for dop in [1usize, 4] {
        for batch in [1usize, 256] {
            let db = labeled_db(dop, 300, batch);
            for (udf, needs_worker) in designs {
                if *needs_worker && !with_worker {
                    continue;
                }
                let labeled = db
                    .execute_as(
                        &format!("SELECT id, {udf}(bytearray, 3, 1, 0) FROM rel WHERE id % 3 <> 1"),
                        Some(&tech),
                    )
                    .unwrap();
                let twin = db
                    .execute(&format!(
                        "SELECT id, {udf}(bytearray, 3, 1, 0) FROM rel \
                         WHERE tenant = 'tech' AND id % 3 <> 1"
                    ))
                    .unwrap();
                assert_eq!(
                    normalized(&labeled.rows),
                    normalized(&twin.rows),
                    "label-filtered result diverged for {udf} at dop={dop} batch={batch}"
                );
                assert!(
                    !labeled.rows.is_empty(),
                    "vacuous comparison for {udf} at dop={dop} batch={batch}"
                );
            }
        }
    }
}

/// A denied statement must fail with byte-identical error text whatever
/// the trust design, degree of parallelism, or batching mode — denial is
/// a plan-time decision with a single enforcement site.
#[test]
fn denied_query_error_text_is_identical_everywhere() {
    use jaguar_core::SessionContext;
    let with_worker = worker_available();
    // No attributes: the label's deny-safety rejects eve outright.
    let eve = SessionContext::new("eve");
    let mut texts = std::collections::BTreeSet::new();
    for dop in [1usize, 4] {
        for batch in [1usize, 256] {
            let db = labeled_db(dop, 30, batch);
            for (udf, needs_worker) in [
                ("generic", false),
                ("generic_vm", false),
                ("generic_ic", true),
                ("generic_ivm", true),
            ] {
                if needs_worker && !with_worker {
                    continue;
                }
                let err = db
                    .execute_as(
                        &format!("SELECT {udf}(bytearray, 1, 0, 0) FROM rel"),
                        Some(&eve),
                    )
                    .unwrap_err();
                texts.insert(err.to_string());
            }
        }
    }
    assert_eq!(texts.len(), 1, "denial text diverged: {texts:?}");
    let text = texts.iter().next().unwrap();
    assert!(
        text.contains("access to table 'rel' denied for principal 'eve'"),
        "{text}"
    );
}

/// The straight-line JagScript body used for the inlining matrix —
/// arithmetic, a comparison, and a conditional; no loops or callbacks.
const STRAIGHTLINE_SRC: &str = "fn main(a: i64, b: i64) -> i64 {
    if a < b { return a * 3 + b; }
    return a - b;
}";

fn straightline_db(
    design: jaguar_core::UdfDesign,
    vol: jaguar_udf::Volatility,
    dop: usize,
    src: &str,
) -> Database {
    use jaguar_core::DataType;
    let db = Database::with_config(Config::default().with_dop(dop).with_pooled_executors(4));
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    let t = db.catalog().table("t").unwrap();
    for i in 0..300i64 {
        t.insert(Tuple::new(vec![Value::Int(i), Value::Int(i % 13)]))
            .unwrap();
    }
    db.register_jagscript_udf_with_volatility(
        "poly",
        jaguar_core::UdfSignature::new(vec![DataType::Int, DataType::Int], DataType::Int),
        src,
        design,
        vol,
    )
    .unwrap();
    db
}

/// Inlining matrix: for both sandboxed designs (JSM in-process, IJSM in a
/// worker) and both degrees of parallelism, the inlined plan (Immutable)
/// must match the called plan (Stable) row for row — while invoking the
/// backend exactly zero times.
#[test]
fn inlined_udf_matches_called_across_vm_designs() {
    let with_worker = worker_available();
    for design in [
        jaguar_core::UdfDesign::Sandboxed,
        jaguar_core::UdfDesign::SandboxedIsolated,
    ] {
        let needs_worker = matches!(design, jaguar_core::UdfDesign::SandboxedIsolated);
        if needs_worker && !with_worker {
            continue;
        }
        for dop in [1usize, 4] {
            let inlined = straightline_db(
                design.clone(),
                jaguar_udf::Volatility::Immutable,
                dop,
                STRAIGHTLINE_SRC,
            );
            let called = straightline_db(
                design.clone(),
                jaguar_udf::Volatility::Stable,
                dop,
                STRAIGHTLINE_SRC,
            );
            let q = "SELECT a, poly(a, b) FROM t WHERE a % 3 <> 1";
            let a = inlined.execute(q).unwrap();
            let b = called.execute(q).unwrap();
            assert_eq!(
                normalized(&a.rows),
                normalized(&b.rows),
                "inlined vs called diverged for {design:?} at dop={dop}"
            );
            assert_eq!(
                a.stats.udf_invocations, 0,
                "inlined plan must never reach the backend ({design:?}, dop={dop})"
            );
            assert!(
                b.stats.udf_invocations > 0,
                "called plan must exercise the backend ({design:?}, dop={dop})"
            );
        }
    }
}

/// Error-text equivalence for inlined traps. Inlining elides the backend,
/// so a trapping body must report the local VM's trap text — identical to
/// the in-process call path — for both the JSM and IJSM registrations.
/// (The *called* IJSM path wraps the text in a worker-transport error;
/// that wrapping is exactly what backend elision removes.)
#[test]
fn inlined_trap_text_matches_local_vm() {
    // Divides by (a - 7): the row a=7 traps with integer divide by zero.
    let trap_src = "fn main(a: i64, b: i64) -> i64 { return (b + 1000) / (a - 7); }";
    let called_vm = straightline_db(
        jaguar_core::UdfDesign::Sandboxed,
        jaguar_udf::Volatility::Stable,
        1,
        trap_src,
    );
    let expected = called_vm
        .execute("SELECT poly(a, b) FROM t")
        .unwrap_err()
        .to_string();
    let mut designs = vec![jaguar_core::UdfDesign::Sandboxed];
    if worker_available() {
        designs.push(jaguar_core::UdfDesign::SandboxedIsolated);
    }
    for design in designs {
        let inlined = straightline_db(
            design.clone(),
            jaguar_udf::Volatility::Immutable,
            1,
            trap_src,
        );
        let got = inlined
            .execute("SELECT poly(a, b) FROM t")
            .unwrap_err()
            .to_string();
        assert_eq!(
            got, expected,
            "inlined trap text diverged from the local VM for {design:?}"
        );
    }
}
