//! Cross-design equivalence: the same UDF, executed under every design of
//! the paper's Table 1, must produce identical results. This is the
//! correctness backbone of the whole performance study — Figures 5-8 only
//! make sense if the designs compute the same function.

use jaguar_core::{ByteArray, Value};
use jaguar_ipc::find_worker_binary;
use jaguar_udf::generic::{
    def_isolated, def_isolated_vm, def_native, def_native_bc, def_native_sfi, def_vm,
    GenericParams, IdentityCallbacks,
};
use jaguar_vm::ResourceLimits;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping isolated designs: jaguar-worker not built (cargo build --workspace)");
        false
    } else {
        true
    }
}

fn invoke(def: &jaguar_udf::UdfDef, args: &[Value]) -> Value {
    let mut u = def.instantiate().expect("instantiate");
    let out = u.invoke(args, &mut IdentityCallbacks).expect("invoke");
    u.finish().expect("finish");
    out
}

#[test]
fn all_designs_compute_the_same_generic_udf() {
    let cases = [
        (0usize, GenericParams::default()),
        (
            100,
            GenericParams {
                data_indep_comps: 57,
                data_dep_comps: 2,
                callbacks: 3,
            },
        ),
        (
            1000,
            GenericParams {
                data_indep_comps: 0,
                data_dep_comps: 1,
                callbacks: 0,
            },
        ),
        (
            64,
            GenericParams {
                data_indep_comps: 1,
                data_dep_comps: 0,
                callbacks: 10,
            },
        ),
    ];
    let with_worker = worker_available();
    for (i, (bytes, params)) in cases.into_iter().enumerate() {
        let data = ByteArray::patterned(bytes, i as u64 + 1);
        let args = params.args(data);

        let expected = invoke(&def_native(), &args);
        assert_eq!(invoke(&def_native_bc(), &args), expected, "BC case {i}");
        assert_eq!(invoke(&def_native_sfi(), &args), expected, "SFI case {i}");
        assert_eq!(
            invoke(&def_vm(true, ResourceLimits::default()), &args),
            expected,
            "VM-jit case {i}"
        );
        assert_eq!(
            invoke(&def_vm(false, ResourceLimits::default()), &args),
            expected,
            "VM-baseline case {i}"
        );
        if with_worker {
            assert_eq!(invoke(&def_isolated(), &args), expected, "IC++ case {i}");
            assert_eq!(
                invoke(&def_isolated_vm(true, ResourceLimits::default()), &args),
                expected,
                "IJSM case {i}"
            );
        }
    }
}

#[test]
fn equivalence_on_randomized_parameters() {
    use jaguar_common::rng::SplitMix64;
    let mut rng = SplitMix64::new(2024);
    let with_worker = worker_available();
    for round in 0..8 {
        let bytes = rng.next_below(300) as usize;
        let params = GenericParams {
            data_indep_comps: rng.next_below(200) as i64,
            data_dep_comps: rng.next_below(4) as i64,
            callbacks: rng.next_below(6) as i64,
        };
        let data = ByteArray::patterned(bytes, rng.next_u64());
        let args = params.args(data);
        let expected = invoke(&def_native(), &args);
        assert_eq!(
            invoke(&def_vm(true, ResourceLimits::default()), &args),
            expected,
            "round {round}: vm vs native for {params:?} bytes={bytes}"
        );
        assert_eq!(
            invoke(&def_native_bc(), &args),
            expected,
            "round {round}: bc vs native"
        );
        assert_eq!(
            invoke(&def_native_sfi(), &args),
            expected,
            "round {round}: sfi vs native"
        );
        if with_worker && round % 4 == 0 {
            assert_eq!(
                invoke(&def_isolated(), &args),
                expected,
                "round {round}: isolated vs native"
            );
        }
    }
}

#[test]
fn isolated_worker_survives_many_invocations() {
    if !worker_available() {
        return;
    }
    let def = def_isolated();
    let mut u = def.instantiate().unwrap();
    let data = ByteArray::patterned(128, 5);
    for i in 0..200i64 {
        let params = GenericParams {
            data_indep_comps: i % 7,
            data_dep_comps: i % 3,
            callbacks: i % 2,
        };
        let out = u
            .invoke(&params.args(data.clone()), &mut IdentityCallbacks)
            .unwrap();
        assert!(matches!(out, Value::Int(_)));
    }
    u.finish().unwrap();
}
