//! Cross-design equivalence: the same UDF, executed under every design of
//! the paper's Table 1, must produce identical results. This is the
//! correctness backbone of the whole performance study — Figures 5-8 only
//! make sense if the designs compute the same function.

use jaguar_core::{ByteArray, Config, Database, JaguarError, Tuple, Value};
use jaguar_ipc::find_worker_binary;
use jaguar_udf::generic::{
    def_isolated, def_isolated_vm, def_native, def_native_bc, def_native_sfi, def_vm,
    GenericParams, IdentityCallbacks,
};
use jaguar_vm::ResourceLimits;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping isolated designs: jaguar-worker not built (cargo build --workspace)");
        false
    } else {
        true
    }
}

fn invoke(def: &jaguar_udf::UdfDef, args: &[Value]) -> Value {
    let mut u = def.instantiate().expect("instantiate");
    let out = u.invoke(args, &mut IdentityCallbacks).expect("invoke");
    u.finish().expect("finish");
    out
}

#[test]
fn all_designs_compute_the_same_generic_udf() {
    let cases = [
        (0usize, GenericParams::default()),
        (
            100,
            GenericParams {
                data_indep_comps: 57,
                data_dep_comps: 2,
                callbacks: 3,
            },
        ),
        (
            1000,
            GenericParams {
                data_indep_comps: 0,
                data_dep_comps: 1,
                callbacks: 0,
            },
        ),
        (
            64,
            GenericParams {
                data_indep_comps: 1,
                data_dep_comps: 0,
                callbacks: 10,
            },
        ),
    ];
    let with_worker = worker_available();
    for (i, (bytes, params)) in cases.into_iter().enumerate() {
        let data = ByteArray::patterned(bytes, i as u64 + 1);
        let args = params.args(data);

        let expected = invoke(&def_native(), &args);
        assert_eq!(invoke(&def_native_bc(), &args), expected, "BC case {i}");
        assert_eq!(invoke(&def_native_sfi(), &args), expected, "SFI case {i}");
        assert_eq!(
            invoke(&def_vm(true, ResourceLimits::default()), &args),
            expected,
            "VM-jit case {i}"
        );
        assert_eq!(
            invoke(&def_vm(false, ResourceLimits::default()), &args),
            expected,
            "VM-baseline case {i}"
        );
        if with_worker {
            assert_eq!(invoke(&def_isolated(), &args), expected, "IC++ case {i}");
            assert_eq!(
                invoke(&def_isolated_vm(true, ResourceLimits::default()), &args),
                expected,
                "IJSM case {i}"
            );
        }
    }
}

#[test]
fn equivalence_on_randomized_parameters() {
    use jaguar_common::rng::SplitMix64;
    let mut rng = SplitMix64::new(2024);
    let with_worker = worker_available();
    for round in 0..8 {
        let bytes = rng.next_below(300) as usize;
        let params = GenericParams {
            data_indep_comps: rng.next_below(200) as i64,
            data_dep_comps: rng.next_below(4) as i64,
            callbacks: rng.next_below(6) as i64,
        };
        let data = ByteArray::patterned(bytes, rng.next_u64());
        let args = params.args(data);
        let expected = invoke(&def_native(), &args);
        assert_eq!(
            invoke(&def_vm(true, ResourceLimits::default()), &args),
            expected,
            "round {round}: vm vs native for {params:?} bytes={bytes}"
        );
        assert_eq!(
            invoke(&def_native_bc(), &args),
            expected,
            "round {round}: bc vs native"
        );
        assert_eq!(
            invoke(&def_native_sfi(), &args),
            expected,
            "round {round}: sfi vs native"
        );
        if with_worker && round % 4 == 0 {
            assert_eq!(
                invoke(&def_isolated(), &args),
                expected,
                "round {round}: isolated vs native"
            );
        }
    }
}

/// A SQL database with `rows` rows and every generic-UDF design
/// registered, configured for the given degree of parallelism.
fn sql_db(dop: usize, rows: usize) -> Database {
    // Pool size = 4 so a dop=4 team of isolated executors is never
    // clamped — this test is about result equivalence, not saturation.
    let db = Database::with_config(Config::default().with_dop(dop).with_pooled_executors(4));
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.register_udf(def_native());
    db.register_udf(def_vm(true, ResourceLimits::default()));
    db.register_udf(def_isolated());
    db.register_udf(def_isolated_vm(true, ResourceLimits::default()));
    db
}

/// Rows in a canonical order, so serial and parallel result sets can be
/// compared irrespective of output order.
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    out.sort();
    out
}

/// The cross-design equivalence queries, re-run at the SQL level under
/// dop=1 and dop=4: every design must produce the same (order-normalized)
/// result set at both degrees of parallelism.
#[test]
fn sql_equivalence_holds_at_dop_1_and_4_for_all_designs() {
    let with_worker = worker_available();
    let serial = sql_db(1, 700);
    let parallel = sql_db(4, 700);
    let designs: &[(&str, bool)] = &[
        ("generic", false),
        ("generic_vm", false),
        ("generic_ic", true),
        ("generic_ivm", true),
    ];
    for (udf, needs_worker) in designs {
        if *needs_worker && !with_worker {
            continue;
        }
        for shape in [
            format!("SELECT id, {udf}(bytearray, 7, 1, 1) FROM rel WHERE id % 3 <> 1"),
            format!("SELECT id, {udf}(bytearray, 0, 2, 0) AS v FROM rel WHERE id < 500 ORDER BY v, id LIMIT 40"),
            format!("SELECT id % 4 AS k, COUNT({udf}(bytearray, 1, 0, 2)) AS n FROM rel GROUP BY id % 4"),
        ] {
            let a = serial.execute(&shape).unwrap();
            let b = parallel.execute(&shape).unwrap();
            assert_eq!(
                normalized(&a.rows),
                normalized(&b.rows),
                "dop=1 vs dop=4 diverged for {udf}: {shape}"
            );
            assert_eq!(a.stats.udf_invocations, b.stats.udf_invocations, "{shape}");
        }
    }
}

/// A statement deadline that fires mid-Gather must stop every worker
/// thread and leave the engine immediately usable.
#[test]
fn parallel_deadline_aborts_cleanly_across_designs() {
    let db = Database::with_config(
        Config::default()
            .with_dop(4)
            .with_statement_timeout_ms(Some(150)),
    );
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..1000 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.register_udf(def_vm(true, ResourceLimits::default()));
    // 2M data-independent comps per row: the scan cannot finish inside
    // the deadline, so it must abort mid-Gather (sandboxed UDFs notice
    // within a few thousand instructions).
    let err = db
        .execute("SELECT generic_vm(bytearray, 2000000, 0, 0) FROM rel")
        .unwrap_err();
    assert!(
        matches!(err, JaguarError::Timeout(_) | JaguarError::Cancelled(_)),
        "expected deadline abort, got: {err}"
    );
    let r = db.execute("SELECT COUNT(*) FROM rel").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(1000));
}

#[test]
fn isolated_worker_survives_many_invocations() {
    if !worker_available() {
        return;
    }
    let def = def_isolated();
    let mut u = def.instantiate().unwrap();
    let data = ByteArray::patterned(128, 5);
    for i in 0..200i64 {
        let params = GenericParams {
            data_indep_comps: i % 7,
            data_dep_comps: i % 3,
            callbacks: i % 2,
        };
        let out = u
            .invoke(&params.args(data.clone()), &mut IdentityCallbacks)
            .unwrap();
        assert!(matches!(out, Value::Int(_)));
    }
    u.finish().unwrap();
}
