//! Vectorized invocation (jaguar-vec): batch-size gating, hostile
//! batch-frame rejection at the IPC boundary, and circuit-breaker
//! behaviour when a whole batch fails.

use std::time::Duration;

use jaguar_core::{obs, ByteArray, Config, DataType, Database, JaguarError, Tuple, Value};
use jaguar_ipc::find_worker_binary;
use jaguar_udf::generic::def_vm;
use jaguar_udf::{NativeUdf, UdfDef, UdfImpl, UdfSignature, Volatility};
use jaguar_vm::ResourceLimits;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping isolated designs: jaguar-worker not built (cargo build --workspace)");
        false
    } else {
        true
    }
}

/// Serializes the tests that read the global, monotonic
/// `udf.batch.crossings.jsm` counter — delta assertions are only sound
/// while no other test in this binary drives a JSM UDF.
static JSM_COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A dop=1 database with `rows` integers and a `dbl` UDF of the given
/// volatility, configured for the given (pre-clamp) batch size. The UDF
/// is sandboxed-VM backed (JSM): batching gates are exercised against a
/// design with a real per-invocation crossing to amortize — the trusted
/// native design skips batching by policy (see
/// `trusted_native_stays_per_tuple` below).
fn dbl_db(batch: usize, volatility: Volatility, rows: usize) -> Database {
    let db = Database::with_config(Config::default().with_dop(1).with_udf_batch_size(batch));
    db.execute("CREATE TABLE t (id INT)").unwrap();
    let t = db.catalog().table("t").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![Value::Int(i as i64)])).unwrap();
    }
    let sig = UdfSignature::new(vec![DataType::Int], DataType::Int);
    let module = jaguar_lang::compile("dbl", "fn main(x: i64) -> i64 { return x * 2; }").unwrap();
    let spec = jaguar_udf::def::vm_spec(module, "main", ResourceLimits::default(), true, None)
        .expect("dbl module must verify");
    db.register_udf(UdfDef::new("dbl", sig, UdfImpl::Vm(spec)).with_volatility(volatility));
    db
}

/// Batched crossings recorded for the given backend slug. The counters
/// are global and monotonic, so gating assertions take deltas around a
/// single statement.
fn crossings(slug: &str) -> u64 {
    obs::global()
        .snapshot()
        .counter(&format!("udf.batch.crossings.{slug}"))
}

/// Run one statement and report (result, JSM crossings delta).
fn run_counted(db: &Database, sql: &str) -> (Vec<Tuple>, u64) {
    let before = crossings("jsm");
    let rows = db.execute(sql).unwrap().rows;
    (rows, crossings("jsm") - before)
}

/// All gating scenarios live in ONE test so the global `jsm` crossing
/// counter is never read while another scenario in this binary writes it
/// (tests in a binary run concurrently; scenarios here run sequentially,
/// and the one other JSM-driving test shares `JSM_COUNTER_LOCK`).
#[test]
fn batch_gating_end_to_end() {
    let _serial = JSM_COUNTER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let reference: Vec<Tuple> = (0..200)
        .map(|i| Tuple::new(vec![Value::Int(i * 2)]))
        .collect();

    // A Stable UDF with batching on: one crossing per 200-row relation.
    let db = dbl_db(256, Volatility::Stable, 200);
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) FROM t");
    assert_eq!(rows, reference);
    assert_eq!(delta, 1, "200 rows at batch=256 must cross exactly once");

    // Requested size 2 clamps up to MIN_BATCH=64: ceil(200/64) crossings.
    let db = dbl_db(2, Volatility::Stable, 200);
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) FROM t");
    assert_eq!(rows, reference);
    assert_eq!(delta, 4, "batch=2 must clamp to 64: 64+64+64+8 rows");

    // Requested size 1_000_000 clamps down to MAX_BATCH=1024.
    let db = dbl_db(1_000_000, Volatility::Stable, 200);
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) FROM t");
    assert_eq!(rows, reference);
    assert_eq!(delta, 1, "huge requested sizes clamp to 1024, one crossing");

    // Batch size 1 disables batching entirely.
    let db = dbl_db(1, Volatility::Stable, 200);
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) FROM t");
    assert_eq!(rows, reference);
    assert_eq!(delta, 0, "batch=1 must take the per-tuple path");

    // A Volatile UDF (the default) is never batched, whatever the config.
    let db = dbl_db(256, Volatility::Volatile, 200);
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) FROM t");
    assert_eq!(rows, reference);
    assert_eq!(delta, 0, "Volatile UDFs must keep the per-tuple cadence");

    // LIMIT without ORDER BY short-circuits: batching would over-invoke
    // past the limit, so the planner must refuse it.
    let db = dbl_db(256, Volatility::Stable, 200);
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) FROM t LIMIT 10");
    assert_eq!(rows.len(), 10);
    assert_eq!(delta, 0, "bare LIMIT must not batch");
    // ...but LIMIT after a SORT materializes everything first: batchable.
    let (rows, delta) = run_counted(&db, "SELECT dbl(id) AS v FROM t ORDER BY v LIMIT 10");
    assert_eq!(rows, reference[..10].to_vec());
    assert_eq!(delta, 1, "LIMIT after ORDER BY must batch");

    // Two UDF calls in the projection: the single-UDF gate refuses.
    let (rows, delta) = run_counted(&db, "SELECT dbl(id), dbl(id) FROM t");
    assert_eq!(rows.len(), 200);
    assert_eq!(delta, 0, "two UDF projections must not batch");

    // A fallible sibling projection (id % 2 can observe evaluation order
    // on error paths): the infallible-siblings gate refuses.
    let (rows, delta) = run_counted(&db, "SELECT id % 2, dbl(id) FROM t");
    assert_eq!(rows.len(), 200);
    assert_eq!(delta, 0, "fallible sibling expressions must not batch");
}

/// The per-backend batch policy: trusted native's crossing is a plain
/// function call, so batching it pays ValueBatch accumulation for
/// nothing (BENCH_batch measured a ~7% slowdown). Even a Stable native
/// UDF under a batching config must stay on the per-tuple path.
#[test]
fn trusted_native_stays_per_tuple() {
    let db = Database::with_config(Config::default().with_dop(1).with_udf_batch_size(256));
    db.execute("CREATE TABLE t (id INT)").unwrap();
    let t = db.catalog().table("t").unwrap();
    for i in 0..200 {
        t.insert(Tuple::new(vec![Value::Int(i)])).unwrap();
    }
    let sig = UdfSignature::new(vec![DataType::Int], DataType::Int);
    let native = NativeUdf::new("ndbl", sig.clone(), |args, _| {
        Ok(Value::Int(args[0].as_int()? * 2))
    });
    db.register_udf(
        UdfDef::new("ndbl", sig, UdfImpl::Native(native)).with_volatility(Volatility::Stable),
    );
    let before = crossings("cpp");
    let rows = db.execute("SELECT ndbl(id) FROM t").unwrap().rows;
    assert_eq!(
        rows,
        (0..200)
            .map(|i| Tuple::new(vec![Value::Int(i * 2)]))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        crossings("cpp") - before,
        0,
        "trusted native must never take the batched path"
    );
}

/// Hostile bytes at the IPC boundary: frames claiming implausible batch
/// sizes must be rejected by the length caps before any allocation, in
/// both directions (server←client request replay, compromised worker
/// reply).
#[test]
fn hostile_batch_frames_are_rejected() {
    use jaguar_ipc::proto::{Request, Response, MAX_BATCH_ROWS};

    // An InvokeBatch frame declaring one row more than the wire cap.
    let mut frame = vec![0x08u8];
    frame.extend_from_slice(&(MAX_BATCH_ROWS + 1).to_le_bytes());
    let err = Request::read(&mut frame.as_slice()).unwrap_err();
    assert!(matches!(err, JaguarError::Protocol(_)), "{err}");

    // ...and one declaring u32::MAX rows (allocation-bomb attempt).
    let mut frame = vec![0x08u8];
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = Request::read(&mut frame.as_slice()).unwrap_err();
    assert!(matches!(err, JaguarError::Protocol(_)), "{err}");

    // A truncated frame claiming the cap exactly but carrying no rows:
    // decoding must fail cleanly (EOF), not hang or pre-allocate 4096 rows.
    let mut frame = vec![0x08u8];
    frame.extend_from_slice(&MAX_BATCH_ROWS.to_le_bytes());
    assert!(Request::read(&mut frame.as_slice()).is_err());

    // A BatchReply from a compromised worker declaring u32::MAX values.
    let mut frame = vec![0x88u8];
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = Response::read(&mut frame.as_slice()).unwrap_err();
    assert!(matches!(err, JaguarError::Protocol(_)), "{err}");
}

/// When a worker dies mid-batch the whole batch fails as one Worker
/// error; three consecutive all-fail batches must open the UDF's circuit
/// breaker exactly as three per-tuple crashes do, and the quarantined
/// UDF must then fail fast.
#[test]
fn breaker_opens_when_whole_batches_fail() {
    if !worker_available() {
        return;
    }
    let db = Database::with_config(
        Config::default()
            .with_dop(1)
            .with_udf_batch_size(256)
            .with_pooled_executors(1)
            .with_udf_breaker(3, 60_000),
    );
    db.execute("CREATE TABLE t (a INT)").unwrap();
    let t = db.catalog().table("t").unwrap();
    for _ in 0..100 {
        t.insert(Tuple::new(vec![Value::Int(1)])).unwrap();
    }
    let sig = UdfSignature::new(vec![DataType::Int], DataType::Int);
    db.register_udf(
        UdfDef::new(
            "wcrash",
            sig,
            UdfImpl::IsolatedNative {
                worker_fn: "crash_if_positive".to_string(),
            },
        )
        .with_volatility(Volatility::Stable),
    );
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    let before = obs::global().snapshot().counter("udf.batch.crossings.icpp");
    for round in 0..3 {
        let err = db.execute("SELECT wcrash(a) FROM t").unwrap_err();
        assert!(
            matches!(err, JaguarError::Worker(_)),
            "round {round}: expected a worker crash, got: {err}"
        );
    }
    assert!(
        obs::global().snapshot().counter("udf.batch.crossings.icpp") >= before + 3,
        "the crashing statements must have gone through the batched path"
    );
    assert!(
        db.udf_breaker_states()
            .iter()
            .any(|(n, s)| n == "wcrash" && *s == "open"),
        "breaker must open after 3 all-fail batches: {:?}",
        db.udf_breaker_states()
    );
    let err = db.execute("SELECT wcrash(a) FROM t").unwrap_err();
    assert!(
        matches!(err, JaguarError::UdfQuarantined(_)),
        "open breaker must fail fast, got: {err}"
    );
    // Statements not touching the quarantined UDF keep working.
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(100));
}

/// An explicit cancel token fired from another thread must interrupt a
/// statement between the per-row polls inside a batch.
#[test]
fn token_cancel_interrupts_a_batch() {
    // Drives a JSM UDF, which bumps the jsm crossing counter the gating
    // test takes deltas of — serialize with it.
    let _serial = JSM_COUNTER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let db = Database::with_config(Config::default().with_dop(1).with_udf_batch_size(256));
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..1000 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db.register_udf(def_vm(true, ResourceLimits::default()));
    let token = db.statement_token();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let err = db
        .execute_cancellable(
            "SELECT generic_vm(bytearray, 2000000, 0, 0) FROM rel",
            &token,
        )
        .unwrap_err();
    canceller.join().unwrap();
    assert!(
        matches!(err, JaguarError::Cancelled(_) | JaguarError::Timeout(_)),
        "expected mid-batch cancellation, got: {err}"
    );
    let r = db.execute("SELECT COUNT(*) FROM rel").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(1000));
}
