//! Fault-injection (chaos) tests: arm the named fault sites from
//! `jaguar_common::fault` and assert the engine degrades cleanly — errors
//! are contained, connections and pools recover, nothing hangs.
//!
//! Fault sites are process-global (and, for worker faults, inherited via
//! the environment), so every test in this binary serialises on one mutex.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use jaguar_common::fault;
use jaguar_core::{
    Client, ClientOptions, Config, DataType, Database, JaguarError, SyncMode, UdfDef, UdfImpl,
    UdfSignature, Value,
};
use jaguar_ipc::find_worker_binary;

static CHAOS: Mutex<()> = Mutex::new(());

const WORKER_SITE: &str = "ipc.worker.drop_mid_reply";
const NET_SITE: &str = "net.server.drop_mid_response";
const SITES_ENV: &str = "JAGUAR_FAULT_SITES";

/// A worker that dies *after* executing the UDF but *before* writing its
/// reply: the parent sees a clean worker-death error, and once the fault
/// is disarmed a respawned worker serves the same query successfully.
#[test]
fn worker_death_mid_reply_is_contained_and_recovered() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    if find_worker_binary().is_err() {
        eprintln!("skipping chaos test: jaguar-worker not built");
        return;
    }

    // Arm before the pool spawns, so workers inherit the site. Each worker
    // process consumes its own single armed shot on its first invoke.
    std::env::set_var(SITES_ENV, format!("{WORKER_SITE}=1"));
    let db = Database::with_config(
        Config::default()
            .with_pooled_executors(1)
            // Chaos, not quarantine, is under test here.
            .with_udf_breaker(0, 0),
    );
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    let err = db.execute("SELECT wnoop(a) FROM t").unwrap_err();
    std::env::remove_var(SITES_ENV);
    assert!(
        matches!(err, JaguarError::Worker(_)),
        "mid-reply death must surface as a worker error, got: {err}"
    );
    assert!(err.is_containable(), "{err}");

    // Recovery may take a couple of attempts: a replacement worker spawned
    // while the env var was still set carries one more armed shot.
    let mut recovered = false;
    for _ in 0..5 {
        if db.execute("SELECT wnoop(a) FROM t").is_ok() {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "pool must recover once the fault is disarmed");
    assert!(db.pool_stats().unwrap().crashes >= 1);
}

/// The server drops the connection halfway through writing a response
/// frame: the client gets an error (not a hang, not a corrupt result),
/// and a fresh connection works because the site was armed for one shot.
#[test]
fn connection_dropped_mid_response_surfaces_cleanly() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let server = db.serve("127.0.0.1:0").unwrap();

    jaguar_common::fault::arm(NET_SITE, 1);
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .execute("SELECT a FROM t")
        .expect_err("half-written frame must error at the client");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "{msg}");

    // One shot only: a new connection gets a full, correct response.
    let mut client = Client::connect(server.addr()).unwrap();
    let r = client.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows.len(), 3);
}

/// Satellite regression: a half-open server (accepts the TCP connection,
/// never speaks the protocol) must trip the client's read timeout instead
/// of hanging the caller forever.
#[test]
fn client_read_timeout_survives_half_open_server() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        // Accept and hold the socket open without ever responding.
        let _conn = listener.accept();
        std::thread::sleep(Duration::from_secs(5));
    });

    // No retry: a hang would otherwise be retried into a longer hang.
    let options = ClientOptions {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_millis(300)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ClientOptions::default().no_retry()
    };
    let mut client = Client::connect_with(addr, options).unwrap();
    let start = Instant::now();
    let err = client
        .execute("SELECT 1")
        .expect_err("silent server must not hang the client");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "read timeout must fire promptly, took {elapsed:?} ({err})"
    );
    silent.join().unwrap();
}

/// A synchronized connection flood at 2x (capacity + queue depth): every
/// session either completes its statement or is shed with a retryable
/// `ServerBusy` inside the admission window — never a hang, a protocol
/// error, or a dropped connection — and every session thread joins, so
/// nothing leaks. Capacity-many sessions are admitted immediately and the
/// FIFO queue admits up to `depth` more as permits free up.
#[test]
fn connection_flood_sheds_cleanly_and_leaks_no_threads() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    const CAP: usize = 2;
    const DEPTH: usize = 2;
    const FLOOD: usize = 2 * (CAP + DEPTH);
    const TIMEOUT_MS: u64 = 400;

    let db = Database::with_config(Config {
        max_connections: CAP,
        admission_queue_depth: DEPTH,
        admission_timeout_ms: TIMEOUT_MS,
        ..Config::default()
    });
    db.execute("CREATE TABLE t (id INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    // Hold each admitted permit for a beat so the flood actually contends;
    // a bare SELECT drains faster than the flood can form.
    db.register_native_udf(
        "hold",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        |args, _| {
            std::thread::sleep(Duration::from_millis(60));
            Ok(args[0].clone())
        },
    );
    let server = db.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let before = db.metrics();

    let barrier = Arc::new(Barrier::new(FLOOD));
    let handles: Vec<_> = (0..FLOOD)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c =
                    Client::connect_with(addr, ClientOptions::default().no_retry()).unwrap();
                barrier.wait();
                let start = Instant::now();
                (c.execute("SELECT hold(id) FROM t"), start.elapsed())
            })
        })
        .collect();

    let (mut ok, mut shed) = (0usize, 0usize);
    for h in handles {
        // A panic here is a leaked/poisoned session thread — the flood
        // must never take one down.
        let (res, elapsed) = h.join().expect("session thread panicked under flood");
        match res {
            Ok(r) => {
                assert_eq!(r.rows.len(), 1);
                ok += 1;
            }
            Err(JaguarError::ServerBusy { retry_after_ms }) => {
                assert!(retry_after_ms > 0, "shed must carry a retry hint");
                // A shed is bounded by the admission window (plus slack for
                // a loaded CI host), not by the queue ahead of it.
                assert!(
                    elapsed < Duration::from_millis(TIMEOUT_MS + 2_000),
                    "shed took {elapsed:?}"
                );
                shed += 1;
            }
            Err(e) => panic!("flood must shed with ServerBusy, got: {e}"),
        }
    }
    assert_eq!(ok + shed, FLOOD);
    // Capacity is always admitted; with the queue draining behind the
    // 60 ms holds, at least capacity + depth statements complete.
    assert!(ok >= CAP + DEPTH, "only {ok}/{FLOOD} admitted");

    let after = db.metrics();
    let queued = after.counter("net.admission.queued") - before.counter("net.admission.queued");
    let shed_metric = after.counter("net.admission.shed") - before.counter("net.admission.shed");
    assert_eq!(shed_metric as usize, shed, "shed metric must match sheds");
    assert!(queued >= 1, "flood at 4x capacity must exercise the queue");

    // The server is healthy afterwards: a fresh session runs immediately.
    let mut probe = Client::connect_with(addr, ClientOptions::default()).unwrap();
    assert_eq!(probe.execute("SELECT id FROM t").unwrap().rows.len(), 1);
}

/// An injected fsync failure during group commit surfaces as a clean
/// statement error — the engine is not poisoned, the log is not torn —
/// and once the fault clears the next commit succeeds and recovery
/// replays a consistent table.
#[test]
fn injected_fsync_failure_during_commit_is_clean_and_recoverable() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    let dir = std::env::temp_dir().join(format!("jaguar-chaos-fsync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let db = Database::open(&dir, Config::default().with_sync_mode(SyncMode::Full)).unwrap();
    db.execute("CREATE TABLE t (id INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    // Permanent fault: the storage retry budget exhausts and the commit
    // fails. The retried transient flavour is covered by the WAL's own
    // unit tests; here the whole engine path is under test.
    fault::arm("wal.fsync", fault::ALWAYS);
    let err = db
        .execute("INSERT INTO t VALUES (2)")
        .expect_err("commit cannot succeed with fsync failing");
    fault::disarm("wal.fsync");
    assert!(err.to_string().contains("injected"), "{err}");

    // Not poisoned: reads still work, and the failed statement's row is
    // visible in memory under no-steal protection (it was inserted before
    // the commit failed and will ride along with the next transaction).
    assert_eq!(db.execute("SELECT id FROM t").unwrap().rows.len(), 2);

    // Next commit succeeds and makes everything durable.
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    assert_eq!(db.execute("SELECT id FROM t").unwrap().rows.len(), 3);
    db.close().unwrap();

    // The log was never torn: recovery replays a consistent table.
    let db = Database::open(&dir, Config::default().with_sync_mode(SyncMode::Full)).unwrap();
    let r = db.execute("SELECT id FROM t ORDER BY id").unwrap();
    let ids: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row.get(0).unwrap() {
            Value::Int(i) => *i,
            other => panic!("expected int, got {other:?}"),
        })
        .collect();
    assert_eq!(ids, vec![1, 2, 3]);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
