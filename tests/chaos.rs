//! Fault-injection (chaos) tests: arm the named fault sites from
//! `jaguar_common::fault` and assert the engine degrades cleanly — errors
//! are contained, connections and pools recover, nothing hangs.
//!
//! Fault sites are process-global (and, for worker faults, inherited via
//! the environment), so every test in this binary serialises on one mutex.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use jaguar_core::{
    Client, ClientOptions, Config, DataType, Database, JaguarError, UdfDef, UdfImpl, UdfSignature,
};
use jaguar_ipc::find_worker_binary;

static CHAOS: Mutex<()> = Mutex::new(());

const WORKER_SITE: &str = "ipc.worker.drop_mid_reply";
const NET_SITE: &str = "net.server.drop_mid_response";
const SITES_ENV: &str = "JAGUAR_FAULT_SITES";

/// A worker that dies *after* executing the UDF but *before* writing its
/// reply: the parent sees a clean worker-death error, and once the fault
/// is disarmed a respawned worker serves the same query successfully.
#[test]
fn worker_death_mid_reply_is_contained_and_recovered() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    if find_worker_binary().is_err() {
        eprintln!("skipping chaos test: jaguar-worker not built");
        return;
    }

    // Arm before the pool spawns, so workers inherit the site. Each worker
    // process consumes its own single armed shot on its first invoke.
    std::env::set_var(SITES_ENV, format!("{WORKER_SITE}=1"));
    let db = Database::with_config(
        Config::default()
            .with_pooled_executors(1)
            // Chaos, not quarantine, is under test here.
            .with_udf_breaker(0, 0),
    );
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    let err = db.execute("SELECT wnoop(a) FROM t").unwrap_err();
    std::env::remove_var(SITES_ENV);
    assert!(
        matches!(err, JaguarError::Worker(_)),
        "mid-reply death must surface as a worker error, got: {err}"
    );
    assert!(err.is_containable(), "{err}");

    // Recovery may take a couple of attempts: a replacement worker spawned
    // while the env var was still set carries one more armed shot.
    let mut recovered = false;
    for _ in 0..5 {
        if db.execute("SELECT wnoop(a) FROM t").is_ok() {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "pool must recover once the fault is disarmed");
    assert!(db.pool_stats().unwrap().crashes >= 1);
}

/// The server drops the connection halfway through writing a response
/// frame: the client gets an error (not a hang, not a corrupt result),
/// and a fresh connection works because the site was armed for one shot.
#[test]
fn connection_dropped_mid_response_surfaces_cleanly() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let server = db.serve("127.0.0.1:0").unwrap();

    jaguar_common::fault::arm(NET_SITE, 1);
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .execute("SELECT a FROM t")
        .expect_err("half-written frame must error at the client");
    let msg = err.to_string();
    assert!(!msg.is_empty(), "{msg}");

    // One shot only: a new connection gets a full, correct response.
    let mut client = Client::connect(server.addr()).unwrap();
    let r = client.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows.len(), 3);
}

/// Satellite regression: a half-open server (accepts the TCP connection,
/// never speaks the protocol) must trip the client's read timeout instead
/// of hanging the caller forever.
#[test]
fn client_read_timeout_survives_half_open_server() {
    let _guard = CHAOS.lock().unwrap_or_else(|p| p.into_inner());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        // Accept and hold the socket open without ever responding.
        let _conn = listener.accept();
        std::thread::sleep(Duration::from_secs(5));
    });

    let options = ClientOptions {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_millis(300)),
        write_timeout: Some(Duration::from_secs(2)),
    };
    let mut client = Client::connect_with(addr, options).unwrap();
    let start = Instant::now();
    let err = client
        .execute("SELECT 1")
        .expect_err("silent server must not hang the client");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "read timeout must fire promptly, took {elapsed:?} ({err})"
    );
    silent.join().unwrap();
}
