//! Two-tier integration: TCP server, client library, UDF migration in both
//! directions (paper §2.1 and §6.4).

use jaguar_core::{ByteArray, Client, DataType, Database, UdfSignature, Value};

fn server_db() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE items (id INT, payload BYTEARRAY)")
        .unwrap();
    db.execute("INSERT INTO items VALUES (1, X'0A0B'), (2, X'FF'), (3, X'000102030405')")
        .unwrap();
    db
}

#[test]
fn execute_over_the_wire() {
    let db = server_db();
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let r = client
        .execute("SELECT id FROM items WHERE id >= 2")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.schema.field(0).unwrap().name, "id");
    assert_eq!(r.stats.rows_scanned, 3);

    // DML over the wire.
    let r = client
        .execute("INSERT INTO items VALUES (4, NULL)")
        .unwrap();
    assert_eq!(r.affected, 1);
    let r = client.execute("SELECT id FROM items").unwrap();
    assert_eq!(r.rows.len(), 4);
    client.quit().unwrap();
}

#[test]
fn server_errors_are_reported_not_fatal() {
    let db = server_db();
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.execute("SELECT zap FROM items").is_err());
    // Connection still usable after an error.
    assert_eq!(
        client.execute("SELECT id FROM items").unwrap().rows.len(),
        3
    );
}

#[test]
fn multiple_concurrent_clients() {
    let db = server_db();
    let server = db.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let mut handles = Vec::new();
    for _ in 0..6 {
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for _ in 0..20 {
                let r = c.execute("SELECT id FROM items WHERE id = 1").unwrap();
                assert_eq!(r.rows.len(), 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn udf_upload_execute_download_roundtrip() {
    let db = server_db();
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let sig = UdfSignature::new(vec![DataType::Bytes], DataType::Int);
    client
        .compile_and_register(
            "firstbyte",
            &sig,
            "fn main(b: bytes) -> i64 { if len(b) == 0 { return -1; } return b[0]; }",
            Some(&[Value::Bytes(ByteArray::new(vec![42]))]),
        )
        .unwrap();

    // Server-side execution.
    let r = client
        .execute("SELECT id, firstbyte(payload) FROM items WHERE firstbyte(payload) > 100")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(2));

    // Client-side execution of the identical bytecode.
    let mut local = client.fetch_udf("firstbyte").unwrap();
    assert_eq!(
        local
            .invoke(&[Value::Bytes(ByteArray::new(vec![7, 8]))])
            .unwrap(),
        Value::Int(7)
    );
    assert_eq!(local.signature().ret, DataType::Int);
}

#[test]
fn malicious_upload_rejected_by_server_side_verification() {
    let db = server_db();
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let sig = UdfSignature::new(vec![], DataType::Int);

    // Hand-craft a module whose bytecode underflows the stack — a hostile
    // client bypassing the compiler. The server's verifier must refuse it.
    let evil = {
        let src = "module evil\nfunc main() -> i64\n  consti 0\n  ret\nend\n";
        let mut m = jaguar_vm::asm::assemble(src).unwrap();
        m.functions[0].code = vec![jaguar_vm::Insn::AddI, jaguar_vm::Insn::Ret];
        m.to_bytes()
    };
    let err = client
        .register_udf("evil", &sig, &evil, "main", false)
        .expect_err("unverifiable bytecode must be rejected");
    assert!(err.to_string().contains("underflow"), "{err}");

    // An import the server does not offer is likewise rejected.
    let module = jaguar_lang::compile(
        "sneaky",
        "import read_secret(i64) -> i64; fn main() -> i64 { return read_secret(0); }",
    )
    .unwrap();
    let err = client
        .register_udf("sneaky", &sig, &module.to_bytes(), "main", false)
        .expect_err("unoffered import must be rejected");
    assert!(err.to_string().contains("does not offer"), "{err}");
}

#[test]
fn fetching_native_udf_is_refused() {
    let db = server_db();
    db.register_udf(jaguar_udf::generic::def_native());
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = match client.fetch_udf("generic") {
        Err(e) => e,
        Ok(_) => panic!("native code must not migrate"),
    };
    assert!(err.to_string().contains("cannot migrate"), "{err}");
}

#[test]
fn explain_over_the_wire() {
    let db = server_db();
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let plan = client.explain("SELECT id FROM items WHERE id < 2").unwrap();
    assert!(plan.contains("SeqScan items"), "{plan}");
}
