//! Crash-recovery harness: kill a child process at every named crash point
//! in the commit path, reopen the database, and assert the durability
//! contract — committed transactions stay, uncommitted ones vanish.
//!
//! The harness re-executes this very test binary as the victim: the hidden
//! `crash_child` test below runs one phase (set up committed state, or
//! perform the insert that dies mid-commit) driven by environment
//! variables, and `jaguar_wal::fault` aborts it at the armed point.

use std::path::{Path, PathBuf};
use std::process::Command;

use jaguar_core::wal::fault::{CRASH_POINTS, CRASH_POINT_ENV, TORN_TAIL_ENV};
use jaguar_core::{Config, Database, SyncMode, Value};

const DIR_ENV: &str = "JAGUAR_HARNESS_DIR";
const PHASE_ENV: &str = "JAGUAR_HARNESS_PHASE";
/// When set, harness children open the database with this encryption
/// passphrase — the same durability matrix, with every page and WAL image
/// sealed.
const ENC_ENV: &str = "JAGUAR_HARNESS_ENC";

fn harness_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jaguar-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> Config {
    let c = Config::default().with_sync_mode(SyncMode::Full);
    match std::env::var(ENC_ENV) {
        Ok(key) => c.with_encryption_key(key),
        Err(_) => c,
    }
}

/// Re-exec this test binary, running only the `crash_child` helper with the
/// given phase and extra environment.
fn spawn_child(dir: &Path, phase: &str, extra_env: &[(&str, &str)]) -> std::process::ExitStatus {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args(["crash_child", "--exact", "--ignored", "--test-threads=1"])
        .env(DIR_ENV, dir)
        .env(PHASE_ENV, phase)
        .env_remove(CRASH_POINT_ENV)
        .env_remove(TORN_TAIL_ENV)
        .env_remove(ENC_ENV);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap();
    if !out.status.success() {
        // Aborts are expected for armed children; surface output on the
        // parent's stderr to make genuine failures diagnosable.
        eprintln!("--- child ({phase}) stderr ---");
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
    }
    out.status
}

/// On Unix an `abort()` shows up as death-by-signal (no exit code); a
/// panicking or failing child test instead exits with a code. Asserting on
/// this distinguishes "died at the crash point" from "harness bug".
fn assert_died_abruptly(status: std::process::ExitStatus, context: &str) {
    assert!(!status.success(), "{context}: child exited cleanly");
    #[cfg(unix)]
    assert!(
        status.code().is_none(),
        "{context}: child exited with code {:?}, expected death by signal (abort)",
        status.code()
    );
}

/// Values of column `a` in table `t`, sorted.
fn rows(db: &Database) -> Vec<i64> {
    let r = db.execute("SELECT a FROM t").unwrap();
    let mut v: Vec<i64> = r
        .rows
        .iter()
        .map(|row| match row.get(0).unwrap() {
            Value::Int(i) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    v.sort_unstable();
    v
}

/// The victim, spawned by the tests below. Hidden from normal runs.
#[test]
#[ignore = "helper: re-executed as the crash victim by the harness tests"]
fn crash_child() {
    let Some(dir) = std::env::var_os(DIR_ENV) else {
        return;
    };
    let phase = std::env::var(PHASE_ENV).unwrap_or_default();
    let db = Database::open(PathBuf::from(dir), config()).unwrap();
    match phase.as_str() {
        // Committed baseline: one durable row, clean close.
        "setup" => {
            db.execute("CREATE TABLE t (a INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.close().unwrap();
        }
        // The doomed statement: the armed crash point (or torn-tail
        // simulation) aborts the process inside this commit.
        "crash" => {
            db.execute("INSERT INTO t VALUES (2)").unwrap();
            // Reached only if nothing was armed — a harness bug. Exit with
            // a code (not a signal) so the parent can tell the difference.
            eprintln!("crash_child: insert completed without aborting");
            std::process::exit(3);
        }
        other => panic!("unknown harness phase {other:?}"),
    }
}

/// Kill the child at every registered crash point in turn; after each
/// crash, recovery must keep the committed row and must not resurrect the
/// row whose commit never became durable. Points at or past the commit
/// record reaching the OS survive a process crash (the file keeps data the
/// process already wrote).
#[test]
fn every_crash_point_recovers_to_a_consistent_state() {
    for point in CRASH_POINTS {
        let dir = harness_dir(&point.replace('.', "-"));
        let setup = spawn_child(&dir, "setup", &[]);
        assert!(setup.success(), "{point}: setup child failed");

        let status = spawn_child(&dir, "crash", &[(CRASH_POINT_ENV, point)]);
        assert_died_abruptly(status, point);

        let before = jaguar_core::obs::global().snapshot();
        let db = Database::open(&dir, config()).unwrap();
        let after = db.metrics();

        // A process crash preserves everything already written to the log
        // file, so the commit record's mere write makes the txn visible to
        // recovery; only points before it lose the in-flight statement.
        let committed = matches!(*point, "wal.after_commit_write" | "wal.after_commit_sync");
        let expect = if committed { vec![1, 2] } else { vec![1] };
        assert_eq!(rows(&db), expect, "{point}: wrong rows after recovery");

        let recovered = after.counter("wal.recovered_txns") - before.counter("wal.recovered_txns");
        assert_eq!(
            recovered,
            u64::from(committed),
            "{point}: wrong wal.recovered_txns delta"
        );
        if committed {
            let replayed =
                after.counter("wal.replayed_pages") - before.counter("wal.replayed_pages");
            assert!(replayed >= 1, "{point}: no pages replayed");
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn commit record (half a frame on the log tail, as after a power
/// cut mid-sector) must roll the transaction back: the CRC check stops the
/// scan cleanly and the txn has no commit marker.
#[test]
fn torn_commit_record_rolls_back() {
    let dir = harness_dir("torn");
    let setup = spawn_child(&dir, "setup", &[]);
    assert!(setup.success(), "setup child failed");

    let status = spawn_child(&dir, "crash", &[(TORN_TAIL_ENV, "1")]);
    assert_died_abruptly(status, "torn tail");

    let db = Database::open(&dir, config()).unwrap();
    assert_eq!(rows(&db), vec![1], "torn commit must not be replayed");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without any fault armed, a kill-free double-open round-trips all data
/// and recovery is a no-op after the clean close.
#[test]
fn clean_close_needs_no_recovery() {
    let dir = harness_dir("clean");
    {
        let db = Database::open(&dir, config()).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        db.close().unwrap();
    }
    let before = jaguar_core::obs::global().snapshot();
    let db = Database::open(&dir, config()).unwrap();
    let after = db.metrics();
    assert_eq!(rows(&db), vec![1, 2, 3]);
    assert_eq!(
        after.counter("wal.recovered_txns"),
        before.counter("wal.recovered_txns"),
        "clean close must leave nothing to recover"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A statement that fails mid-way (second INSERT row has the wrong type)
/// has no rollback: its partial effects are visible — and must be sealed
/// as that statement's *own* WAL transaction at failure time, not left
/// unlogged to ride inside the next statement's commit. With the seal, the
/// partial row survives a crash that happens before any later statement.
#[test]
fn failed_statement_partial_effects_are_sealed() {
    let dir = harness_dir("partial");
    {
        let db = Database::open(&dir, config()).unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let err = db
            .execute("INSERT INTO t VALUES (1), ('oops')")
            .unwrap_err();
        assert!(err.to_string().contains("expects INT"), "{err}");
        // No rollback: the first row is visible…
        assert_eq!(rows(&db), vec![1]);
        // …and the crash (no checkpoint, no clean close) happens here.
        std::mem::forget(db);
    }
    let db = Database::open(&dir, config()).unwrap();
    assert_eq!(
        rows(&db),
        vec![1],
        "partial effects must be durable at failure time, not deferred"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The durability matrix again, with encryption at rest switched on: every
/// crash point must recover to the same consistent state it does for a
/// plaintext database — committed stays, uncommitted vanishes — with WAL
/// replay operating on sealed page images throughout.
#[test]
fn every_crash_point_recovers_with_encryption_on() {
    const KEY: &str = "crash-harness-passphrase";
    for point in jaguar_core::wal::fault::CRASH_POINTS {
        let dir = harness_dir(&format!("enc-{}", point.replace('.', "-")));
        let setup = spawn_child(&dir, "setup", &[(ENC_ENV, KEY)]);
        assert!(setup.success(), "{point}: encrypted setup child failed");

        let status = spawn_child(&dir, "crash", &[(CRASH_POINT_ENV, point), (ENC_ENV, KEY)]);
        assert_died_abruptly(status, point);

        let db = Database::open(
            &dir,
            Config::default()
                .with_sync_mode(SyncMode::Full)
                .with_encryption_key(KEY),
        )
        .unwrap();
        let committed = matches!(*point, "wal.after_commit_write" | "wal.after_commit_sync");
        let expect = if committed { vec![1, 2] } else { vec![1] };
        assert_eq!(
            rows(&db),
            expect,
            "{point}: wrong rows after encrypted recovery"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Opening an encrypted database with the wrong passphrase (or none) must
/// fail cleanly before any WAL replay touches a page — zero pages
/// replayed, and the original key still opens it afterwards.
#[test]
fn wrong_key_fails_cleanly_with_zero_pages_replayed() {
    const KEY: &str = "the-right-passphrase";
    let dir = harness_dir("wrongkey");
    let setup = spawn_child(&dir, "setup", &[(ENC_ENV, KEY)]);
    assert!(setup.success(), "encrypted setup child failed");
    // Crash mid-commit so a reopen genuinely has WAL work pending.
    let status = spawn_child(
        &dir,
        "crash",
        &[(CRASH_POINT_ENV, "wal.after_commit_write"), (ENC_ENV, KEY)],
    );
    assert_died_abruptly(status, "wrong-key harness");

    let base = Config::default().with_sync_mode(SyncMode::Full);
    let before = jaguar_core::obs::global().snapshot();
    let Err(err) = Database::open(&dir, base.clone().with_encryption_key("not-the-key")) else {
        panic!("wrong key must not open the database");
    };
    assert!(
        err.to_string().contains("encryption_key"),
        "wrong key must name the key problem: {err}"
    );
    let Err(err) = Database::open(&dir, base.clone()) else {
        panic!("missing key must not open the database");
    };
    assert!(
        err.to_string().contains("encryption_key"),
        "missing key must name the key problem: {err}"
    );
    let after = jaguar_core::obs::global().snapshot();
    assert_eq!(
        after.counter("wal.replayed_pages"),
        before.counter("wal.replayed_pages"),
        "a failed key check must not replay a single page"
    );
    // The right key still recovers the crashed commit.
    let db = Database::open(&dir, base.with_encryption_key(KEY)).unwrap();
    assert_eq!(rows(&db), vec![1, 2]);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance byte-scan: with encryption on, no data file and no WAL
/// segment may contain row plaintext. The same scan against a plaintext
/// twin database must find the sentinel — proving the scan itself works.
#[test]
fn encrypted_files_contain_no_plaintext() {
    const SENTINEL: &str = "TOPSECRET_TENANT_ROW_9481";

    fn populate(db: &Database) {
        db.execute("CREATE TABLE docs (id INT, body VARCHAR)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO docs VALUES ({i}, '{SENTINEL}')"))
                .unwrap();
        }
        // Leave WAL content behind too: checkpoint flushes pages, then one
        // more insert lands in the live log segment.
        db.checkpoint().unwrap();
        db.execute(&format!("INSERT INTO docs VALUES (999, '{SENTINEL}')"))
            .unwrap();
    }

    fn scan_files(dir: &Path, needle: &[u8]) -> Vec<PathBuf> {
        let mut hits = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).unwrap() {
                let path = entry.unwrap().path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    let bytes = std::fs::read(&path).unwrap();
                    if bytes.windows(needle.len()).any(|w| w == needle) {
                        hits.push(path);
                    }
                }
            }
        }
        hits
    }

    let enc_dir = harness_dir("scan-enc");
    {
        let db = Database::open(
            &enc_dir,
            Config::default().with_encryption_key("scan-passphrase"),
        )
        .unwrap();
        populate(&db);
        std::mem::forget(db); // no clean close: WAL tail stays on disk
    }
    let hits = scan_files(&enc_dir, SENTINEL.as_bytes());
    assert!(
        hits.is_empty(),
        "plaintext sentinel found in encrypted files: {hits:?}"
    );

    // Control: the identical workload without encryption must be visible
    // to the same scan, or the assertion above proves nothing.
    let plain_dir = harness_dir("scan-plain");
    {
        let db = Database::open(&plain_dir, Config::default()).unwrap();
        populate(&db);
        std::mem::forget(db);
    }
    let hits = scan_files(&plain_dir, SENTINEL.as_bytes());
    assert!(
        !hits.is_empty(),
        "control scan found nothing — the byte-scan is broken"
    );
    let _ = std::fs::remove_dir_all(&enc_dir);
    let _ = std::fs::remove_dir_all(&plain_dir);
}

/// `wal.*` metrics are visible through the public facade.
#[test]
fn wal_metrics_are_exposed() {
    let dir = harness_dir("metrics");
    let db = Database::open(&dir, config()).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    db.checkpoint().unwrap();
    let m = db.metrics();
    assert!(m.counter("wal.commits") >= 1, "{m:?}");
    assert!(m.counter("wal.bytes") > 0);
    assert!(m.counter("wal.checkpoints") >= 1);
    assert!(m.counter("wal.fsyncs") >= 1);
    assert!(
        m.histogram("wal.commit_latency_us")
            .is_some_and(|h| h.count >= 1),
        "commit latency histogram missing"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
