//! End-to-end integration: SQL → planner → executor → storage, with UDFs
//! in several designs, on workloads shaped like the paper's.

use jaguar_core::{ByteArray, Config, DataType, Database, Tuple, UdfDesign, UdfSignature, Value};

fn loaded_db(rows: i64, bytes: usize) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE rel (id INT, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Bytes(ByteArray::patterned(bytes, i as u64)),
        ]))
        .unwrap();
    }
    db
}

#[test]
fn paper_benchmark_query_end_to_end() {
    let db = loaded_db(100, 100);
    db.register_udf(jaguar_udf::generic::def_native());
    let r = db
        .execute("SELECT generic(R.bytearray, 10, 1, 0) FROM rel R WHERE R.id < 50")
        .unwrap();
    assert_eq!(r.rows.len(), 50);
    assert_eq!(r.stats.udf_invocations, 50);
}

#[test]
fn large_tuples_cross_page_boundaries() {
    // 10,000-byte tuples on 8 KiB pages: every row overflows.
    let db = loaded_db(50, 10_000);
    let r = db
        .execute("SELECT bytearray FROM rel WHERE id = 33")
        .unwrap();
    let Value::Bytes(b) = r.rows[0].get(0).unwrap() else {
        panic!()
    };
    assert_eq!(b.len(), 10_000);
    assert_eq!(b, &ByteArray::patterned(10_000, 33));
}

#[test]
fn jagscript_udf_over_sql() {
    let db = loaded_db(20, 64);
    db.register_jagscript_udf(
        "bytesum",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        "fn main(b: bytes) -> i64 {
            let s: i64 = 0;
            let i: i64 = 0;
            while i < len(b) { s = s + b[i]; i = i + 1; }
            return s;
        }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    let r = db
        .execute("SELECT id, bytesum(bytearray) FROM rel WHERE bytesum(bytearray) > 0")
        .unwrap();
    assert!(!r.rows.is_empty());
    // Verify one row against a direct computation.
    let id = r.rows[0].get(0).unwrap().as_int().unwrap();
    let expect: i64 = ByteArray::patterned(64, id as u64)
        .as_slice()
        .iter()
        .map(|&b| b as i64)
        .sum();
    assert_eq!(r.rows[0].get(1).unwrap().as_int().unwrap(), expect);
}

#[test]
fn udf_error_aborts_query_but_not_engine() {
    let db = loaded_db(10, 8);
    db.register_jagscript_udf(
        "bad",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        "fn main(b: bytes) -> i64 { return b[9999]; }", // traps
        UdfDesign::Sandboxed,
    )
    .unwrap();
    assert!(db.execute("SELECT bad(bytearray) FROM rel").is_err());
    // Engine still healthy.
    assert_eq!(db.execute("SELECT id FROM rel").unwrap().rows.len(), 10);
}

#[test]
fn multi_statement_session() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE a (x INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2)").unwrap();
    db.execute("CREATE TABLE b (y VARCHAR)").unwrap();
    db.execute("INSERT INTO b VALUES ('hi')").unwrap();
    assert_eq!(db.execute("SELECT x FROM a").unwrap().rows.len(), 2);
    assert_eq!(db.execute("SELECT y FROM b").unwrap().rows.len(), 1);
    db.execute("DROP TABLE a").unwrap();
    assert!(db.execute("SELECT x FROM a").is_err());
    assert_eq!(db.execute("SELECT y FROM b").unwrap().rows.len(), 1);
}

#[test]
fn on_disk_database_roundtrip() {
    let dir = std::env::temp_dir().join(format!("jaguar-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir, Config::default()).unwrap();
    db.execute("CREATE TABLE t (a INT, b BYTEARRAY)").unwrap();
    db.execute("INSERT INTO t VALUES (1, X'AB'), (2, X'CD')")
        .unwrap();
    let r = db.execute("SELECT b FROM t WHERE a = 2").unwrap();
    assert_eq!(
        r.rows[0].get(0).unwrap(),
        &Value::Bytes(ByteArray::new(vec![0xCD]))
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn database_survives_restart() {
    let dir = std::env::temp_dir().join(format!("jaguar-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, Config::default()).unwrap();
        db.execute("CREATE TABLE logs (seq INT, payload BYTEARRAY)")
            .unwrap();
        db.execute("INSERT INTO logs VALUES (1, X'AA'), (2, X'BB'), (3, NULL)")
            .unwrap();
        db.catalog().flush_all().unwrap();
    }
    let db = Database::open(&dir, Config::default()).unwrap();
    let r = db
        .execute("SELECT seq FROM logs WHERE payload <> X'AA'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(2));
    let agg = db.execute("SELECT COUNT(*), MAX(seq) FROM logs").unwrap();
    assert_eq!(agg.rows[0].get(0).unwrap(), &Value::Int(3));
    assert_eq!(agg.rows[0].get(1).unwrap(), &Value::Int(3));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sql_dml_and_aggregates_end_to_end() {
    let db = loaded_db(60, 32);
    db.execute("DELETE FROM rel WHERE id >= 50").unwrap();
    let r = db.execute("SELECT COUNT(*) FROM rel").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(50));
    db.execute("UPDATE rel SET bytearray = X'FF' WHERE id < 10")
        .unwrap();
    db.register_jagscript_udf(
        "blen",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        "fn main(b: bytes) -> i64 { return len(b); }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    // Aggregate over a sandboxed UDF's output, grouped by it too.
    let r = db
        .execute("SELECT blen(bytearray) AS sz, COUNT(*) FROM rel GROUP BY blen(bytearray)")
        .unwrap();
    assert_eq!(r.rows.len(), 2); // 1-byte and 32-byte groups
    let mut sizes: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|t| {
            (
                t.get(0).unwrap().as_int().unwrap(),
                t.get(1).unwrap().as_int().unwrap(),
            )
        })
        .collect();
    sizes.sort();
    assert_eq!(sizes, vec![(1, 10), (32, 40)]);
}

#[test]
fn predicate_ordering_saves_work_at_scale() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let db = loaded_db(200, 16);
    let calls = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&calls);
    // Stable: the default (Volatile) would pin the UDF at its written
    // position, which is exactly what this test must not exercise.
    db.register_native_udf_with_volatility(
        "pricey",
        UdfSignature::new(vec![DataType::Bytes], DataType::Bool),
        jaguar_core::Volatility::Stable,
        move |args, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Bool(!args[0].as_bytes()?.is_empty()))
        },
    );
    // UDF written first; optimizer must run `id < 10` first.
    let r = db
        .execute("SELECT id FROM rel WHERE pricey(bytearray) = TRUE AND id < 10")
        .unwrap();
    assert_eq!(r.rows.len(), 10);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        10,
        "UDF ran on 10 rows, not 200"
    );
}

#[test]
fn nulls_flow_through_udfs_and_predicates() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT, b BYTEARRAY)").unwrap();
    db.execute("INSERT INTO t VALUES (1, X'01'), (2, NULL)")
        .unwrap();
    db.register_native_udf(
        "len_or_neg",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        |args, _| {
            Ok(match &args[0] {
                Value::Null => Value::Int(-1),
                v => Value::Int(v.as_bytes()?.len() as i64),
            })
        },
    );
    let r = db.execute("SELECT a, len_or_neg(b) FROM t").unwrap();
    assert_eq!(r.rows[0].get(1).unwrap(), &Value::Int(1));
    assert_eq!(r.rows[1].get(1).unwrap(), &Value::Int(-1));
}
