//! Overload acceptance test (jaguar-guard): drive a server at ≥4x its
//! admission capacity and assert the degradation contract end to end —
//! zero panics or poisoned engines, sheds bounded by the admission
//! window, a control plane that keeps answering throughout, and a
//! post-load engine that serves queries with every breaker closed.
//!
//! The full harness with latency quantiles and the `BENCH_load.json`
//! artifact lives in `jaguar-bench` (`cargo run -p jaguar-bench --bin
//! loadtest`); this test is the tier-1 distillation of its gate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jaguar_core::{
    Client, ClientOptions, Config, DataType, Database, JaguarError, UdfSignature, Value,
};

const CAP: usize = 2;
const DEPTH: usize = 2;
const SESSIONS: usize = 4 * CAP; // 4x the admission capacity
const STATEMENTS: usize = 30;
const TIMEOUT_MS: u64 = 300;

#[test]
fn overload_at_4x_capacity_degrades_gracefully() {
    let db = Database::with_config(Config {
        max_connections: CAP,
        admission_queue_depth: DEPTH,
        admission_timeout_ms: TIMEOUT_MS,
        // A small retry budget: sheds are expected and absorbed, but an
        // exhausted budget must still surface as ServerBusy, not panic.
        client_retry_attempts: 3,
        client_retry_base_ms: 5,
        ..Config::default()
    });
    db.execute("CREATE TABLE load (id INT, b BYTEARRAY)")
        .unwrap();
    for i in 0..32 {
        db.execute(&format!("INSERT INTO load VALUES ({i}, X'2a17')"))
            .unwrap();
    }
    // A sandboxed JagScript UDF keeps the VM (and its breaker) in the
    // loop without needing the worker binary.
    db.register_jagscript_udf(
        "lb",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        "fn main(b: bytes) -> i64 { return b[0]; }",
        jaguar_core::UdfDesign::Sandboxed,
    )
    .unwrap();

    let before = db.metrics();
    let mut server = db.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Control-plane prober: pings and metrics must be served for the
    // whole storm — admission never gates them.
    let stop_probe = Arc::new(AtomicBool::new(false));
    let probe_failures = Arc::new(AtomicU64::new(0));
    let prober = {
        let stop = Arc::clone(&stop_probe);
        let failures = Arc::clone(&probe_failures);
        std::thread::spawn(move || {
            let mut c = match Client::connect_with(addr, ClientOptions::default().no_retry()) {
                Ok(c) => c,
                Err(_) => return failures.store(u64::MAX, Ordering::SeqCst),
            };
            while !stop.load(Ordering::SeqCst) {
                if c.ping().is_err() || c.metrics().is_err() {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    let statements = [
        "SELECT id FROM load WHERE id >= 8",
        "SELECT lb(b) FROM load WHERE id < 16",
        "INSERT INTO load VALUES (99, X'05ff')",
        "DELETE FROM load WHERE id = 99",
    ];
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|s| {
            std::thread::spawn(move || -> (usize, usize, Duration) {
                let opts = ClientOptions {
                    retry: jaguar_core::retry::RetryPolicy {
                        max_attempts: 3,
                        base_delay_ms: 5,
                        max_delay_ms: 50,
                        seed: s as u64,
                    },
                    ..ClientOptions::default()
                };
                let mut c = Client::connect_with(addr, opts).unwrap();
                let (mut ok, mut shed) = (0usize, 0usize);
                let mut max_shed = Duration::ZERO;
                for i in 0..STATEMENTS {
                    let stmt = statements[(s + i) % statements.len()];
                    let start = Instant::now();
                    match c.execute(stmt) {
                        Ok(_) => ok += 1,
                        Err(JaguarError::ServerBusy { .. }) => {
                            shed += 1;
                            max_shed = max_shed.max(start.elapsed());
                        }
                        // Anything else — a protocol error, a poisoned
                        // engine, a breaker trip — fails the test.
                        Err(e) => panic!("session {s} statement {i} failed hard: {e}"),
                    }
                }
                (ok, shed, max_shed)
            })
        })
        .collect();

    let (mut ok, mut shed) = (0usize, 0usize);
    let mut max_shed = Duration::ZERO;
    for h in sessions {
        let (o, s, m) = h.join().expect("no session thread may panic under load");
        ok += o;
        shed += s;
        max_shed = max_shed.max(m);
    }
    stop_probe.store(true, Ordering::SeqCst);
    prober.join().unwrap();

    // Work got done, and whatever was shed stayed inside the admission
    // window: per attempt the server holds a request at most TIMEOUT_MS,
    // so 3 attempts with capped backoff bound the observed latency.
    assert_eq!(ok + shed, SESSIONS * STATEMENTS);
    assert!(ok > 0, "an overloaded server must still complete work");
    let bound = Duration::from_millis(3 * (TIMEOUT_MS + 50) + 2_000);
    assert!(
        max_shed < bound,
        "shed latency {max_shed:?} exceeds {bound:?}"
    );

    // The control plane was answered for the entire storm.
    assert_eq!(
        probe_failures.load(Ordering::SeqCst),
        0,
        "control plane starved during overload"
    );

    // Post-load: the engine is not poisoned — a fresh session queries
    // data and the sandboxed UDF immediately.
    let mut post = Client::connect_with(addr, ClientOptions::default()).unwrap();
    let r = post.execute("SELECT lb(b) FROM load WHERE id = 0").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(0x2a));
    server.stop();

    // Overload is not failure: the storm tripped no breaker and the
    // admission path (not errors) absorbed the excess.
    let after = db.metrics();
    let trips = after.counter("udf.breaker.trips") - before.counter("udf.breaker.trips");
    assert_eq!(trips, 0, "overload must not trip UDF breakers");
    let rejected = after.counter("net.rejected_busy") - before.counter("net.rejected_busy");
    let queued = after.counter("net.admission.queued") - before.counter("net.admission.queued");
    assert!(
        queued > 0 || rejected > 0,
        "a 4x storm must exercise the admission gate (queued={queued}, rejected={rejected})"
    );
}
