//! Multi-tenant isolation, end to end: row/column security labels are
//! planner rewrites (never app-side filtering), enforced identically for
//! SELECT, DML, EXPLAIN, UDF argument flows, serial or parallel, batched
//! or per-tuple, embedded or over the wire.

use std::sync::{Arc, Mutex};

use jaguar_core::{
    Config, DataType, Database, JaguarError, SessionContext, UdfSignature, Value, Volatility,
};

/// Two tenants plus a free-for-all `notes` column only admins may read.
fn tenant_db(config: Config) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE accts (id INT, tenant VARCHAR, balance INT, notes VARCHAR)")
        .unwrap();
    for i in 0..40i64 {
        let tenant = if i % 2 == 0 { "tech" } else { "energy" };
        db.execute(&format!(
            "INSERT INTO accts VALUES ({i}, '{tenant}', {}, 'n{i}')",
            i * 10
        ))
        .unwrap();
    }
    db.set_table_label(
        "accts",
        Some("tenant = session.tenant OR session.role = 'admin'"),
    )
    .unwrap();
    db
}

fn alice() -> SessionContext {
    SessionContext::new("alice")
        .with_attr("tenant", "tech")
        .with_attr("role", "member")
}

fn bob() -> SessionContext {
    SessionContext::new("bob")
        .with_attr("tenant", "energy")
        .with_attr("role", "member")
}

fn root() -> SessionContext {
    SessionContext::new("root")
        .with_attr("tenant", "hq")
        .with_attr("role", "admin")
}

fn ids(r: &jaguar_core::QueryResult) -> Vec<i64> {
    let mut v: Vec<i64> = r
        .rows
        .iter()
        .map(|t| match t.get(0).unwrap() {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn select_sees_only_the_sessions_tenant() {
    let db = tenant_db(Config::default());
    let a = db
        .execute_as("SELECT id FROM accts", Some(&alice()))
        .unwrap();
    assert_eq!(ids(&a), (0..40).filter(|i| i % 2 == 0).collect::<Vec<_>>());
    let b = db.execute_as("SELECT id FROM accts", Some(&bob())).unwrap();
    assert_eq!(ids(&b), (0..40).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    // Admins and the in-process system principal see everything.
    let r = db
        .execute_as("SELECT id FROM accts", Some(&root()))
        .unwrap();
    assert_eq!(ids(&r).len(), 40);
    let s = db.execute("SELECT id FROM accts").unwrap();
    assert_eq!(ids(&s).len(), 40);
    // The label composes with user predicates, not replaces them.
    let a = db
        .execute_as("SELECT id FROM accts WHERE id < 10", Some(&alice()))
        .unwrap();
    assert_eq!(ids(&a), vec![0, 2, 4, 6, 8]);
}

#[test]
fn dml_touches_only_visible_rows() {
    let db = tenant_db(Config::default());
    let upd = db
        .execute_as("UPDATE accts SET balance = 0 WHERE id < 10", Some(&alice()))
        .unwrap();
    assert_eq!(upd.affected, 5, "alice owns 5 of the first 10 rows");
    // Bob's rows kept their balances.
    let untouched = db
        .execute("SELECT COUNT(*) FROM accts WHERE balance = 0")
        .unwrap();
    assert_eq!(untouched.rows[0].get(0).unwrap(), &Value::Int(5));
    let del = db.execute_as("DELETE FROM accts", Some(&bob())).unwrap();
    assert_eq!(del.affected, 20, "bob can delete only his tenant's rows");
    let left = db.execute("SELECT COUNT(*) FROM accts").unwrap();
    assert_eq!(left.rows[0].get(0).unwrap(), &Value::Int(20));
}

#[test]
fn insert_must_satisfy_the_row_label() {
    let db = tenant_db(Config::default());
    // Alice can add rows to her own tenant…
    db.execute_as(
        "INSERT INTO accts VALUES (100, 'tech', 1, 'x')",
        Some(&alice()),
    )
    .unwrap();
    // …but cannot plant rows into another tenant.
    let err = db
        .execute_as(
            "INSERT INTO accts VALUES (101, 'energy', 1, 'x')",
            Some(&alice()),
        )
        .unwrap_err();
    assert!(matches!(err, JaguarError::SecurityViolation(_)), "{err}");
    assert!(
        err.to_string()
            .contains("INSERT into table 'accts' violates its row label for principal 'alice'"),
        "{err}"
    );
    let planted = db
        .execute("SELECT COUNT(*) FROM accts WHERE id = 101")
        .unwrap();
    assert_eq!(planted.rows[0].get(0).unwrap(), &Value::Int(0));
    // The admin may write anywhere.
    db.execute_as(
        "INSERT INTO accts VALUES (102, 'energy', 1, 'x')",
        Some(&root()),
    )
    .unwrap();
}

#[test]
fn explain_and_explain_analyze_run_under_the_label() {
    let db = tenant_db(Config::default());
    let plan = db
        .explain_as("SELECT id FROM accts WHERE id < 10", Some(&alice()))
        .unwrap();
    assert!(plan.contains("[labeled]"), "{plan}");
    assert!(
        plan.contains("label: row filter injected for principal 'alice'"),
        "{plan}"
    );
    // The injected filter is pinned ahead of every user predicate.
    let lab = plan.find("[labeled]").unwrap();
    let user = plan.find("(id < 10)").unwrap();
    assert!(lab < user, "label filter must come first:\n{plan}");
    // EXPLAIN ANALYZE actually executes — under the same label.
    let analyzed = db
        .explain_analyze_as("SELECT id FROM accts", Some(&alice()))
        .unwrap();
    assert!(analyzed.contains("[labeled]"), "{analyzed}");
    // A session the label denies fails EXPLAIN with the same error text
    // as execution (plan-time enforcement has a single site).
    let eve = SessionContext::new("eve");
    let e1 = db
        .explain_as("SELECT id FROM accts", Some(&eve))
        .unwrap_err();
    let e2 = db
        .execute_as("SELECT id FROM accts", Some(&eve))
        .unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
    assert!(
        e1.to_string().contains("denied for principal 'eve'"),
        "{e1}"
    );
}

/// UDF argument flow: a recording UDF run under a tenant session — at
/// dop=4 with batching enabled — must never observe a foreign tenant's
/// values, because the label filter is injected *before* every user
/// predicate and projection.
#[test]
fn udf_arguments_never_see_foreign_rows_parallel_and_batched() {
    let db = tenant_db(Config::default().with_dop(4).with_udf_batch_size(8));
    let seen: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let sig = UdfSignature::new(vec![DataType::Int], DataType::Int);
    db.register_native_udf_with_volatility("probe", sig, Volatility::Stable, move |args, _| {
        let v = args[0].as_int()?;
        seen2.lock().unwrap().push(v);
        Ok(Value::Int(v))
    });
    let r = db
        .execute_as("SELECT probe(id) FROM accts", Some(&alice()))
        .unwrap();
    assert_eq!(ids(&r).len(), 20);
    let mut observed = seen.lock().unwrap().clone();
    observed.sort_unstable();
    observed.dedup();
    assert!(
        observed.iter().all(|v| v % 2 == 0),
        "probe saw foreign-tenant rows: {observed:?}"
    );
    assert_eq!(observed.len(), 20, "probe must still see every own row");
}

#[test]
fn column_label_prunes_star_and_denies_references() {
    let db = tenant_db(Config::default());
    db.set_column_label("accts", "notes", Some("session.role = 'admin'"))
        .unwrap();
    let starred = db
        .execute_as("SELECT * FROM accts WHERE id = 0", Some(&alice()))
        .unwrap();
    assert_eq!(starred.schema.len(), 3, "notes must be pruned from *");
    let err = db
        .execute_as("SELECT notes FROM accts", Some(&alice()))
        .unwrap_err();
    assert!(
        err.to_string()
            .contains("access to column 'notes' of table 'accts' denied for principal 'alice'"),
        "{err}"
    );
    // Nor may the column leave through a UDF argument or a DML write.
    let sig = UdfSignature::new(vec![DataType::Str], DataType::Int);
    db.register_native_udf("leak", sig, |_, _| Ok(Value::Int(0)));
    let err = db
        .execute_as("SELECT leak(notes) FROM accts", Some(&alice()))
        .unwrap_err();
    assert!(matches!(err, JaguarError::SecurityViolation(_)), "{err}");
    let err = db
        .execute_as("UPDATE accts SET notes = 'x'", Some(&alice()))
        .unwrap_err();
    assert!(matches!(err, JaguarError::SecurityViolation(_)), "{err}");
    // Admins still see the full row.
    let full = db
        .execute_as("SELECT * FROM accts WHERE id = 0", Some(&root()))
        .unwrap();
    assert_eq!(full.schema.len(), 4);
}

#[test]
fn denials_and_rewrites_are_metered() {
    let db = tenant_db(Config::default());
    let before = db.metrics();
    db.execute_as("SELECT id FROM accts", Some(&alice()))
        .unwrap();
    let eve = SessionContext::new("eve");
    let _ = db.execute_as("SELECT id FROM accts", Some(&eve));
    let after = db.metrics();
    assert!(
        after.counter("sec.label_rewrites") > before.counter("sec.label_rewrites"),
        "rewrite counter must move"
    );
    assert!(
        after.counter("sec.auth_denied") > before.counter("sec.auth_denied"),
        "denial counter must move"
    );
}

// ---------------------------------------------------------------------------
// Over the wire: principals arrive via Hello; auth_required default-denies
// sessions that never authenticate.
// ---------------------------------------------------------------------------

#[test]
fn wire_sessions_are_isolated_by_hello_principal() {
    let db = tenant_db(Config::default().with_auth_required(true));
    let server = db.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Unauthenticated under auth_required: the anonymous principal is
    // denied by the label (it has no attributes).
    let mut anon = jaguar_core::Client::connect(addr).unwrap();
    let err = anon.execute("SELECT id FROM accts").unwrap_err();
    assert!(
        err.to_string().contains("denied for principal 'anonymous'"),
        "{err}"
    );

    let mut c_alice = jaguar_core::Client::connect(addr).unwrap();
    c_alice
        .hello("alice", &[("tenant", "tech"), ("role", "member")])
        .unwrap();
    let r = c_alice.execute("SELECT id FROM accts").unwrap();
    assert_eq!(r.rows.len(), 20);

    let mut c_bob = jaguar_core::Client::connect(addr).unwrap();
    c_bob
        .hello("bob", &[("tenant", "energy"), ("role", "member")])
        .unwrap();
    let r = c_bob.execute("SELECT id FROM accts").unwrap();
    assert_eq!(r.rows.len(), 20);
    // No overlap: alice's ids are even, bob's odd.
    let r = c_bob
        .execute("SELECT COUNT(*) FROM accts WHERE id % 2 = 0")
        .unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(0));

    // EXPLAIN over the wire carries the same rewrite.
    let plan = c_alice.explain("SELECT id FROM accts").unwrap();
    assert!(plan.contains("[labeled]"), "{plan}");

    // Admins see everything; an unlabeled count through the admin session
    // doubles as the cross-check that rows were filtered, not deleted.
    let mut c_root = jaguar_core::Client::connect(addr).unwrap();
    c_root
        .hello("root", &[("tenant", "hq"), ("role", "admin")])
        .unwrap();
    let r = c_root.execute("SELECT COUNT(*) FROM accts").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(40));
    drop(server);
}

#[test]
fn wire_without_auth_required_stays_open() {
    let db = tenant_db(Config::default());
    let server = db.serve("127.0.0.1:0").unwrap();
    // auth off + no Hello: the connection runs as the trusted system
    // principal, exactly like embedded `execute` — existing deployments
    // keep working.
    let mut c = jaguar_core::Client::connect(server.addr()).unwrap();
    let r = c.execute("SELECT COUNT(*) FROM accts").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(40));
    drop(server);
}

/// The slow-query log must not leak literals unless the operator opted in.
#[test]
fn slow_query_log_redacts_literals_by_default() {
    let db = tenant_db(Config::default().with_slow_query_ms(Some(0)));
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut c = jaguar_core::Client::connect(server.addr()).unwrap();
    // Every query is "slow" at threshold 0; the log sink is exercised by
    // the server path (asserted structurally by the unit test on
    // redact_literals); here we pin that the query itself still works and
    // the slow-query counter moves with redaction active.
    let before = db.metrics().counter("net.slow_queries");
    c.execute("SELECT id FROM accts WHERE tenant = 'tech'")
        .unwrap();
    let after = db.metrics().counter("net.slow_queries");
    assert!(after > before, "slow-query log must have fired");
    drop(server);
}
