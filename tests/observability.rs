//! Engine-wide observability: EXPLAIN ANALYZE, the metrics registry
//! ("live Table 1"), the metrics wire request, connection limits, and
//! graceful server teardown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use jaguar_core::{Client, Config, DataType, Database, UdfSignature, Value};

fn db_with_rows(n: i64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (id INT, b BYTEARRAY)").unwrap();
    for i in 0..n {
        db.execute(&format!("INSERT INTO t VALUES ({i}, X'0102')"))
            .unwrap();
    }
    db
}

fn string_rows(r: &jaguar_core::QueryResult) -> Vec<String> {
    r.rows
        .iter()
        .map(|row| match row.get(0).unwrap() {
            Value::Str(s) => s.clone(),
            other => panic!("expected string row, got {other:?}"),
        })
        .collect()
}

#[test]
fn explain_analyze_row_counts_match_cardinality() {
    let db = db_with_rows(10);
    let sql = "SELECT id FROM t WHERE id >= 4";
    let expected = db.execute(sql).unwrap().rows.len() as u64; // 6

    let r = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let lines = string_rows(&r);
    let text = lines.join("\n");

    // The output is the static plan followed by the observed profile
    // (the lines carrying `rows=`). The scan sees every row; the filter
    // (and everything above it) produces exactly the query's cardinality.
    let profiled = |op: &str| -> &String {
        lines
            .iter()
            .find(|l| l.contains(op) && l.contains("rows="))
            .unwrap_or_else(|| panic!("no profiled {op} in:\n{text}"))
    };
    assert!(profiled("SeqScan").contains("rows=10"), "{text}");
    assert!(
        profiled("Filter").contains(&format!("rows={expected}")),
        "{text}"
    );
    assert!(
        profiled("Project").contains(&format!("rows={expected}")),
        "{text}"
    );

    // Every profiled line carries timings; the summary line agrees.
    assert!(text.contains("time="), "{text}");
    assert!(text.contains("self="), "{text}");
    assert!(
        text.contains(&format!("Total: {expected} row(s)")),
        "{text}"
    );
}

#[test]
fn explain_without_analyze_does_not_execute() {
    let db = db_with_rows(3);
    let r = db.execute("EXPLAIN SELECT id FROM t").unwrap();
    let text = string_rows(&r).join("\n");
    assert!(text.contains("SeqScan t"), "{text}");
    // Plain EXPLAIN never runs the query, so no observed row counts.
    assert!(!text.contains("rows="), "{text}");
}

#[test]
fn explain_analyze_convenience_and_limit_short_circuit() {
    let db = db_with_rows(8);
    let text = db
        .explain_analyze("SELECT id FROM t ORDER BY id LIMIT 2")
        .unwrap();
    // Limit produced exactly 2 rows even though the scan saw all 8.
    let limit_line = text
        .lines()
        .find(|l| l.contains("Limit") && l.contains("rows="))
        .unwrap_or_else(|| panic!("no profiled Limit in:\n{text}"));
    assert!(limit_line.contains("rows=2"), "{limit_line}");
    assert!(text.contains("rows=8"), "{text}");
}

/// With tier-up forced to the first call, EXPLAIN ANALYZE of a JagScript
/// query reports the compiled-tier activity it caused; plain EXPLAIN
/// never executes and so never shows the line.
#[test]
fn explain_analyze_reports_tier_activity() {
    let db = Database::with_config(Config::default().with_tier_up_after(Some(0)));
    db.execute("CREATE TABLE t (id INT, b BYTEARRAY)").unwrap();
    for i in 0..6 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, X'0102')"))
            .unwrap();
    }
    db.register_jagscript_udf(
        "first_byte",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        "fn main(b: bytes) -> i64 { return b[0]; }",
        jaguar_core::UdfDesign::Sandboxed,
    )
    .unwrap();

    let analyzed = db
        .execute("EXPLAIN ANALYZE SELECT first_byte(b) FROM t")
        .unwrap();
    let text = string_rows(&analyzed).join("\n");
    assert!(text.contains("VM tier:"), "{text}");
    assert!(text.contains("promotions="), "{text}");
    assert!(!text.contains("compiled_calls=0"), "{text}");

    let plain = db.execute("EXPLAIN SELECT first_byte(b) FROM t").unwrap();
    let text = string_rows(&plain).join("\n");
    assert!(!text.contains("VM tier:"), "{text}");
}

#[test]
fn metrics_count_sandboxed_udf_invocations() {
    let db = db_with_rows(5);
    db.register_jagscript_udf(
        "first_byte",
        UdfSignature::new(vec![DataType::Bytes], DataType::Int),
        "fn main(b: bytes) -> i64 { return b[0]; }",
        jaguar_core::UdfDesign::Sandboxed,
    )
    .unwrap();

    let before = db.metrics();
    db.execute("SELECT first_byte(b) FROM t").unwrap();
    let after = db.metrics();

    // 5 rows → at least 5 more JSM invocations than before (the registry
    // is process-global, so compare deltas, not absolutes).
    let delta = after.counter("udf.invocations.jsm") - before.counter("udf.invocations.jsm");
    assert!(delta >= 5, "jsm invocation delta {delta}");
    let lat = after.histogram("udf.latency_us.jsm").expect("jsm latency");
    assert!(lat.count >= 5, "latency observations {}", lat.count);
    assert!(after.counter("sql.queries") > before.counter("sql.queries"));

    // The snapshot renders in a stable plain-text format.
    let text = after.to_string();
    assert!(text.contains("udf.invocations.jsm"), "{text}");
}

#[test]
fn metrics_snapshot_over_the_wire() {
    let db = db_with_rows(3);
    let server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.execute("SELECT id FROM t").unwrap();

    let m = client.metrics().unwrap();
    assert!(m.counter("net.requests") >= 1, "{}", m.text);
    assert!(m.counter("net.connections") >= 1, "{}", m.text);
    assert!(m.counter("sql.queries") >= 1, "{}", m.text);
    assert!(m.text.contains("net.requests"), "{}", m.text);
}

#[test]
fn server_stop_waits_for_inflight_query() {
    let db = db_with_rows(1);
    let finished = Arc::new(AtomicBool::new(false));
    let finished_udf = Arc::clone(&finished);
    db.register_native_udf(
        "slow",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        move |args, _| {
            std::thread::sleep(Duration::from_millis(300));
            finished_udf.store(true, Ordering::SeqCst);
            Ok(args[0].clone())
        },
    );

    let mut server = db.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.execute("SELECT slow(id) FROM t")
    });

    // Let the query reach the UDF, then stop the server mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    server.stop();

    // stop() must not return before the in-flight query completed.
    assert!(
        finished.load(Ordering::SeqCst),
        "server.stop() returned before the in-flight query finished"
    );
    // And the client got its answer, not a dropped connection.
    let r = worker.join().unwrap().unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn connection_limit_rejects_with_busy_error() {
    let db = Database::with_config(Config {
        max_connections: 1,
        admission_queue_depth: 0, // no queueing: sheds are immediate
        admission_timeout_ms: 100,
        ..Config::default()
    });
    db.execute("CREATE TABLE t (id INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    let server = db.serve("127.0.0.1:0").unwrap();
    let opts = jaguar_core::ClientOptions::default().no_retry();

    // The admission permit is claimed by the first *data-plane* request.
    let mut first = Client::connect_with(server.addr(), opts).unwrap();
    assert_eq!(first.execute("SELECT id FROM t").unwrap().rows.len(), 1);

    // The control plane is always admitted, even at capacity…
    let mut second = Client::connect_with(server.addr(), opts).unwrap();
    second.ping().unwrap();
    // …but data-plane work on a second session is shed with a retryable
    // busy error (no retry here, so the raw shed is observable).
    let err = second
        .execute("SELECT id FROM t")
        .expect_err("second session must be shed");
    assert!(err.to_string().contains("busy"), "{err}");

    // The first client is unaffected.
    assert_eq!(first.execute("SELECT id FROM t").unwrap().rows.len(), 1);

    // A shed is not a disconnect: once the first session leaves, the very
    // same second connection acquires the freed permit.
    first.quit().unwrap();
    for attempt in 0.. {
        match second.execute("SELECT id FROM t") {
            Ok(r) => {
                assert_eq!(r.rows.len(), 1);
                break;
            }
            Err(_) if attempt < 50 => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
}
