//! jaguar-opt integration: Froid-style inlining, deterministic result
//! memoization, and cost/selectivity predicate reordering, exercised
//! through the SQL engine end to end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jaguar_core::{Config, DataType, Database, Tuple, UdfDesign, UdfSignature, Value, Volatility};

/// A straight-line JagScript body: arithmetic + comparison + conditional,
/// no loops, no callbacks — exactly the shape the inliner accepts.
const POLY_SRC: &str = "fn main(a: i64, b: i64) -> i64 {
    if a < b { return a * 3 + b; }
    return a - b;
}";

fn poly_native(a: i64, b: i64) -> i64 {
    if a < b {
        a * 3 + b
    } else {
        a - b
    }
}

fn db_with_rows(config: Config, rows: i64) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    let t = db.catalog().table("t").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![Value::Int(i), Value::Int(i % 17)]))
            .unwrap();
    }
    db
}

/// Tentpole acceptance: an inlinable Immutable JagScript UDF never
/// instantiates a backend — no VM entry (vm_instructions stays zero), no
/// sandboxed invocation counters, no worker spawn — and still computes
/// the right answers.
#[test]
fn inlined_udf_never_instantiates_backend() {
    let db = db_with_rows(Config::default(), 50);
    db.register_jagscript_udf_with_volatility(
        "poly_inl",
        UdfSignature::new(vec![DataType::Int, DataType::Int], DataType::Int),
        POLY_SRC,
        UdfDesign::Sandboxed,
        Volatility::Immutable,
    )
    .unwrap();
    let before = db.metrics();
    let r = db.execute("SELECT a, poly_inl(a, b) FROM t").unwrap();
    let after = db.metrics();
    assert_eq!(r.rows.len(), 50);
    for row in &r.rows {
        let a = row.get(0).unwrap().as_int().unwrap();
        let got = row.get(1).unwrap().as_int().unwrap();
        assert_eq!(got, poly_native(a, a % 17), "wrong inlined result");
    }
    // The backend was elided entirely.
    assert_eq!(
        r.stats.udf_invocations, 0,
        "inlined calls are not backend calls"
    );
    assert_eq!(r.stats.vm_instructions, 0, "no VM ever ran");
    assert_eq!(
        after.counter("udf.invocations.jsm"),
        before.counter("udf.invocations.jsm"),
        "sandboxed invocation counter moved"
    );
    assert_eq!(
        after.counter("pool.spawns"),
        before.counter("pool.spawns"),
        "a worker was spawned for an inlined UDF"
    );
    // And the plan says so.
    let txt = db.explain("SELECT poly_inl(a, b) FROM t").unwrap();
    assert!(txt.contains("[inlined]"), "{txt}");
    assert!(txt.contains("-- plan notes:"), "{txt}");
    assert!(txt.contains("inline poly_inl"), "{txt}");
}

/// The inlined expression must be byte-identical to the VM call path:
/// same rows for every input, and the same error text when the body
/// traps (integer divide by zero).
#[test]
fn inlined_matches_vm_called_rows_and_errors() {
    let db = db_with_rows(Config::default(), 120);
    let sig = UdfSignature::new(vec![DataType::Int, DataType::Int], DataType::Int);
    // Same module, two volatility declarations: Immutable inlines,
    // Stable stays on the VM call path.
    db.register_jagscript_udf_with_volatility(
        "p_inl",
        sig.clone(),
        POLY_SRC,
        UdfDesign::Sandboxed,
        Volatility::Immutable,
    )
    .unwrap();
    db.register_jagscript_udf_with_volatility(
        "p_vm",
        sig.clone(),
        POLY_SRC,
        UdfDesign::Sandboxed,
        Volatility::Stable,
    )
    .unwrap();
    let a = db.execute("SELECT p_inl(a, b) FROM t").unwrap();
    let b = db.execute("SELECT p_vm(a, b) FROM t").unwrap();
    assert_eq!(a.rows, b.rows, "inlined vs called rows diverged");

    // A trapping body: divides by (a - 7), so the row a=7 traps.
    let trap_src = "fn main(a: i64) -> i64 { return 1000 / (a - 7); }";
    let tsig = UdfSignature::new(vec![DataType::Int], DataType::Int);
    db.register_jagscript_udf_with_volatility(
        "t_inl",
        tsig.clone(),
        trap_src,
        UdfDesign::Sandboxed,
        Volatility::Immutable,
    )
    .unwrap();
    db.register_jagscript_udf_with_volatility(
        "t_vm",
        tsig,
        trap_src,
        UdfDesign::Sandboxed,
        Volatility::Stable,
    )
    .unwrap();
    let e1 = db.execute("SELECT t_inl(a) FROM t").unwrap_err();
    let e2 = db.execute("SELECT t_vm(a) FROM t").unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string(), "trap text diverged");
}

/// Bodies the inliner cannot prove straight-line (loops, callbacks) bail
/// to the call path — noted in the plan, still executed correctly.
#[test]
fn unsupported_shapes_bail_to_call_path() {
    let db = db_with_rows(Config::default(), 10);
    db.register_jagscript_udf_with_volatility(
        "loopy",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        "fn main(n: i64) -> i64 {
            let s: i64 = 0;
            let i: i64 = 0;
            while i < n { s = s + i; i = i + 1; }
            return s;
        }",
        UdfDesign::Sandboxed,
        Volatility::Immutable,
    )
    .unwrap();
    let txt = db.explain("SELECT loopy(a) FROM t").unwrap();
    assert!(txt.contains("inline loopy skipped"), "{txt}");
    assert!(!txt.contains("[inlined]"), "{txt}");
    let r = db.execute("SELECT loopy(a) FROM t WHERE a = 4").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(6));
    assert!(r.stats.udf_invocations > 0, "must run in the sandbox");
}

/// Memoization: an Immutable (non-inlinable: native) UDF's repeated
/// argument values are served from the cache — the closure runs once per
/// distinct key, and `opt.memo.hits` ticks for the rest.
#[test]
fn memo_serves_repeated_keys_without_invoking() {
    let db = db_with_rows(Config::default(), 200);
    let calls = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&calls);
    db.register_native_udf_with_volatility(
        "memome",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        Volatility::Immutable,
        move |args, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Int(args[0].as_int()? * 10))
        },
    );
    let before = db.metrics();
    // b = a % 17: only 17 distinct keys across 200 rows.
    let r = db.execute("SELECT memome(b) FROM t").unwrap();
    let after = db.metrics();
    assert_eq!(r.rows.len(), 200);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        17,
        "one backend call per distinct key"
    );
    assert_eq!(
        after.counter("opt.memo.hits") - before.counter("opt.memo.hits"),
        200 - 17,
        "every repeat is a hit"
    );
    // Results are right (hits return the cached value, not a stale one).
    for row in &r.rows {
        let v = row.get(0).unwrap().as_int().unwrap();
        assert_eq!(v % 10, 0);
    }
    // A second statement reuses the engine-lifetime cache: zero new calls.
    let r2 = db.execute("SELECT memome(b) FROM t").unwrap();
    assert_eq!(r2.rows, r.rows);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        17,
        "cache is cross-statement"
    );
}

/// `udf_memo_bytes = 0` disables the cache: every row invokes.
#[test]
fn memo_disabled_by_config() {
    let db = db_with_rows(Config::default().with_udf_memo_bytes(0), 100);
    let calls = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&calls);
    db.register_native_udf_with_volatility(
        "nomemo",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        Volatility::Immutable,
        move |args, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Int(args[0].as_int()? + 1))
        },
    );
    let r = db.execute("SELECT nomemo(b) FROM t").unwrap();
    assert_eq!(r.rows.len(), 100);
    assert_eq!(calls.load(Ordering::Relaxed), 100, "memo must be off");
    let txt = db.explain("SELECT nomemo(b) FROM t").unwrap();
    assert!(txt.contains("memo nomemo: disabled"), "{txt}");
}

/// Stable and Volatile UDFs are never memoized — only Immutable is.
#[test]
fn memo_excludes_stable_and_volatile() {
    let db = db_with_rows(Config::default(), 100);
    for (name, vol) in [("st", Volatility::Stable), ("vo", Volatility::Volatile)] {
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&calls);
        db.register_native_udf_with_volatility(
            name,
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            vol,
            move |args, _| {
                c2.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Int(args[0].as_int()?))
            },
        );
        db.execute(&format!("SELECT {name}(b) FROM t")).unwrap();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            100,
            "{name}: non-immutable UDFs must invoke every row"
        );
    }
}

/// Satellite regression: a Volatile UDF in WHERE keeps its written
/// position — it is not reordered past cheaper predicates, at the engine
/// level (the planner-level twin lives in jaguar-sql's plan tests).
#[test]
fn volatile_udf_keeps_written_order_end_to_end() {
    let db = db_with_rows(Config::default(), 150);
    let calls = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&calls);
    // Default registration is Volatile.
    db.register_native_udf(
        "counting",
        UdfSignature::new(vec![DataType::Int], DataType::Bool),
        move |args, _| {
            c2.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Bool(args[0].as_int()? % 2 == 0))
        },
    );
    // Written first → must run first, on every row, despite `a < 10`
    // being far cheaper.
    let r = db
        .execute("SELECT a FROM t WHERE counting(a) = TRUE AND a < 10")
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        150,
        "volatile UDF must see every scanned row (written order pinned)"
    );
    // And it is exempt from memoization even with repeating arguments.
    calls.store(0, Ordering::SeqCst);
    db.execute("SELECT counting(b) FROM t").unwrap();
    assert_eq!(
        calls.load(Ordering::Relaxed),
        150,
        "volatile never memoized"
    );
}

/// After warm-up, the reorder pass runs the more selective of two
/// equal-cost Stable UDF predicates first (rank = cost / (1 - sel)).
#[test]
fn selectivity_reorders_equal_cost_predicates() {
    let db = db_with_rows(Config::default(), 200);
    let rare_calls = Arc::new(AtomicU64::new(0));
    let wide_calls = Arc::new(AtomicU64::new(0));
    let (r2, w2) = (Arc::clone(&rare_calls), Arc::clone(&wide_calls));
    db.register_native_udf_with_volatility(
        "rare",
        UdfSignature::new(vec![DataType::Int], DataType::Bool),
        Volatility::Stable,
        move |args, _| {
            r2.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Bool(args[0].as_int()? < 5))
        },
    );
    db.register_native_udf_with_volatility(
        "wide",
        UdfSignature::new(vec![DataType::Int], DataType::Bool),
        Volatility::Stable,
        move |args, _| {
            w2.fetch_add(1, Ordering::Relaxed);
            Ok(Value::Bool(args[0].as_int()? >= 0))
        },
    );
    let q = "SELECT a FROM t WHERE wide(a) = TRUE AND rare(a) = TRUE";
    // Cold: no selectivity stats, equal static costs → written order.
    let r = db.execute(q).unwrap();
    assert_eq!(r.rows.len(), 5);
    // Warm-up accumulated 200 samples per predicate. Re-plan: `rare`
    // (sel ≈ 0.025) now ranks far below `wide` (sel ≈ 1.0) and moves
    // first, so `wide` only sees the 5 surviving rows.
    wide_calls.store(0, Ordering::SeqCst);
    rare_calls.store(0, Ordering::SeqCst);
    let r = db.execute(q).unwrap();
    assert_eq!(r.rows.len(), 5);
    assert_eq!(rare_calls.load(Ordering::Relaxed), 200);
    assert_eq!(
        wide_calls.load(Ordering::Relaxed),
        5,
        "selective predicate must run first after warm-up"
    );
    let txt = db.explain(q).unwrap();
    assert!(txt.contains("[reordered]"), "{txt}");
    assert!(txt.contains("reorder: moved"), "{txt}");
}

/// Satellite bugfix: plain `EXPLAIN` (not ANALYZE) carries the one-line
/// plan-notes trailer with the optimizer's decisions.
#[test]
fn explain_statement_carries_plan_notes() {
    let db = db_with_rows(Config::default(), 20);
    db.register_jagscript_udf_with_volatility(
        "noted",
        UdfSignature::new(vec![DataType::Int, DataType::Int], DataType::Int),
        POLY_SRC,
        UdfDesign::Sandboxed,
        Volatility::Immutable,
    )
    .unwrap();
    let r = db.execute("EXPLAIN SELECT noted(a, b) FROM t").unwrap();
    let txt: Vec<String> = r
        .rows
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap().to_string())
        .collect();
    let joined = txt.join("\n");
    assert!(
        joined.contains("-- plan notes:"),
        "EXPLAIN must carry the notes trailer: {joined}"
    );
    assert!(joined.contains("inline noted"), "{joined}");
    // UDF-free plans stay trailer-free (dop=1 so no parallel note either).
    let db = db_with_rows(Config::default().with_dop(1), 20);
    let r = db.execute("EXPLAIN SELECT a FROM t WHERE a < 3").unwrap();
    let plain: Vec<String> = r
        .rows
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap().to_string())
        .collect();
    assert!(
        !plain.join("\n").contains("plan notes"),
        "no notes expected: {plain:?}"
    );
}

/// EXPLAIN ANALYZE surfaces memo hit/miss deltas for the statement.
#[test]
fn explain_analyze_reports_memo_activity() {
    let db = db_with_rows(Config::default(), 120);
    db.register_native_udf_with_volatility(
        "cached",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        Volatility::Immutable,
        |args, _| Ok(Value::Int(args[0].as_int()? * 2)),
    );
    let r = db
        .execute("EXPLAIN ANALYZE SELECT cached(b) FROM t")
        .unwrap();
    let joined: Vec<String> = r
        .rows
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap().to_string())
        .collect();
    let joined = joined.join("\n");
    assert!(joined.contains("Memo: hits="), "{joined}");
}

/// Memoized execution under morsel-driven parallelism stays correct: the
/// cache is shared across the worker team and results match serial.
#[test]
fn memo_correct_under_parallel_execution() {
    let serial = db_with_rows(Config::default().with_dop(1), 2000);
    let parallel = db_with_rows(Config::default().with_dop(4), 2000);
    for db in [&serial, &parallel] {
        db.register_native_udf_with_volatility(
            "pmemo",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            Volatility::Immutable,
            |args, _| Ok(Value::Int(args[0].as_int()? * 7 + 1)),
        );
    }
    let q = "SELECT a, pmemo(b) FROM t WHERE a % 3 <> 1";
    let a = serial.execute(q).unwrap();
    let b = parallel.execute(q).unwrap();
    let norm = |rows: &[Tuple]| {
        let mut v: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&a.rows), norm(&b.rows), "parallel memo diverged");
}

/// Property: memoized results are never wrong — for random argument
/// streams (with heavy key reuse) the memoized engine computes exactly
/// what a memo-off engine computes, row for row.
#[test]
fn memo_never_wrong_randomized() {
    use jaguar_common::rng::SplitMix64;
    let mut rng = SplitMix64::new(0xC0FFEE);
    let on = Database::with_config(Config::default());
    let off = Database::with_config(Config::default().with_udf_memo_bytes(0));
    for db in [&on, &off] {
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.register_native_udf_with_volatility(
            "f",
            UdfSignature::new(vec![DataType::Int], DataType::Int),
            Volatility::Immutable,
            |args, _| {
                let v = args[0].as_int()?;
                Ok(Value::Int(v.wrapping_mul(2654435761).rotate_left(7)))
            },
        );
    }
    // Zipf-ish key stream: many repeats of a few keys, a tail of rares.
    let mut keys = Vec::new();
    for _ in 0..300 {
        let k = if rng.next_below(10) < 8 {
            rng.next_below(12) as i64
        } else {
            rng.next_u64() as i64 % 100_000
        };
        keys.push(k);
    }
    for db in [&on, &off] {
        let t = db.catalog().table("t").unwrap();
        for k in &keys {
            t.insert(Tuple::new(vec![Value::Int(*k)])).unwrap();
        }
    }
    let a = on.execute("SELECT f(a) FROM t").unwrap();
    let b = off.execute("SELECT f(a) FROM t").unwrap();
    assert_eq!(a.rows, b.rows, "memoized results diverged from direct");
}
