//! Morsel-driven parallel execution (the `Gather` path), end to end:
//! serial/parallel result equivalence, EXPLAIN/EXPLAIN ANALYZE rendering,
//! cooperative cancellation mid-Gather, pool saturation under dop
//! clamping, and the `par.*` observability surface.

use std::sync::Arc;
use std::time::Duration;

use jaguar_core::{ByteArray, Config, DataType, Database, JaguarError, Tuple, UdfSignature, Value};
use jaguar_ipc::find_worker_binary;
use jaguar_udf::generic;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping isolated designs: jaguar-worker not built (cargo build --workspace)");
        false
    } else {
        true
    }
}

/// A database with `rows` rows of `(id INT, tag VARCHAR, bytearray
/// BYTEARRAY)` — enough pages that the parallel planner engages at the
/// requested dop.
fn db_with_rows(config: Config, rows: usize) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE rel (id INT, tag VARCHAR, bytearray BYTEARRAY)")
        .unwrap();
    let t = db.catalog().table("rel").unwrap();
    for i in 0..rows {
        t.insert(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Str(format!("tag-{}", i % 11)),
            Value::Bytes(ByteArray::patterned(100, i as u64)),
        ]))
        .unwrap();
    }
    db
}

const EQUIVALENCE_QUERIES: &[&str] = &[
    "SELECT id, tag FROM rel WHERE id % 3 = 0",
    "SELECT id * 2 AS d, tag FROM rel WHERE id < 900 AND id % 2 = 1",
    "SELECT tag, COUNT(*) AS n, SUM(id) AS s, MIN(id) AS lo, MAX(id) AS hi, AVG(id) AS a \
     FROM rel GROUP BY tag",
    "SELECT tag, COUNT(*) AS n FROM rel GROUP BY tag HAVING n > 50 ORDER BY n DESC, tag",
    "SELECT id, tag FROM rel WHERE id % 5 <> 0 ORDER BY tag, id DESC LIMIT 37",
    "SELECT COUNT(*), SUM(id), AVG(id) FROM rel",
];

#[test]
fn parallel_results_equal_serial_exactly() {
    let par = db_with_rows(Config::default().with_dop(4), 1500);
    let serial = db_with_rows(Config::default().with_dop(1), 1500);
    for sql in EQUIVALENCE_QUERIES {
        let a = par.execute(sql).unwrap();
        let b = serial.execute(sql).unwrap();
        assert_eq!(
            a.rows, b.rows,
            "parallel and serial rows (including order) must match for: {sql}"
        );
        assert_eq!(a.stats.rows_scanned, b.stats.rows_scanned, "{sql}");
        assert_eq!(a.stats.rows_emitted, b.stats.rows_emitted, "{sql}");
    }
    // The parallel engine really took the Gather path.
    assert!(par.metrics().counter("par.queries") >= EQUIVALENCE_QUERIES.len() as u64);
}

#[test]
fn parallel_udf_projection_matches_serial() {
    let par = db_with_rows(Config::default().with_dop(4), 1200);
    let serial = db_with_rows(Config::default().with_dop(1), 1200);
    for db in [&par, &serial] {
        db.register_udf(generic::def_native());
    }
    let sql = "SELECT id, generic(bytearray, 10, 1, 1) FROM rel WHERE id % 4 < 3";
    let a = par.execute(sql).unwrap();
    let b = serial.execute(sql).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.stats.udf_invocations, b.stats.udf_invocations);
    assert_eq!(a.stats.udf_callbacks, b.stats.udf_callbacks);
}

#[test]
fn explain_renders_gather_only_when_parallel() {
    let par = db_with_rows(Config::default().with_dop(4), 1500);
    let txt = par.explain("SELECT id FROM rel WHERE id < 100").unwrap();
    assert!(txt.contains("Gather (dop=4)"), "{txt}");
    assert!(txt.contains("SeqScan rel"), "{txt}");

    // dop=1 and tiny tables stay serial.
    let serial = db_with_rows(Config::default().with_dop(1), 1500);
    let txt = serial.explain("SELECT id FROM rel").unwrap();
    assert!(!txt.contains("Gather"), "{txt}");
    let tiny = db_with_rows(Config::default().with_dop(4), 10);
    let txt = tiny.explain("SELECT id FROM rel").unwrap();
    assert!(!txt.contains("Gather"), "{txt}");

    // DML never parallelizes: the plan API only explains SELECTs, but the
    // engine path for DELETE/UPDATE is the serial one — smoke-check that a
    // parallel-configured engine still runs DML correctly.
    let r = par.execute("DELETE FROM rel WHERE id >= 1400").unwrap();
    assert_eq!(r.affected, 100);
}

#[test]
fn explain_analyze_reports_per_worker_stats() {
    let db = db_with_rows(Config::default().with_dop(2), 1500);
    let txt = db
        .explain_analyze("SELECT id FROM rel WHERE id % 2 = 0")
        .unwrap();
    assert!(txt.contains("Gather (dop=2)"), "{txt}");
    assert!(txt.contains("worker 0: rows="), "{txt}");
    assert!(txt.contains("worker 1: rows="), "{txt}");
    assert!(txt.contains("morsels="), "{txt}");
    assert!(txt.contains("Total: 750 row(s)"), "{txt}");
}

#[test]
fn deadline_cancels_mid_gather_and_engine_stays_usable() {
    let db = db_with_rows(
        Config::default()
            .with_dop(4)
            .with_statement_timeout_ms(Some(200)),
        1500,
    );
    // ~1ms per row per worker: the full scan would take seconds, so the
    // 200ms deadline must fire while the team is mid-Gather.
    db.register_native_udf(
        "slow",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        |args, _| {
            std::thread::sleep(Duration::from_millis(1));
            Ok(Value::Int(args[0].as_int()?))
        },
    );
    let err = db.execute("SELECT slow(id) FROM rel").unwrap_err();
    assert!(
        matches!(err, JaguarError::Timeout(_) | JaguarError::Cancelled(_)),
        "expected deadline abort, got: {err}"
    );
    // All threads stopped and the engine is immediately usable.
    let r = db.execute("SELECT COUNT(*) FROM rel").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(1500));
}

#[test]
fn explicit_cancel_stops_the_team() {
    let db = Arc::new(db_with_rows(Config::default().with_dop(4), 1500));
    db.register_native_udf(
        "slow",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        |args, _| {
            std::thread::sleep(Duration::from_millis(1));
            Ok(Value::Int(args[0].as_int()?))
        },
    );
    let token = db.statement_token();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let started = std::time::Instant::now();
    let err = db
        .execute_cancellable("SELECT slow(id) FROM rel", &token)
        .unwrap_err();
    canceller.join().unwrap();
    assert!(matches!(err, JaguarError::Cancelled(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cancel must stop all workers promptly, took {:?}",
        started.elapsed()
    );
    assert!(db.execute("SELECT id FROM rel WHERE id = 1").is_ok());
}

/// Satellite regression: `dop > pool size` must degrade to clean queueing
/// — dop is clamped to the pool size, concurrent parallel queries queue
/// on checkouts (`pool.queue_waits` ticks), nothing deadlocks, and no
/// circuit breaker trips.
#[test]
fn pool_saturation_clamps_dop_and_queues_cleanly() {
    if !worker_available() {
        return;
    }
    let db = Arc::new(db_with_rows(
        Config::default()
            .with_dop(4)
            .with_pooled_executors(2)
            .with_pool_checkout_timeout_ms(10_000)
            .with_udf_breaker(3, 60_000),
        1500,
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));
    db.register_udf(generic::def_isolated());

    // dop requested 4, pool holds 2 → the plan clamps to 2.
    let clamps_before = db.metrics().counter("par.dop_clamped");
    let txt = db
        .explain("SELECT generic_ic(bytearray, 1, 0, 0) FROM rel WHERE id < 100")
        .unwrap();
    assert!(txt.contains("Gather (dop=2)"), "{txt}");
    assert!(db.metrics().counter("par.dop_clamped") > clamps_before);

    // Two concurrent parallel queries want 4 checkouts from 2 workers:
    // they must queue, not deadlock or error.
    let sql = "SELECT generic_ic(bytearray, 1, 0, 0) FROM rel WHERE id % 2 = 0";
    let expected = db.execute(sql).unwrap().rows;
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || db.execute(sql).map(|r| r.rows))
        })
        .collect();
    for h in handles {
        let rows = h.join().unwrap().expect("saturated query must succeed");
        assert_eq!(rows, expected);
    }
    let stats = db.pool_stats().unwrap();
    assert!(
        stats.queue_waits > 0,
        "concurrent checkouts must have queued: {stats}"
    );
    for (name, state) in db.udf_breaker_states() {
        assert_eq!(state, "closed", "breaker for {name} must not trip");
    }
}

#[test]
fn par_metrics_and_contention_counters_surface() {
    let db = db_with_rows(Config::default().with_dop(4), 1500);
    for _ in 0..3 {
        db.execute("SELECT id FROM rel WHERE id % 2 = 0").unwrap();
    }
    let m = db.metrics();
    assert!(m.counter("par.queries") >= 3, "{m}");
    assert!(m.counter("par.morsels") > 0, "{m}");
    assert!(m.counter("par.workers") >= 6, "{m}");
    assert!(
        m.histogram("par.worker_busy_us").is_some(),
        "worker busy histogram missing:\n{m}"
    );
    // Contention counters exist (zero is fine — they only tick on a
    // contended try_lock miss, which a quiet test may never hit).
    for name in [
        "storage.bufferpool.latch_waits",
        "storage.heap.insert_hint_waits",
        "storage.heap.alloc_lock_waits",
    ] {
        assert!(
            m.counters.iter().any(|(n, _)| n == name),
            "{name} missing from metrics:\n{m}"
        );
    }
}
