//! Integration tests for the warm worker pool: reuse across queries,
//! timeout-kill-respawn of hung workers, and crash containment with
//! recovery — the supervision properties the per-query-spawn model of the
//! paper never needed, but a long-lived pooled server does.

use std::time::Duration;

use jaguar_core::{Config, DataType, Database, JaguarError, UdfDef, UdfImpl, UdfSignature, Value};
use jaguar_ipc::find_worker_binary;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping pool tests: jaguar-worker not built (cargo build --workspace)");
        false
    } else {
        true
    }
}

/// A database with pooled executors, a tiny table, and an isolated-native
/// UDF bound to `worker_fn` from the worker binary's registry.
fn pooled_db(config: Config, udf: &str, worker_fn: &str, params: Vec<DataType>) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.register_udf(UdfDef::new(
        udf,
        UdfSignature::new(params, DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: worker_fn.to_string(),
        },
    ));
    db
}

#[test]
fn pooled_workers_are_reused_across_queries() {
    if !worker_available() {
        return;
    }
    let db = pooled_db(
        Config::default().with_pooled_executors(2),
        "wnoop",
        "noop",
        vec![DataType::Int],
    );
    let pool = db.worker_pool().expect("pool attached when configured");
    assert!(pool.wait_ready(Duration::from_secs(10)), "pool warms up");

    for _ in 0..4 {
        let r = db.execute("SELECT wnoop(a) FROM t").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(0));
    }

    let stats = db.pool_stats().expect("stats for attached pool");
    assert_eq!(
        stats.spawns, 2,
        "four queries over a two-worker pool must not spawn beyond pool size: {stats}"
    );
    assert!(
        stats.reuses >= 2,
        "later queries must ride warm workers: {stats}"
    );
    assert_eq!(stats.crashes, 0, "{stats}");
}

#[test]
fn unpooled_config_attaches_no_pool() {
    let db = Database::with_config(Config::default());
    assert!(db.worker_pool().is_none());
    assert!(db.pool_stats().is_none());
}

#[test]
fn hung_worker_is_killed_and_replaced() {
    if !worker_available() {
        return;
    }
    let db = pooled_db(
        Config::default()
            .with_pooled_executors(1)
            .with_pool_invoke_timeout_ms(Some(200)),
        "whang",
        "hang",
        vec![],
    );
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    let err = db.execute("SELECT whang() FROM t").unwrap_err();
    assert!(
        matches!(err, JaguarError::ResourceLimit(_)),
        "deadline expiry must surface as a resource-limit error, got: {err}"
    );

    let stats = db.pool_stats().unwrap();
    assert!(stats.timeouts >= 1, "{stats}");

    // The supervisor replaces the killed worker; the next query succeeds.
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let r = db.execute("SELECT wnoop(a) FROM t").unwrap();
    assert_eq!(r.rows.len(), 3);
    let stats = db.pool_stats().unwrap();
    assert!(
        stats.spawns >= 2,
        "the hung worker must have been respawned: {stats}"
    );
}

#[test]
fn crashed_worker_is_contained_and_pool_recovers() {
    if !worker_available() {
        return;
    }
    let db = pooled_db(
        Config::default().with_pooled_executors(1),
        "wcrash",
        "crash",
        vec![],
    );
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    // The UDF aborts its worker mid-query: the query gets a clean,
    // containable error and the server survives.
    let err = db.execute("SELECT wcrash() FROM t").unwrap_err();
    assert!(
        matches!(err, JaguarError::Worker(_)),
        "worker death must surface as a worker error, got: {err}"
    );
    assert!(err.is_containable(), "{err}");

    let stats = db.pool_stats().unwrap();
    assert!(stats.crashes >= 1, "{stats}");

    // Recovery: the supervisor respawns and the next query succeeds.
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let r = db.execute("SELECT wnoop(a) FROM t").unwrap();
    assert_eq!(r.rows.len(), 3);
    let stats = db.pool_stats().unwrap();
    assert!(stats.spawns >= 2, "crashed worker respawned: {stats}");
}

#[test]
fn saturated_pool_times_out_checkout_and_recovers() {
    if !worker_available() {
        return;
    }
    let db = pooled_db(
        Config::default()
            .with_pooled_executors(1)
            .with_pool_invoke_timeout_ms(Some(2_000))
            .with_pool_checkout_timeout_ms(150),
        "whang",
        "hang",
        vec![],
    );
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    // Occupy the pool's only worker with a hung invoke (killed by the
    // 2s invoke deadline eventually).
    std::thread::scope(|s| {
        let hog = s.spawn(|| db.execute("SELECT whang() FROM t"));
        std::thread::sleep(Duration::from_millis(400));

        // A second query now queues for a worker and must give up after
        // the 150ms checkout timeout — cleanly, with the wait counted.
        let start = std::time::Instant::now();
        let err = db.execute("SELECT wnoop(a) FROM t").unwrap_err();
        let elapsed = start.elapsed();
        assert!(
            matches!(err, JaguarError::Worker(_) | JaguarError::ResourceLimit(_)),
            "checkout starvation must surface as a clean error, got: {err}"
        );
        assert!(
            elapsed < Duration::from_secs(1),
            "checkout timeout must fire at ~150ms, took {elapsed:?}"
        );
        let stats = db.pool_stats().unwrap();
        assert!(stats.queue_waits >= 1, "{stats}");

        // The hog is eventually killed by the invoke deadline.
        assert!(hog.join().unwrap().is_err(), "hung invoke must error");
    });

    // The pool recovers: the same query that starved now succeeds.
    let r = db.execute("SELECT wnoop(a) FROM t").unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn pool_survives_mixed_success_and_crash_sequence() {
    if !worker_available() {
        return;
    }
    let db = pooled_db(
        Config::default().with_pooled_executors(2),
        "wcrash",
        "crash",
        vec![],
    );
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    for round in 0..3 {
        assert!(
            db.execute("SELECT wcrash() FROM t").is_err(),
            "round {round}"
        );
        let r = db.execute("SELECT wnoop(a) FROM t").unwrap();
        assert_eq!(r.rows.len(), 3, "round {round}");
    }
    let stats = db.pool_stats().unwrap();
    assert!(stats.crashes >= 3, "{stats}");
}
