//! Property-based tests over the core invariants:
//!
//! * the §6.4 value stream is lossless for arbitrary values,
//! * slotted pages and heap files never corrupt under random workloads
//!   (checked against an in-memory model),
//! * the bytecode verifier is *total* on arbitrary input bytes — it
//!   accepts or rejects, never panics (it faces untrusted input),
//! * compiled JagScript agrees with the reference AST evaluator on
//!   randomly generated arithmetic programs (differential testing),
//! * the generic UDF's native and sandboxed implementations agree on
//!   random parameters.

use proptest::prelude::*;

use jaguar_core::{ByteArray, Value};

// ---------------------------------------------------------------------
// value stream
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".{0,64}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..512)
            .prop_map(|v| Value::Bytes(ByteArray::new(v))),
    ]
}

proptest! {
    #[test]
    fn value_stream_roundtrips(v in arb_value()) {
        let bytes = jaguar_common::stream::value_to_vec(&v);
        let back = jaguar_common::stream::value_from_slice(&bytes).unwrap();
        match (&v, &back) {
            // NaN != NaN; compare bit patterns for floats.
            (Value::Float(a), Value::Float(b)) => {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            _ => prop_assert_eq!(&v, &back),
        }
    }

    #[test]
    fn tuple_stream_roundtrips(values in proptest::collection::vec(arb_value(), 0..8)) {
        let nan_free: Vec<Value> = values
            .into_iter()
            .map(|v| match v {
                Value::Float(x) if x.is_nan() => Value::Float(0.0),
                other => other,
            })
            .collect();
        let t = jaguar_common::Tuple::new(nan_free);
        let mut buf = Vec::new();
        jaguar_common::stream::write_tuple(&mut buf, &t).unwrap();
        let back = jaguar_common::stream::read_tuple(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Arbitrary bytes fed to the value decoder must error or decode —
    /// never panic, never allocate absurd amounts.
    #[test]
    fn value_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = jaguar_common::stream::value_from_slice(&bytes);
    }
}

// ---------------------------------------------------------------------
// storage
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(Vec<u8>),
    Delete(usize),
    Get(usize),
}

fn arb_heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        // Mix small records with ones that must spill on 512-byte pages.
        proptest::collection::vec(any::<u8>(), 0..1200).prop_map(HeapOp::Insert),
        (0usize..64).prop_map(HeapOp::Delete),
        (0usize..64).prop_map(HeapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_file_matches_model(ops in proptest::collection::vec(arb_heap_op(), 1..60)) {
        use std::sync::Arc;
        let disk = Arc::new(jaguar_storage::DiskManager::in_memory(512));
        let pool = Arc::new(jaguar_storage::BufferPool::new(disk, 32));
        let heap = Arc::new(jaguar_storage::HeapFile::create(pool).unwrap());

        let mut live: Vec<(jaguar_common::ids::RecordId, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Insert(data) => {
                    let rid = heap.insert(&data).unwrap();
                    live.push((rid, data));
                }
                HeapOp::Delete(i) => {
                    if !live.is_empty() {
                        let (rid, _) = live.remove(i % live.len());
                        heap.delete(rid).unwrap();
                    }
                }
                HeapOp::Get(i) => {
                    if !live.is_empty() {
                        let (rid, data) = &live[i % live.len()];
                        prop_assert_eq!(&heap.get(*rid).unwrap(), data);
                    }
                }
            }
        }
        // Full scan returns exactly the live records.
        let mut scanned: Vec<_> = heap
            .scan()
            .collect::<jaguar_common::Result<Vec<_>>>()
            .unwrap();
        scanned.sort_by_key(|(rid, _)| *rid);
        let mut expected = live.clone();
        expected.sort_by_key(|(rid, _)| *rid);
        prop_assert_eq!(scanned, expected);
    }
}

// ---------------------------------------------------------------------
// verifier totality
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feeding arbitrary bytes through module decoding + verification must
    /// never panic: this is exactly the untrusted input path a hostile
    /// client controls.
    #[test]
    fn verifier_is_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(module) = jaguar_vm::Module::from_bytes(&bytes) {
            let _ = module.verify();
        }
    }

    /// Same, but with a valid header so decoding gets further.
    #[test]
    fn verifier_is_total_on_framed_garbage(tail in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = b"JSM1".to_vec();
        bytes.extend_from_slice(&tail);
        if let Ok(module) = jaguar_vm::Module::from_bytes(&bytes) {
            let _ = module.verify();
        }
    }
}

// ---------------------------------------------------------------------
// SQL front-end totality
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The SQL parser faces raw client input: arbitrary strings must
    /// error cleanly, never panic.
    #[test]
    fn sql_parser_is_total_on_arbitrary_strings(src in ".{0,120}") {
        let _ = jaguar_sql::parser::parse(&src);
    }

    /// SQL-ish token soup (more likely to get deep into the parser).
    #[test]
    fn sql_parser_is_total_on_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("GROUP".to_string()),
                Just("BY".to_string()),
                Just("ORDER".to_string()),
                Just("HAVING".to_string()),
                Just("AND".to_string()),
                Just("NOT".to_string()),
                Just("INSERT".to_string()),
                Just("VALUES".to_string()),
                Just("LIMIT".to_string()),
                Just("*".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("=".to_string()),
                Just("<".to_string()),
                Just("+".to_string()),
                Just("X'00'".to_string()),
                Just("'str'".to_string()),
                Just("1".to_string()),
                Just("2.5".to_string()),
                Just("t".to_string()),
                Just("col".to_string()),
                Just("f".to_string()),
            ],
            0..24,
        )
    ) {
        let src = words.join(" ");
        let _ = jaguar_sql::parser::parse(&src);
    }

    /// JagScript's compiler faces untrusted source too.
    #[test]
    fn jagscript_compiler_is_total_on_arbitrary_strings(src in ".{0,120}") {
        let _ = jaguar_lang::compile("fuzz", &src);
    }
}

// ---------------------------------------------------------------------
// JagScript differential testing
// ---------------------------------------------------------------------

/// A generated integer expression over variables `a` and `b`.
#[derive(Debug, Clone)]
enum GenExpr {
    A,
    B,
    Lit(i32),
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    Div(Box<GenExpr>, Box<GenExpr>),
    Rem(Box<GenExpr>, Box<GenExpr>),
    And(Box<GenExpr>, Box<GenExpr>),
    Or(Box<GenExpr>, Box<GenExpr>),
    Lt(Box<GenExpr>, Box<GenExpr>),
    Eq(Box<GenExpr>, Box<GenExpr>),
    Neg(Box<GenExpr>),
    Not(Box<GenExpr>),
}

impl GenExpr {
    fn render(&self) -> String {
        match self {
            GenExpr::A => "a".into(),
            GenExpr::B => "b".into(),
            GenExpr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            GenExpr::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            GenExpr::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            GenExpr::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            GenExpr::Div(l, r) => format!("({} / {})", l.render(), r.render()),
            GenExpr::Rem(l, r) => format!("({} % {})", l.render(), r.render()),
            GenExpr::And(l, r) => format!("(({} != 0) && ({} != 0))", l.render(), r.render()),
            GenExpr::Or(l, r) => format!("(({} != 0) || ({} != 0))", l.render(), r.render()),
            GenExpr::Lt(l, r) => format!("({} < {})", l.render(), r.render()),
            GenExpr::Eq(l, r) => format!("({} == {})", l.render(), r.render()),
            GenExpr::Neg(e) => format!("(-{})", e.render()),
            GenExpr::Not(e) => format!("(!{})", e.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        Just(GenExpr::A),
        Just(GenExpr::B),
        any::<i32>().prop_map(GenExpr::Lit),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenExpr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenExpr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenExpr::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenExpr::Div(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenExpr::Rem(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| GenExpr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| GenExpr::Or(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| GenExpr::Lt(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| GenExpr::Eq(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|e| GenExpr::Neg(Box::new(e))),
            inner.prop_map(|e| GenExpr::Not(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compile-and-run must agree with the reference evaluator — including
    /// on *which* inputs trap (division by zero).
    #[test]
    fn jagscript_compiler_matches_reference(expr in arb_expr(), a in any::<i32>(), b in any::<i32>()) {
        let src = format!(
            "fn main(a: i64, b: i64) -> i64 {{ return {}; }}",
            expr.render()
        );
        let (a, b) = (a as i64, b as i64);

        // Reference path.
        let prog = jaguar_lang::parser::parse(jaguar_lang::lexer::lex(&src).unwrap()).unwrap();
        let ref_out = jaguar_lang::evalref::run(
            &prog,
            "main",
            vec![
                jaguar_lang::evalref::RValue::I64(a),
                jaguar_lang::evalref::RValue::I64(b),
            ],
            10_000_000,
        );

        // Compiled path.
        let module = jaguar_lang::compile("p", &src).unwrap();
        let vm = std::sync::Arc::new(module.verify().unwrap());
        let interp = jaguar_vm::Interpreter::new(
            vm,
            jaguar_vm::ResourceLimits::default(),
            jaguar_vm::ExecMode::Jit,
        );
        let vm_out = interp.invoke(
            "main",
            &[jaguar_vm::ArgValue::I64(a), jaguar_vm::ArgValue::I64(b)],
            &mut jaguar_vm::NoHost,
        );

        match (ref_out, vm_out) {
            (Ok(Some(jaguar_lang::evalref::RValue::I64(x))), Ok((Some(v), _, _))) => {
                prop_assert_eq!(x, v.as_i64().unwrap(), "src: {}", src);
            }
            (Err(_), Err(_)) => {} // both trap (division by zero)
            (r, v) => prop_assert!(false, "divergence on {}: ref={:?} vm={:?}", src, r, v.is_ok()),
        }

        // Baseline mode must agree with JIT mode too.
        let module2 = jaguar_lang::compile("p", &src).unwrap();
        let vm2 = std::sync::Arc::new(module2.verify().unwrap());
        let interp2 = jaguar_vm::Interpreter::new(
            vm2,
            jaguar_vm::ResourceLimits::default(),
            jaguar_vm::ExecMode::Baseline,
        );
        let base_out = interp2.invoke(
            "main",
            &[jaguar_vm::ArgValue::I64(a), jaguar_vm::ArgValue::I64(b)],
            &mut jaguar_vm::NoHost,
        );
        match (
            interp.invoke(
                "main",
                &[jaguar_vm::ArgValue::I64(a), jaguar_vm::ArgValue::I64(b)],
                &mut jaguar_vm::NoHost,
            ),
            base_out,
        ) {
            (Ok((Some(x), _, _)), Ok((Some(y), _, _))) => {
                prop_assert_eq!(x.as_i64().unwrap(), y.as_i64().unwrap());
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "jit/baseline divergence on {}: {:?} vs {:?}", src, x.is_ok(), y.is_ok()),
        }
    }
}

// ---------------------------------------------------------------------
// tiered execution differential testing
// ---------------------------------------------------------------------

/// Run a generated program under one execution configuration and return
/// the observable outcome: `Ok((result, instructions))` or the exact
/// error text. Everything the engine can see of an invocation.
fn observe(
    vm: &std::sync::Arc<jaguar_vm::VerifiedModule>,
    limits: jaguar_vm::ResourceLimits,
    mode: jaguar_vm::ExecMode,
    tier_up_after: Option<u64>,
    cancelled: bool,
    a: i64,
    b: i64,
) -> std::result::Result<(Option<i64>, u64), String> {
    let mut interp = jaguar_vm::Interpreter::new(std::sync::Arc::clone(vm), limits, mode)
        .with_tier_up(tier_up_after);
    if cancelled {
        let token = jaguar_common::cancel::CancelToken::unbounded();
        token.cancel();
        interp.set_cancel(token);
    }
    match interp.invoke(
        "main",
        &[jaguar_vm::ArgValue::I64(a), jaguar_vm::ArgValue::I64(b)],
        &mut jaguar_vm::NoHost,
    ) {
        Ok((v, usage, _)) => Ok((v.map(|v| v.as_i64().unwrap()), usage.instructions)),
        Err(e) => Err(e.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled register tier must be *observationally identical* to
    /// both interpreter modes: same results, same fuel accounting
    /// (`usage.instructions`, including the exact instruction count at
    /// which a tight fuel budget exhausts), same error text, and the
    /// same response to a pre-cancelled statement token.
    #[test]
    fn compiled_tier_matches_interpreters(
        expr in arb_expr(),
        a in any::<i32>(),
        b in any::<i32>(),
        fuel in prop_oneof![Just(None), (1u64..200).prop_map(Some)],
        cancelled in any::<bool>(),
    ) {
        let src = format!(
            "fn main(a: i64, b: i64) -> i64 {{ return {}; }}",
            expr.render()
        );
        let module = jaguar_lang::compile("p", &src).unwrap();
        let vm = std::sync::Arc::new(module.verify().unwrap());
        let limits = jaguar_vm::ResourceLimits {
            fuel,
            ..jaguar_vm::ResourceLimits::default()
        };
        let (a, b) = (a as i64, b as i64);

        let baseline = observe(&vm, limits, jaguar_vm::ExecMode::Baseline, None, cancelled, a, b);
        let jit = observe(&vm, limits, jaguar_vm::ExecMode::Jit, None, cancelled, a, b);
        // Tier-up after 0 calls: the invocation below runs compiled
        // (or falls back — either way it must match Baseline exactly).
        let tiered = observe(&vm, limits, jaguar_vm::ExecMode::Jit, Some(0), cancelled, a, b);

        prop_assert_eq!(&jit, &baseline, "jit vs baseline diverged on {}", src);
        prop_assert_eq!(&tiered, &baseline, "compiled tier diverged on {}", src);
    }
}

// ---------------------------------------------------------------------
// generic UDF: native vs sandboxed
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generic_udf_native_and_vm_agree(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
        indep in 0i64..300,
        dep in 0i64..4,
        callbacks in 0i64..5,
    ) {
        use jaguar_udf::generic::{def_native, def_vm, GenericParams, IdentityCallbacks};
        let params = GenericParams {
            data_indep_comps: indep,
            data_dep_comps: dep,
            callbacks,
        };
        let args = params.args(ByteArray::new(bytes));
        let mut native = def_native().instantiate().unwrap();
        let mut vm = def_vm(true, jaguar_vm::ResourceLimits::default())
            .instantiate()
            .unwrap();
        let n = native.invoke(&args, &mut IdentityCallbacks).unwrap();
        let v = vm.invoke(&args, &mut IdentityCallbacks).unwrap();
        prop_assert_eq!(n, v);
    }
}
