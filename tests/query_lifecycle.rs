//! Query lifecycle robustness: statement deadlines, cooperative
//! cancellation, and per-UDF circuit breakers.
//!
//! These are the acceptance tests for the lifecycle layer: a runaway UDF
//! on *each* execution backend is aborted within the statement deadline
//! and the engine stays usable; a client cancels an in-flight query
//! out-of-band and the data survives recovery untouched; a UDF that
//! repeatedly crashes its worker is quarantined by its circuit breaker
//! (no respawn storm) and recovers through the half-open probe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jaguar_core::{
    Client, Config, DataType, Database, JaguarError, UdfDef, UdfDesign, UdfImpl, UdfSignature,
    Value,
};
use jaguar_ipc::find_worker_binary;

fn worker_available() -> bool {
    if find_worker_binary().is_err() {
        eprintln!("skipping pooled lifecycle test: jaguar-worker not built");
        false
    } else {
        true
    }
}

fn ints(r: &jaguar_core::QueryResult) -> Vec<i64> {
    r.rows
        .iter()
        .map(|row| match row.get(0).unwrap() {
            Value::Int(i) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

/// Acceptance (a), in-process VM backend: an infinite-loop JagScript UDF
/// is aborted by the statement deadline via the interpreter's periodic
/// cancellation poll — fuel is disabled so the deadline is what fires.
#[test]
fn statement_deadline_aborts_infinite_loop_vm_udf() {
    let db = Database::with_config(
        Config::default()
            .no_resource_limits()
            .with_statement_timeout_ms(Some(300)),
    );
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.register_jagscript_udf(
        "spin",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        "fn main(x: i64) -> i64 { let i: i64 = 0; while i < 1 { i = i * 1; } return x; }",
        UdfDesign::Sandboxed,
    )
    .unwrap();

    let start = Instant::now();
    let err = db.execute("SELECT spin(a) FROM t").unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(err, JaguarError::Timeout(_)),
        "deadline expiry must surface as a timeout, got: {err}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "abort must come promptly after the 300ms budget, took {elapsed:?}"
    );

    // The engine is fully usable afterwards: a cheap query finishes well
    // inside its own (fresh) deadline.
    let r = db.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows.len(), 2);
}

/// Acceptance (a), pooled IPC backend: a worker-side `hang` is killed when
/// the *statement* budget expires (tighter than the pool's own invoke
/// timeout), surfaces as a timeout, and the pool recovers.
#[test]
fn statement_deadline_kills_hung_pooled_worker() {
    if !worker_available() {
        return;
    }
    let db = Database::with_config(
        Config::default()
            .with_pooled_executors(1)
            .with_pool_invoke_timeout_ms(Some(60_000))
            .with_statement_timeout_ms(Some(400)),
    );
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.register_udf(UdfDef::new(
        "whang",
        UdfSignature::new(vec![], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "hang".to_string(),
        },
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    let start = Instant::now();
    let err = db.execute("SELECT whang() FROM t").unwrap_err();
    let elapsed = start.elapsed();
    assert!(
        matches!(err, JaguarError::Timeout(_)),
        "statement-budget kill must surface as a timeout, got: {err}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "kill must come from the 400ms statement budget, not the 60s pool \
         timeout; took {elapsed:?}"
    );

    // The supervisor replaces the killed worker; the engine stays usable.
    db.register_udf(UdfDef::new(
        "wnoop",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "noop".to_string(),
        },
    ));
    let r = db.execute("SELECT wnoop(a) FROM t").unwrap();
    assert_eq!(r.rows.len(), 1);
}

/// Acceptance (b): a client cancels a long scan out-of-band; the query
/// aborts with a cancellation error, the connection stays usable, and
/// after closing and reopening the database the data is untouched.
#[test]
fn client_cancel_aborts_long_scan_without_partial_effects() {
    let dir = std::env::temp_dir().join(format!("jaguar-cancel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let db = Database::open(&dir, Config::default()).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    for chunk in 0..20 {
        let vals: Vec<String> = (0..20).map(|i| format!("({})", chunk * 20 + i)).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", vals.join(", ")))
            .unwrap();
    }
    // A scan over `nap(a)` takes 400 × 25ms = 10s if left alone.
    db.register_native_udf(
        "nap",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        |args, _cb| {
            std::thread::sleep(Duration::from_millis(25));
            Ok(args[0].clone())
        },
    );

    let mut server = db.serve("127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let handle = client.cancel_handle();

    let worker = std::thread::spawn(move || {
        let err = client
            .execute("SELECT nap(a) FROM t")
            .expect_err("cancelled query must error");
        // Same connection, next statement: still usable.
        let rows = client.execute("SELECT a FROM t WHERE a < 3").unwrap().rows;
        (err, rows.len())
    });

    // Cancel once the statement is actually in flight (the handle reports
    // `false` while the connection is idle).
    let deadline = Instant::now() + Duration::from_secs(8);
    loop {
        if handle.cancel().unwrap() {
            break;
        }
        assert!(Instant::now() < deadline, "query never became cancellable");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (err, usable_rows) = worker.join().unwrap();
    assert!(
        err.to_string().contains("cancel"),
        "expected a cancellation error, got: {err}"
    );
    assert_eq!(usable_rows, 3, "connection must stay usable after cancel");

    // Recovery: close everything and reopen the directory. A pure scan has
    // no on-disk effects, cancelled or not.
    server.stop();
    drop(server);
    db.close().unwrap();
    let db = Database::open(&dir, Config::default()).unwrap();
    let r = db.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows.len(), 400, "data intact after cancel + recovery");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cancelled DML seals its partial effects as its own transaction: after
/// close + reopen every row is either old or new — never torn — and the
/// engine accepts further statements.
#[test]
fn cancelled_update_seals_partial_effects() {
    let dir = std::env::temp_dir().join(format!("jaguar-cancel-dml-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let db = Database::open(&dir, Config::default()).unwrap();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    let vals: Vec<String> = (0..100).map(|_| "(0)".to_string()).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", vals.join(", ")))
        .unwrap();
    db.register_native_udf(
        "slowone",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        |args, _cb| {
            std::thread::sleep(Duration::from_millis(20));
            Ok(Value::Int(args[0].as_int()? + 1))
        },
    );

    let token = db.statement_token();
    let t2 = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        t2.cancel();
    });
    let err = db
        .execute_cancellable("UPDATE t SET a = slowone(a)", &token)
        .unwrap_err();
    canceller.join().unwrap();
    assert!(matches!(err, JaguarError::Cancelled(_)), "{err}");

    db.close().unwrap();
    let db = Database::open(&dir, Config::default()).unwrap();
    let r = db.execute("SELECT a FROM t").unwrap();
    assert_eq!(r.rows.len(), 100);
    let vs = ints(&r);
    assert!(
        vs.iter().all(|v| *v == 0 || *v == 1),
        "rows must be old or new, never torn: {vs:?}"
    );
    assert!(
        vs.contains(&0),
        "the cancel must have landed before the statement finished"
    );
    // The engine accepts further DML; re-running to completion converges.
    db.execute("UPDATE t SET a = 1").unwrap();
    assert!(ints(&db.execute("SELECT a FROM t").unwrap())
        .iter()
        .all(|v| *v == 1));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance (c): a UDF that crashes its worker on every call trips its
/// breaker after three consecutive failures; while quarantined, queries
/// fail fast with no new worker spawns; after the cooldown a half-open
/// probe closes the breaker again.
#[test]
fn breaker_quarantines_crashing_udf_and_recovers() {
    if !worker_available() {
        return;
    }
    let db = Database::with_config(
        Config::default()
            .with_pooled_executors(1)
            .with_udf_breaker(3, 600),
    );
    db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    db.register_udf(UdfDef::new(
        "wflaky",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        UdfImpl::IsolatedNative {
            worker_fn: "crash_if_positive".to_string(),
        },
    ));
    let pool = db.worker_pool().expect("pool attached");
    assert!(pool.wait_ready(Duration::from_secs(10)));

    // Three consecutive worker crashes (argument 1 aborts the worker).
    for round in 0..3 {
        let err = db.execute("SELECT wflaky(a) FROM t").unwrap_err();
        assert!(
            matches!(err, JaguarError::Worker(_)),
            "round {round}: expected a worker crash, got: {err}"
        );
    }
    assert!(
        db.udf_breaker_states()
            .iter()
            .any(|(n, s)| n == "wflaky" && *s == "open"),
        "breaker must be open after 3 consecutive crashes: {:?}",
        db.udf_breaker_states()
    );

    // Let the supervisor finish respawning, then snapshot spawns: the
    // quarantined query must not touch the pool at all.
    std::thread::sleep(Duration::from_millis(200));
    let spawns_before = db.pool_stats().unwrap().spawns;
    let err = db.execute("SELECT wflaky(a) FROM t").unwrap_err();
    assert!(
        matches!(err, JaguarError::UdfQuarantined(_)),
        "open breaker must fail fast, got: {err}"
    );
    assert_eq!(
        db.pool_stats().unwrap().spawns,
        spawns_before,
        "fail-fast must not spawn (or even check out) a worker"
    );

    // After the cooldown, a call that succeeds (argument 0) is admitted as
    // the half-open probe and closes the breaker.
    std::thread::sleep(Duration::from_millis(650));
    let r = db.execute("SELECT wflaky(b) FROM t").unwrap();
    assert_eq!(r.rows[0].get(0).unwrap(), &Value::Int(0));
    assert!(
        db.udf_breaker_states()
            .iter()
            .any(|(n, s)| n == "wflaky" && *s == "closed"),
        "probe success must close the breaker: {:?}",
        db.udf_breaker_states()
    );
    // And it stays closed for further calls.
    db.execute("SELECT wflaky(b) FROM t").unwrap();
}

/// A statement timeout configured on the server bounds queries arriving
/// over the wire, and an embedded cancel token aborts a SELECT promptly
/// even without any client involvement.
#[test]
fn embedded_token_cancels_select_promptly() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT)").unwrap();
    let vals: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", vals.join(", ")))
        .unwrap();
    let calls = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&calls);
    db.register_native_udf(
        "tick",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        move |args, _cb| {
            seen.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(10));
            Ok(args[0].clone())
        },
    );

    let token = db.statement_token();
    let t2 = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        t2.cancel();
    });
    let err = db
        .execute_cancellable("SELECT tick(a) FROM t", &token)
        .unwrap_err();
    canceller.join().unwrap();
    assert!(matches!(err, JaguarError::Cancelled(_)), "{err}");
    let n = calls.load(Ordering::Relaxed);
    assert!(
        n < 200,
        "cancellation must stop the scan early (saw {n} of 200 calls)"
    );
}
