//! Security integration tests — the paper's threat model (§1): UDFs "that
//! might crash the database system, that modify its files or memory
//! directly, circumventing the authorization mechanisms, or that
//! monopolize CPU, memory or disk resources leading to a reduction in
//! DBMS performance (i.e. denial of service)".

use jaguar_core::{
    Config, DataType, Database, JaguarError, Permission, PermissionSet, UdfDesign, UdfSignature,
};

fn db_with_row() -> Database {
    let db = Database::with_config(Config {
        default_fuel: Some(500_000),
        default_vm_memory: Some(4 << 20),
        ..Config::default()
    });
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db
}

#[test]
fn cpu_denial_of_service_contained() {
    let db = db_with_row();
    db.register_jagscript_udf(
        "spin",
        UdfSignature::new(vec![], DataType::Int),
        "fn main() -> i64 { let x: i64 = 0; while 1 { x = x + 1; } return x; }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    let e = db.execute("SELECT spin() FROM t").unwrap_err();
    assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
    assert!(db.execute("SELECT a FROM t").is_ok(), "server must survive");
}

#[test]
fn memory_denial_of_service_contained() {
    let db = db_with_row();
    db.register_jagscript_udf(
        "hog",
        UdfSignature::new(vec![], DataType::Int),
        "fn main() -> i64 {
            let total: i64 = 0;
            while 1 {
                let chunk: bytes = newbytes(1048576);
                total = total + len(chunk);
            }
            return total;
        }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    let e = db.execute("SELECT hog() FROM t").unwrap_err();
    assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
    assert!(db.execute("SELECT a FROM t").is_ok());
}

#[test]
fn runaway_recursion_contained() {
    let db = db_with_row();
    db.register_jagscript_udf(
        "rec",
        UdfSignature::new(vec![], DataType::Int),
        "fn f(n: i64) -> i64 { return f(n + 1); }
         fn main() -> i64 { return f(0); }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    let e = db.execute("SELECT rec() FROM t").unwrap_err();
    assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
}

#[test]
fn memory_safety_bounds_checked() {
    let db = db_with_row();
    db.register_jagscript_udf(
        "oob",
        UdfSignature::new(vec![], DataType::Int),
        "fn main() -> i64 { let b: bytes = newbytes(2); return b[5]; }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    let e = db.execute("SELECT oob() FROM t").unwrap_err();
    assert!(matches!(e, JaguarError::VmTrap(_)), "{e}");
    assert!(e.is_containable());
}

#[test]
fn unauthorized_import_rejected_at_registration() {
    let db = db_with_row();
    let e = db
        .register_jagscript_udf(
            "steal",
            UdfSignature::new(vec![], DataType::Int),
            "import open_file(i64) -> i64; fn main() -> i64 { return open_file(0); }",
            UdfDesign::Sandboxed,
        )
        .unwrap_err();
    assert!(matches!(e, JaguarError::SecurityViolation(_)), "{e}");
}

#[test]
fn worker_crash_contained_and_audited() {
    if jaguar_ipc::find_worker_binary().is_err() {
        eprintln!("skipping: jaguar-worker not built");
        return;
    }
    let db = db_with_row();
    db.register_udf(jaguar_core::UdfDef::new(
        "crashy",
        UdfSignature::new(vec![], DataType::Int),
        jaguar_core::UdfImpl::IsolatedNative {
            worker_fn: "crash".into(),
        },
    ));
    let e = db.execute("SELECT crashy() FROM t").unwrap_err();
    assert!(matches!(e, JaguarError::Worker(_)), "{e}");
    assert!(db.execute("SELECT a FROM t").is_ok(), "server must survive");
}

#[test]
fn permission_sets_enforce_least_privilege_with_audit_trail() {
    // Unit-style check at the permission layer: grants are exact, denials
    // are recorded and attributable (§6.1's missing-audit complaint).
    let perms = PermissionSet::deny_all("suspect")
        .grant(Permission::HostCall("cb".into()))
        .grant(Permission::FileRead("/data/public/".into()));

    perms.check(&Permission::HostCall("cb".into())).unwrap();
    perms
        .check(&Permission::FileRead("/data/public/img.png".into()))
        .unwrap();
    assert!(perms
        .check(&Permission::HostCall("drop_tables".into()))
        .is_err());
    assert!(perms
        .check(&Permission::FileRead("/etc/shadow".into()))
        .is_err());
    assert!(perms
        .check(&Permission::FileWrite("/data/public/x".into()))
        .is_err());

    let violations = perms.violations();
    assert_eq!(violations.len(), 3);
    assert!(violations.iter().all(|v| v.principal == "suspect"));
}

#[test]
fn fuel_disabled_config_reproduces_1998_vulnerability() {
    // With no resource limits (the 1998 JVM situation), the same hostile
    // UDF would spin forever — prove the knob works by giving it finite
    // but large fuel and observing consumption scale.
    let db = Database::with_config(Config {
        default_fuel: Some(2_000_000),
        ..Config::default()
    });
    db.execute("CREATE TABLE t (a INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.register_jagscript_udf(
        "burn",
        UdfSignature::new(vec![DataType::Int], DataType::Int),
        "fn main(n: i64) -> i64 {
            let acc: i64 = 0;
            let i: i64 = 0;
            while i < n { acc = acc + i; i = i + 1; }
            return acc;
        }",
        UdfDesign::Sandboxed,
    )
    .unwrap();
    // Small n: fine. n requiring more than the budget: contained.
    assert!(db.execute("SELECT burn(1000) FROM t").is_ok());
    let e = db.execute("SELECT burn(10000000) FROM t").unwrap_err();
    assert!(matches!(e, JaguarError::ResourceLimit(_)), "{e}");
}
