//! Minimal stand-in for the `criterion` crate.
//!
//! Implements the subset of the upstream API this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_with_input, finish}`, `BenchmarkId`,
//! and `Bencher::iter` — with a simple mean/min timing loop instead of the
//! full statistical machinery. When invoked with `--test` (as `cargo test`
//! does for bench targets) each benchmark runs exactly once as a smoke test.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: false }
    }
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Self {
        // `cargo bench` passes `--bench`; `cargo test` passes `--test`.
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            test_mode: self.test_mode,
        }
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
            min: Duration::MAX,
        };
        f(&mut bencher, input);
        if bencher.iters == 0 {
            println!("{}/{}: no iterations recorded", self.name, id.id);
            return;
        }
        let mean = bencher.total / bencher.iters as u32;
        println!(
            "{}/{}: mean {:?}, min {:?} ({} iterations)",
            self.name, id.id, mean, bencher.min, bencher.iters
        );
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        self.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| f(b));
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
    min: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warmup iteration, then timed samples.
        hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += 1;
            if elapsed < self.min {
                self.min = elapsed;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
