//! Minimal stand-in for the `parking_lot` crate built on `std::sync`.
//!
//! Matches the subset of the upstream API this workspace uses: `Mutex`,
//! `RwLock`, and `Condvar` with non-poisoning guards (a panic while a lock
//! is held does not poison it — later `lock()` calls succeed, as with the
//! real parking_lot).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Acquire the lock only if it is uncontended right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Held as an Option so Condvar::wait can temporarily take ownership of
    // the underlying std guard and put the re-acquired one back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    // std RwLock poisoning cannot be cleared through shared references
    // without the lock-result dance below, so track writer panics manually.
    poison_seen: AtomicBool,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            poison_seen: AtomicBool::new(false),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => {
                self.poison_seen.store(true, Ordering::Relaxed);
                p.into_inner()
            }
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => {
                self.poison_seen.store(true, Ordering::Relaxed);
                p.into_inner()
            }
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn try_lock_respects_holder() {
        let m = Mutex::new(1u32);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
        }
        *m.try_lock().expect("uncontended") += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut g = lock.lock();
        let res = cvar.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }
}
