//! Minimal stand-in for the `proptest` crate.
//!
//! Provides deterministic randomized testing with the same surface syntax as
//! upstream proptest for the subset this workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`, `Just`, `any::<T>()`, integer
//! range strategies, tuple strategies, `collection::vec`, simple `.{a,b}`
//! regex string strategies, and the `proptest!`/`prop_oneof!`/`prop_assert*`
//! macros. There is no shrinking: a failing case panics with the generated
//! inputs in the assertion message (seeds are derived from the test name, so
//! failures reproduce deterministically).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    /// Deterministic xorshift64* RNG. Seeded from the test name so each test
    /// sees a stable stream across runs (no global entropy source).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(label: &str) -> Self {
            let mut seed: u64 = 0x9e37_79b9_7f4a_7c15;
            for b in label.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
            }
            TestRng {
                state: seed | 1, // xorshift state must be nonzero
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Subset of upstream `ProptestConfig`: only `cases` is honoured.
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking; a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = boxed(self);
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branched = boxed(branch(current));
            let leaf_again = leaf.clone();
            current = BoxedStrategy(Arc::new(move |rng: &mut TestRng| {
                // Bias toward branching so trees actually grow; the leaf arm
                // keeps expected size bounded below the depth-limit worst case.
                if rng.below(4) == 0 {
                    leaf_again.generate(rng)
                } else {
                    branched.generate(rng)
                }
            }));
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        boxed(self)
    }
}

/// Type-erased, clonable strategy (the upstream name for the same idea).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Erase a strategy's concrete type. Used by `prop_oneof!`.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
    S::Value: 'static,
{
    BoxedStrategy(Arc::new(move |rng: &mut TestRng| strategy.generate(rng)))
}

/// Uniform choice between same-valued strategies. Used by `prop_oneof!`.
pub fn union<T: Debug>(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Clone for Map<S, F>
where
    S: Clone,
    F: Clone,
{
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
        }
    }
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: Debug,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------
// any::<T>() for primitives
// ---------------------------------------------------------------------

pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        // Mix small magnitudes in: interesting arithmetic edge cases live
        // near zero, and pure 32-bit noise rarely lands there.
        match rng.below(4) {
            0 => (rng.below(21) as i32) - 10,
            _ => rng.next_u32() as i32,
        }
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        match rng.below(4) {
            0 => (rng.below(21) as i64) - 10,
            _ => rng.next_u64() as i64,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: exercises NaN, infinities, subnormals.
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.below(2001) as f64 - 1000.0) / 8.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

// ---------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------
// String strategies from `.{a,b}` patterns
// ---------------------------------------------------------------------

/// Upstream proptest interprets `&str` strategies as regexes. Only the
/// `.{min,max}` shape is used in this workspace; anything else is rejected
/// loudly rather than silently misgenerating.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            // Mostly printable ASCII with occasional multi-byte chars so
            // UTF-8 handling is exercised too.
            let c = match rng.below(12) {
                0 => '\u{00e9}',
                1 => '\u{4e16}',
                _ => (0x20 + rng.below(0x5f) as u8) as char,
            };
            out.push(c);
        }
        out
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    let min: usize = min.trim().parse().ok()?;
    let max: usize = max.trim().parse().ok()?;
    (min <= max).then_some((min, max))
}

// ---------------------------------------------------------------------
// collection::vec
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                len: self.len.clone(),
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, a..b)`: a vector with length drawn from `a..b`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @block ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn regex_pattern_lengths() {
        let mut rng = crate::test_runner::TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = Strategy::generate(&".{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_bindings(x in 0i32..10, ys in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x >= 0 && x < 10);
            prop_assert!(ys.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(0i64),
            (1i64..100).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (v >= 2 && v < 200));
        }
    }
}
