//! Placeholder for the `rand` crate (see vendor/README.md).
//!
//! The workspace currently has no direct `rand::` call sites; this empty
//! crate satisfies manifest references without pulling in a registry
//! dependency. If real randomness is needed, extend this with a small PRNG
//! or swap the root `Cargo.toml` entry back to the upstream crate.
